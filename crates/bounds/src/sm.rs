//! `LB_SM` \[25\] — segmented-mean bound (Table 3, row 2):
//!
//! ```text
//! LB_SM(p,q) = l · Σ_{i=1}^{d′} (µ(p̂ᵢ) − µ(q̂ᵢ))²
//! ```
//!
//! Within each length-`l` segment, `Σ (pⱼ − qⱼ)² ≥ l·(µ(p̂)−µ(q̂))²` by the
//! Cauchy–Schwarz inequality, so summing over segments lower-bounds the
//! squared Euclidean distance.

use crate::cost::EvalCost;
use crate::traits::{BoundDirection, BoundStage, PreparedBound};
use simpim_similarity::{Dataset, SegmentProfile, SegmentStats, SimilarityError};

/// Precomputed `LB_SM` over a dataset: per-row segment means.
#[derive(Debug, Clone)]
pub struct SmBound {
    profile: SegmentProfile,
    d: usize,
}

impl SmBound {
    /// Builds the bound with `d_prime` segments (`d_prime` must divide `d`).
    pub fn build(dataset: &Dataset, d_prime: usize) -> Result<Self, SimilarityError> {
        let profile = SegmentProfile::compute(dataset, d_prime)?;
        Ok(Self {
            profile,
            d: dataset.dim(),
        })
    }

    /// Number of prepared objects.
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// `true` when no objects are prepared.
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }
}

impl BoundStage for SmBound {
    fn name(&self) -> String {
        format!("LB_SM^{}", self.profile.num_segments())
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::LowerBoundsDistance
    }

    fn d_prime(&self) -> usize {
        self.profile.num_segments()
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        self.profile.num_segments() as u64 * 8
    }

    fn eval_cost(&self) -> EvalCost {
        let dp = self.profile.num_segments() as u64;
        EvalCost {
            arith: 2 * dp,
            mul: dp + 1, // products plus the final ·l
            div: 0,
            sqrt: 0,
            bytes: self.transfer_bytes_per_object(),
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q_stats = SegmentStats::compute(query, self.profile.num_segments())
            .expect("segmentation validated at build time");
        Box::new(SmPrepared {
            bound: self,
            q_means: q_stats.means,
        })
    }
}

struct SmPrepared<'a> {
    bound: &'a SmBound,
    q_means: Vec<f64>,
}

impl PreparedBound for SmPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let means = self.bound.profile.means(i);
        let l = self.bound.profile.segment_len() as f64;
        l * means
            .iter()
            .zip(&self.q_means)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::measures::euclidean_sq;

    fn dataset() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4],
        ])
        .unwrap()
    }

    #[test]
    fn is_lower_bound_of_ed() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        for dp in [1usize, 2, 4, 8] {
            let b = SmBound::build(&ds, dp).unwrap();
            let prep = b.prepare(&q);
            for i in 0..ds.len() {
                let lb = prep.bound(i);
                let ed = euclidean_sq(ds.row(i), &q);
                assert!(lb <= ed + 1e-12, "dp={dp} i={i}: {lb} > {ed}");
            }
        }
    }

    #[test]
    fn identity_segmentation_is_exact() {
        // d′ = d → segments of length 1 → the bound is exact ED.
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2, 0.55, 0.45];
        let b = SmBound::build(&ds, 8).unwrap();
        let prep = b.prepare(&q);
        for i in 0..ds.len() {
            assert!((prep.bound(i) - euclidean_sq(ds.row(i), &q)).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_rows_have_zero_bound_between_equal_means() {
        let ds = Dataset::from_rows(&[vec![0.5; 8]]).unwrap();
        let b = SmBound::build(&ds, 2).unwrap();
        // Query with the same segment means but different values: the mean
        // bound cannot distinguish them (this is exactly the weakness
        // LB_FNN's σ term fixes).
        let q = [0.4, 0.6, 0.3, 0.7, 0.5, 0.5, 0.1, 0.9];
        let prep = b.prepare(&q);
        assert!(prep.bound(0).abs() < 1e-12);
        assert!(euclidean_sq(ds.row(0), &q) > 0.0);
    }

    #[test]
    fn metadata() {
        let b = SmBound::build(&dataset(), 4).unwrap();
        assert_eq!(b.name(), "LB_SM^4");
        assert_eq!(b.transfer_bytes_per_object(), 32);
        assert_eq!(b.d_prime(), 4);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn rejects_non_dividing_segments() {
        assert!(SmBound::build(&dataset(), 3).is_err());
    }
}

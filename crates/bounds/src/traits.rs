//! The bound-stage abstraction shared by classic bounds, PIM-aware bounds
//! (`simpim-core`) and the execution planner.

use crate::cost::EvalCost;

/// Whether a stage bounds a distance from below or a similarity from above.
/// Either direction admits lossless pruning; the mining loop flips its
/// comparison accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BoundDirection {
    /// `bound(p,q) ≤ dist(p,q)` — prune when `bound ≥ threshold`.
    LowerBoundsDistance,
    /// `bound(p,q) ≥ sim(p,q)` — prune when `bound ≤ threshold`.
    UpperBoundsSimilarity,
}

/// A bound family prepared over a dataset (offline precomputation done),
/// ready to be specialized per query.
///
/// Implementations must be deterministic; their per-object transfer and
/// operation costs feed Eq. 13's plan optimizer. `Send + Sync` so prepared
/// cascades can be shared with the `simpim-par` refinement workers.
pub trait BoundStage: Send + Sync {
    /// Human-readable name matching the paper's notation, e.g.
    /// `"LB_FNN^105"`.
    fn name(&self) -> String;

    /// Bounding direction.
    fn direction(&self) -> BoundDirection;

    /// Reduced dimensionality `d′` this stage reads per object.
    fn d_prime(&self) -> usize;

    /// Bytes transferred from memory per bounded object — the `T_cost(Bᵢ)`
    /// unit of Eq. 13 (e.g. `d/64 · 8` bytes for `LB_FNN^{d/64}` on f64
    /// data).
    fn transfer_bytes_per_object(&self) -> u64;

    /// Operation cost of bounding one object.
    fn eval_cost(&self) -> EvalCost;

    /// Specializes the stage for one query, performing the per-query
    /// precomputation (segmenting the query, computing its norms, …).
    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_>;
}

/// A query-specialized bound evaluator. `Send + Sync` so the parallel
/// refinement walk can evaluate bounds from several workers at once (all
/// implementations are read-only over precomputed state).
pub trait PreparedBound: Send + Sync {
    /// The bound value for dataset object `i`.
    fn bound(&self, i: usize) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_is_copy_and_comparable() {
        let d = BoundDirection::LowerBoundsDistance;
        let e = d;
        assert_eq!(d, e);
        assert_ne!(d, BoundDirection::UpperBoundsSimilarity);
    }
}

#![warn(missing_docs)]
//! # simpim-bounds
//!
//! The classic distance bounds of Table 3, used by the filter-and-refinement
//! mining algorithms and (re)composed by the execution planner of
//! `simpim-core`:
//!
//! * [`ost::OstBound`] — `LB_OST` \[24\]: partial squared distance over the
//!   first `d′` dimensions plus the squared difference of tail norms.
//! * [`sm::SmBound`] — `LB_SM` \[25\]: segment-mean bound
//!   `l · Σ (µ(p̂ᵢ) − µ(q̂ᵢ))²`.
//! * [`fnn::FnnBound`] — `LB_FNN` \[26\]: segment mean *and* standard
//!   deviation, `l · Σ ((µ(p̂ᵢ)−µ(q̂ᵢ))² + (σ(p̂ᵢ)−σ(q̂ᵢ))²)`; the FNN
//!   algorithm cascades it at `d/64 → d/16 → d/4`.
//! * [`part::PartBound`] — `UB_part` \[27\]: Cauchy–Schwarz upper bound on a
//!   dot product (and hence on cosine similarity / PCC) from a partial dot
//!   product plus tail norms.
//!
//! All ED bounds are *lower* bounds of the squared Euclidean distance;
//! similarity bounds are *upper* bounds — both directions admit lossless
//! pruning (Section II-C). Every implementation carries its per-object
//! **data-transfer cost** ([`traits::BoundStage::transfer_bytes_per_object`])
//! and operation cost ([`cost::EvalCost`]) because Eq. 13's execution-plan
//! optimization ranks bounds by exactly these quantities.

pub mod cascade;
pub mod cost;
pub mod fnn;
pub mod ost;
pub mod part;
pub mod sm;
pub mod traits;

pub use cascade::BoundCascade;
pub use cost::EvalCost;
pub use fnn::FnnBound;
pub use ost::OstBound;
pub use part::{PartBound, PartTarget};
pub use sm::SmBound;
pub use traits::{BoundDirection, BoundStage, PreparedBound};

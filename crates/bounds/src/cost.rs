//! Per-evaluation operation costs of a bound, used to charge the host cost
//! model and to rank execution plans (Eq. 13).

/// Operation counts incurred by evaluating one bound on one object.
/// Converted into `simpim-simkit` counters by the instrumented mining
/// algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct EvalCost {
    /// Simple arithmetic ops (add/sub).
    pub arith: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Square roots.
    pub sqrt: u64,
    /// Bytes streamed from memory per object.
    pub bytes: u64,
}

impl EvalCost {
    /// Scales every component (e.g. per-object → per-batch).
    pub fn scaled(&self, n: u64) -> EvalCost {
        EvalCost {
            arith: self.arith * n,
            mul: self.mul * n,
            div: self.div * n,
            sqrt: self.sqrt * n,
            bytes: self.bytes * n,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &EvalCost) -> EvalCost {
        EvalCost {
            arith: self.arith + other.arith,
            mul: self.mul + other.mul,
            div: self.div + other.div,
            sqrt: self.sqrt + other.sqrt,
            bytes: self.bytes + other.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_and_addition() {
        let a = EvalCost {
            arith: 1,
            mul: 2,
            div: 3,
            sqrt: 4,
            bytes: 5,
        };
        let b = a.scaled(10);
        assert_eq!(b.mul, 20);
        assert_eq!(b.bytes, 50);
        let c = a.plus(&b);
        assert_eq!(c.arith, 11);
        assert_eq!(c.sqrt, 44);
    }
}

//! `LB_OST` \[24\] — orthogonal-search-tree bound (Table 3, row 1):
//!
//! ```text
//! LB_OST(p,q) = Σ_{i=1}^{d′} (pᵢ − qᵢ)²
//!             + (√(Σ_{i=d′+1}^{d} pᵢ²) − √(Σ_{i=d′+1}^{d} qᵢ²))²
//! ```
//!
//! The partial distance over the leading `d′` dimensions is exact; the tail
//! contributes the squared difference of tail norms, which lower-bounds the
//! tail's squared distance by the reverse triangle inequality
//! `(‖a‖ − ‖b‖)² ≤ ‖a − b‖²`.

use crate::cost::EvalCost;
use crate::traits::{BoundDirection, BoundStage, PreparedBound};
use simpim_similarity::{Dataset, SimilarityError};

/// Precomputed `LB_OST` over a dataset: the leading `d′` dimensions of every
/// row stored contiguously (cache-friendly scan) plus per-row tail norms.
#[derive(Debug, Clone)]
pub struct OstBound {
    prefix: Vec<f64>,
    tail_norms: Vec<f64>,
    d_prime: usize,
    d: usize,
    n: usize,
}

impl OstBound {
    /// Builds the bound with split point `d_prime` (`1 ≤ d′ ≤ d`).
    pub fn build(dataset: &Dataset, d_prime: usize) -> Result<Self, SimilarityError> {
        let d = dataset.dim();
        if d_prime == 0 || d_prime > d {
            return Err(SimilarityError::InvalidSegmentation {
                dim: d,
                segments: d_prime,
            });
        }
        let n = dataset.len();
        let mut prefix = Vec::with_capacity(n * d_prime);
        let mut tail_norms = Vec::with_capacity(n);
        for row in dataset.rows() {
            prefix.extend_from_slice(&row[..d_prime]);
            tail_norms.push(row[d_prime..].iter().map(|&v| v * v).sum::<f64>().sqrt());
        }
        Ok(Self {
            prefix,
            tail_norms,
            d_prime,
            d,
            n,
        })
    }

    /// Number of prepared objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no objects are prepared.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl BoundStage for OstBound {
    fn name(&self) -> String {
        format!("LB_OST^{}", self.d_prime)
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::LowerBoundsDistance
    }

    fn d_prime(&self) -> usize {
        self.d_prime
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        // d′ prefix values + 1 tail norm, f64 each.
        (self.d_prime as u64 + 1) * 8
    }

    fn eval_cost(&self) -> EvalCost {
        let dp = self.d_prime as u64;
        EvalCost {
            arith: 2 * dp + 2, // d′ subs + d′ adds + tail sub/add
            mul: dp + 1,
            div: 0,
            sqrt: 0, // tail norms precomputed on both sides
            bytes: self.transfer_bytes_per_object(),
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q_prefix = query[..self.d_prime].to_vec();
        let q_tail_norm = query[self.d_prime..]
            .iter()
            .map(|&v| v * v)
            .sum::<f64>()
            .sqrt();
        Box::new(OstPrepared {
            bound: self,
            q_prefix,
            q_tail_norm,
        })
    }
}

struct OstPrepared<'a> {
    bound: &'a OstBound,
    q_prefix: Vec<f64>,
    q_tail_norm: f64,
}

impl PreparedBound for OstPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let dp = self.bound.d_prime;
        let prefix = &self.bound.prefix[i * dp..(i + 1) * dp];
        let head: f64 = prefix
            .iter()
            .zip(&self.q_prefix)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        let tail = self.bound.tail_norms[i] - self.q_tail_norm;
        head + tail * tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::measures::euclidean_sq;

    fn dataset() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3],
        ])
        .unwrap()
    }

    #[test]
    fn is_lower_bound_of_ed() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        for dp in 1..=6 {
            let b = OstBound::build(&ds, dp).unwrap();
            let prep = b.prepare(&q);
            for i in 0..ds.len() {
                let lb = prep.bound(i);
                let ed = euclidean_sq(ds.row(i), &q);
                assert!(lb <= ed + 1e-12, "dp={dp} i={i}: {lb} > {ed}");
            }
        }
    }

    #[test]
    fn full_split_is_exact() {
        // d′ = d leaves no tail: the bound degenerates to exact ED.
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        let b = OstBound::build(&ds, 6).unwrap();
        let prep = b.prepare(&q);
        for i in 0..ds.len() {
            assert!((prep.bound(i) - euclidean_sq(ds.row(i), &q)).abs() < 1e-12);
        }
    }

    #[test]
    fn tighter_with_larger_split() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        let loose = OstBound::build(&ds, 1).unwrap();
        let tight = OstBound::build(&ds, 5).unwrap();
        let (pl, pt) = (loose.prepare(&q), tight.prepare(&q));
        // Not guaranteed pointwise in general, but holds on this data and
        // documents the expected trend the cascade exploits.
        let sum_loose: f64 = (0..ds.len()).map(|i| pl.bound(i)).sum();
        let sum_tight: f64 = (0..ds.len()).map(|i| pt.bound(i)).sum();
        assert!(sum_tight >= sum_loose);
    }

    #[test]
    fn metadata() {
        let b = OstBound::build(&dataset(), 2).unwrap();
        assert_eq!(b.name(), "LB_OST^2");
        assert_eq!(b.d_prime(), 2);
        assert_eq!(b.transfer_bytes_per_object(), 24);
        assert_eq!(b.direction(), BoundDirection::LowerBoundsDistance);
        assert_eq!(b.len(), 3);
        assert!(b.eval_cost().mul > 0);
    }

    #[test]
    fn rejects_bad_split() {
        assert!(OstBound::build(&dataset(), 0).is_err());
        assert!(OstBound::build(&dataset(), 7).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn prepare_checks_query_dim() {
        let b = OstBound::build(&dataset(), 2).unwrap();
        let _ = b.prepare(&[0.1, 0.2]);
    }
}

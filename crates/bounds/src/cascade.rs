//! Ordered bound cascades.
//!
//! A filter-and-refinement algorithm applies a sequence of bounds of
//! increasing tightness (and increasing cost) before falling back to the
//! exact function — e.g. FNN's `LB_FNN^{d/64} → LB_FNN^{d/16} → LB_FNN^{d/4}`
//! pipeline of Fig. 12(a). [`BoundCascade`] is the ordered container the
//! mining algorithms execute and the execution planner (Eq. 13) rewrites.

use crate::traits::{BoundDirection, BoundStage, PreparedBound};

/// An ordered sequence of bound stages sharing one direction.
pub struct BoundCascade {
    stages: Vec<Box<dyn BoundStage>>,
}

impl BoundCascade {
    /// An empty cascade (degenerates to pure linear scan).
    pub fn empty() -> Self {
        Self { stages: Vec::new() }
    }

    /// Builds a cascade, verifying all stages bound in the same direction.
    ///
    /// # Panics
    /// Panics when stages mix directions — a lower bound on a distance and
    /// an upper bound on a similarity cannot share one pruning loop.
    pub fn new(stages: Vec<Box<dyn BoundStage>>) -> Self {
        if let Some(first) = stages.first() {
            let dir = first.direction();
            assert!(
                stages.iter().all(|s| s.direction() == dir),
                "cascade stages must share one bounding direction"
            );
        }
        Self { stages }
    }

    /// Appends a stage.
    ///
    /// # Panics
    /// Panics when the stage's direction conflicts with the cascade's.
    pub fn push(&mut self, stage: Box<dyn BoundStage>) {
        if let Some(first) = self.stages.first() {
            assert_eq!(
                first.direction(),
                stage.direction(),
                "cascade stages must share one bounding direction"
            );
        }
        self.stages.push(stage);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the cascade has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The shared direction, or `None` for an empty cascade.
    pub fn direction(&self) -> Option<BoundDirection> {
        self.stages.first().map(|s| s.direction())
    }

    /// Iterates over the stages in application order.
    pub fn stages(&self) -> impl ExactSizeIterator<Item = &dyn BoundStage> {
        self.stages.iter().map(|s| s.as_ref())
    }

    /// Prepares every stage for one query, in order.
    pub fn prepare(&self, query: &[f64]) -> Vec<Box<dyn PreparedBound + '_>> {
        self.stages.iter().map(|s| s.prepare(query)).collect()
    }

    /// Stage names, for reports.
    pub fn names(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.name()).collect()
    }
}

impl std::fmt::Debug for BoundCascade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundCascade")
            .field("stages", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnn::FnnBound;
    use crate::part::{PartBound, PartTarget};
    use simpim_similarity::Dataset;

    fn dataset() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3, 0.6, 0.4],
        ])
        .unwrap()
    }

    #[test]
    fn fnn_style_cascade() {
        let ds = dataset();
        let cascade = BoundCascade::new(vec![
            Box::new(FnnBound::build(&ds, 1).unwrap()),
            Box::new(FnnBound::build(&ds, 2).unwrap()),
            Box::new(FnnBound::build(&ds, 4).unwrap()),
        ]);
        assert_eq!(cascade.len(), 3);
        assert_eq!(cascade.names(), vec!["LB_FNN^1", "LB_FNN^2", "LB_FNN^4"]);
        assert_eq!(
            cascade.direction(),
            Some(BoundDirection::LowerBoundsDistance)
        );
        let q = vec![0.5; 8];
        let prepared = cascade.prepare(&q);
        assert_eq!(prepared.len(), 3);
        // Later (finer) stages are at least as tight on every object.
        for i in 0..ds.len() {
            assert!(prepared[2].bound(i) >= prepared[0].bound(i) - 1e-12);
        }
    }

    #[test]
    fn empty_cascade() {
        let c = BoundCascade::empty();
        assert!(c.is_empty());
        assert_eq!(c.direction(), None);
        assert!(c.prepare(&[0.0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "direction")]
    fn mixed_directions_rejected() {
        let ds = dataset();
        let _ = BoundCascade::new(vec![
            Box::new(FnnBound::build(&ds, 2).unwrap()),
            Box::new(PartBound::build(&ds, 2, PartTarget::Cosine).unwrap()),
        ]);
    }

    #[test]
    #[should_panic(expected = "direction")]
    fn push_checks_direction() {
        let ds = dataset();
        let mut c = BoundCascade::new(vec![Box::new(FnnBound::build(&ds, 2).unwrap())]);
        c.push(Box::new(PartBound::build(&ds, 2, PartTarget::Dot).unwrap()));
    }
}

//! `UB_part` \[27\] — Cauchy–Schwarz upper bound on a dot product (Table 3,
//! row 4), covering the maximum-dot-product form of CS and PCC search:
//!
//! ```text
//! UB_part(p,q) = Σ_{i=1}^{d′} pᵢqᵢ + √(Σ_{i=d′+1}^d pᵢ²) · √(Σ_{i=d′+1}^d qᵢ²)
//! ```
//!
//! The prefix dot product is exact; the tail is bounded by Cauchy–Schwarz.
//! Since `‖p‖‖q‖ > 0` and `Φa(p)Φa(q) > 0` are query-independent positive
//! factors, the same bound divides through to an upper bound on cosine
//! similarity and on the Pearson correlation coefficient (Table 4 forms).

use crate::cost::EvalCost;
use crate::traits::{BoundDirection, BoundStage, PreparedBound};
use simpim_similarity::{stats, Dataset, SimilarityError};

/// Which similarity the dot-product bound is lifted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PartTarget {
    /// Raw dot product `p·q`.
    Dot,
    /// Cosine similarity `p·q / (‖p‖‖q‖)`.
    Cosine,
    /// Pearson correlation `(d·p·q − Σp·Σq) / (Φa(p)·Φa(q))`.
    Pearson,
}

/// Precomputed `UB_part` over a dataset.
#[derive(Debug, Clone)]
pub struct PartBound {
    prefix: Vec<f64>,
    tail_norms: Vec<f64>,
    /// `‖p‖` (Cosine) or `Φa(p)` (Pearson); unused for Dot.
    denoms: Vec<f64>,
    /// `Σ pᵢ`, Pearson only.
    sums: Vec<f64>,
    target: PartTarget,
    d_prime: usize,
    d: usize,
    n: usize,
}

impl PartBound {
    /// Builds the bound with split point `d_prime` for the given target.
    pub fn build(
        dataset: &Dataset,
        d_prime: usize,
        target: PartTarget,
    ) -> Result<Self, SimilarityError> {
        let d = dataset.dim();
        if d_prime == 0 || d_prime > d {
            return Err(SimilarityError::InvalidSegmentation {
                dim: d,
                segments: d_prime,
            });
        }
        let n = dataset.len();
        let mut prefix = Vec::with_capacity(n * d_prime);
        let mut tail_norms = Vec::with_capacity(n);
        let mut denoms = Vec::with_capacity(n);
        let mut sums = Vec::with_capacity(n);
        for row in dataset.rows() {
            prefix.extend_from_slice(&row[..d_prime]);
            tail_norms.push(stats::norm(&row[d_prime..]));
            match target {
                PartTarget::Dot => denoms.push(1.0),
                PartTarget::Cosine => denoms.push(stats::norm(row)),
                PartTarget::Pearson => {
                    let s = stats::sum(row);
                    denoms.push((d as f64 * stats::norm_sq(row) - s * s).max(0.0).sqrt());
                    sums.push(s);
                }
            }
        }
        Ok(Self {
            prefix,
            tail_norms,
            denoms,
            sums,
            target,
            d_prime,
            d,
            n,
        })
    }

    /// Number of prepared objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no objects are prepared.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The lifted target.
    pub fn target(&self) -> PartTarget {
        self.target
    }
}

impl BoundStage for PartBound {
    fn name(&self) -> String {
        let suffix = match self.target {
            PartTarget::Dot => "dot",
            PartTarget::Cosine => "CS",
            PartTarget::Pearson => "PCC",
        };
        format!("UB_part^{}({suffix})", self.d_prime)
    }

    fn direction(&self) -> BoundDirection {
        BoundDirection::UpperBoundsSimilarity
    }

    fn d_prime(&self) -> usize {
        self.d_prime
    }

    fn transfer_bytes_per_object(&self) -> u64 {
        // prefix + tail norm + denominator (+ sum for PCC).
        let extras = match self.target {
            PartTarget::Dot => 1,
            PartTarget::Cosine => 2,
            PartTarget::Pearson => 3,
        };
        (self.d_prime as u64 + extras) * 8
    }

    fn eval_cost(&self) -> EvalCost {
        let dp = self.d_prime as u64;
        EvalCost {
            arith: dp + 2,
            mul: dp + 2,
            div: matches!(self.target, PartTarget::Cosine | PartTarget::Pearson) as u64,
            sqrt: 0,
            bytes: self.transfer_bytes_per_object(),
        }
    }

    fn prepare(&self, query: &[f64]) -> Box<dyn PreparedBound + '_> {
        assert_eq!(query.len(), self.d, "query dimensionality mismatch");
        let q_prefix = query[..self.d_prime].to_vec();
        let q_tail_norm = stats::norm(&query[self.d_prime..]);
        let (q_denom, q_sum) = match self.target {
            PartTarget::Dot => (1.0, 0.0),
            PartTarget::Cosine => (stats::norm(query), 0.0),
            PartTarget::Pearson => {
                let s = stats::sum(query);
                let phi = (self.d as f64 * stats::norm_sq(query) - s * s)
                    .max(0.0)
                    .sqrt();
                (phi, s)
            }
        };
        Box::new(PartPrepared {
            bound: self,
            q_prefix,
            q_tail_norm,
            q_denom,
            q_sum,
        })
    }
}

struct PartPrepared<'a> {
    bound: &'a PartBound,
    q_prefix: Vec<f64>,
    q_tail_norm: f64,
    q_denom: f64,
    q_sum: f64,
}

impl PreparedBound for PartPrepared<'_> {
    fn bound(&self, i: usize) -> f64 {
        let dp = self.bound.d_prime;
        let prefix = &self.bound.prefix[i * dp..(i + 1) * dp];
        let ub_dot =
            stats::dot(prefix, &self.q_prefix) + self.bound.tail_norms[i] * self.q_tail_norm;
        match self.bound.target {
            PartTarget::Dot => ub_dot,
            PartTarget::Cosine => {
                let denom = self.bound.denoms[i] * self.q_denom;
                if denom == 0.0 {
                    0.0 // zero vector ⇒ similarity defined as 0
                } else {
                    ub_dot / denom
                }
            }
            PartTarget::Pearson => {
                let denom = self.bound.denoms[i] * self.q_denom;
                if denom == 0.0 {
                    0.0 // constant vector ⇒ PCC defined as 0
                } else {
                    (self.bound.d as f64 * ub_dot - self.bound.sums[i] * self.q_sum) / denom
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::measures::{cosine, pearson};

    fn dataset() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8],
            vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3],
        ])
        .unwrap()
    }

    #[test]
    fn upper_bounds_dot_product() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        for dp in 1..=6 {
            let b = PartBound::build(&ds, dp, PartTarget::Dot).unwrap();
            let prep = b.prepare(&q);
            for i in 0..ds.len() {
                let exact = stats::dot(ds.row(i), &q);
                assert!(prep.bound(i) >= exact - 1e-12, "dp={dp} i={i}");
            }
        }
    }

    #[test]
    fn upper_bounds_cosine_and_pearson() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        for dp in 1..=6 {
            let cs = PartBound::build(&ds, dp, PartTarget::Cosine).unwrap();
            let pcc = PartBound::build(&ds, dp, PartTarget::Pearson).unwrap();
            let (pc, pp) = (cs.prepare(&q), pcc.prepare(&q));
            for i in 0..ds.len() {
                assert!(
                    pc.bound(i) >= cosine(ds.row(i), &q) - 1e-12,
                    "CS dp={dp} i={i}"
                );
                assert!(
                    pp.bound(i) >= pearson(ds.row(i), &q) - 1e-12,
                    "PCC dp={dp} i={i}"
                );
            }
        }
    }

    #[test]
    fn full_split_is_exact_dot() {
        let ds = dataset();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        let b = PartBound::build(&ds, 6, PartTarget::Dot).unwrap();
        let prep = b.prepare(&q);
        for i in 0..ds.len() {
            assert!((prep.bound(i) - stats::dot(ds.row(i), &q)).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_vector_pcc_is_zero() {
        let ds = Dataset::from_rows(&[vec![0.5; 6]]).unwrap();
        let b = PartBound::build(&ds, 2, PartTarget::Pearson).unwrap();
        let q = [0.4, 0.3, 0.9, 0.1, 0.6, 0.2];
        assert_eq!(b.prepare(&q).bound(0), 0.0);
    }

    #[test]
    fn metadata() {
        let b = PartBound::build(&dataset(), 2, PartTarget::Cosine).unwrap();
        assert_eq!(b.direction(), BoundDirection::UpperBoundsSimilarity);
        assert!(b.name().contains("CS"));
        assert_eq!(b.transfer_bytes_per_object(), (2 + 2) * 8);
        assert_eq!(b.target(), PartTarget::Cosine);
        assert_eq!(b.eval_cost().div, 1);
        assert_eq!(
            PartBound::build(&dataset(), 2, PartTarget::Dot)
                .unwrap()
                .eval_cost()
                .div,
            0
        );
    }

    #[test]
    fn rejects_bad_split() {
        assert!(PartBound::build(&dataset(), 0, PartTarget::Dot).is_err());
        assert!(PartBound::build(&dataset(), 7, PartTarget::Dot).is_err());
    }
}

//! Shared infrastructure for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers). All workloads are
//! scaled-down synthetic stand-ins (`SIMPIM_SCALE`, default 1% of Table 6's
//! object counts); absolute times are model times, so only *shapes* are
//! comparable with the paper.

pub mod artifact;
pub use artifact::BenchRun;

use simpim_bounds::BoundCascade;
use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_core::CoreError;
use simpim_datasets::{generate, sample_queries, spec::env_scale, PaperDataset, SyntheticConfig};
use simpim_mining::knn::algorithms::{fnn_cascade, ost_cascade, sm_cascade};
use simpim_mining::knn::cascade::knn_cascade;
use simpim_mining::knn::pim::knn_pim_ed;
use simpim_mining::knn::standard::knn_standard;
use simpim_mining::{Architecture, MiningError, RunReport};
use simpim_similarity::{Dataset, Measure, NormalizedDataset};
use simpim_simkit::HostParams;

/// Minimum object count any scaled dataset is generated with.
pub const MIN_N: usize = 2_000;

/// Number of kNN queries averaged per configuration.
pub const QUERIES: usize = 5;

/// One generated workload.
pub struct Workload {
    /// Which paper dataset this mirrors.
    pub dataset: PaperDataset,
    /// The generated (normalized) data.
    pub data: Dataset,
    /// Query objects.
    pub queries: Vec<Vec<f64>>,
}

/// Generates the scaled workload for one paper dataset.
pub fn load(dataset: PaperDataset) -> Workload {
    let spec = dataset.spec();
    let n = spec.scaled_n(env_scale(), MIN_N);
    let data = generate(&SyntheticConfig::from_spec(&spec, n));
    let queries = sample_queries(&data, QUERIES, 0.02, spec.seed ^ 0xBEEF);
    Workload {
        dataset,
        data,
        queries,
    }
}

/// The host model used by every harness.
pub fn params() -> HostParams {
    HostParams::default()
}

/// The executor configuration used by the harnesses: the crossbar budget
/// shrinks with `SIMPIM_SCALE` so the capacity pressure of the paper's
/// 2 GB PIM array against full-size datasets is preserved at laptop scale
/// (this reproduces the paper's `s = 105` on MSD and `s = 50` on ImageNet
/// exactly).
pub fn scaled_executor_config() -> ExecutorConfig {
    let mut cfg = ExecutorConfig::default();
    cfg.pim.num_crossbars = ((cfg.pim.num_crossbars as f64 * env_scale()) as usize).max(256);
    cfg
}

/// Prepares the scaled PIM executor for a workload's data.
pub fn prepare_executor(data: &Dataset) -> Result<PimExecutor, CoreError> {
    let nds = NormalizedDataset::assert_normalized_ref(data);
    PimExecutor::prepare_euclidean(scaled_executor_config(), nds)
}

/// The kNN baseline algorithms of Section VI-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnAlgo {
    /// Linear scan.
    Standard,
    /// LB_OST filter.
    Ost,
    /// LB_SM filter.
    Sm,
    /// Three-level LB_FNN pipeline.
    Fnn,
}

impl KnnAlgo {
    /// All four, in the paper's order.
    pub const ALL: [KnnAlgo; 4] = [KnnAlgo::Standard, KnnAlgo::Ost, KnnAlgo::Sm, KnnAlgo::Fnn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KnnAlgo::Standard => "Standard",
            KnnAlgo::Ost => "OST",
            KnnAlgo::Sm => "SM",
            KnnAlgo::Fnn => "FNN",
        }
    }

    /// Builds this algorithm's bound cascade (empty for Standard).
    pub fn cascade(self, data: &Dataset) -> BoundCascade {
        match self {
            KnnAlgo::Standard => BoundCascade::empty(),
            KnnAlgo::Ost => ost_cascade(data).expect("valid split"),
            KnnAlgo::Sm => sm_cascade(data).expect("valid split"),
            KnnAlgo::Fnn => fnn_cascade(data).expect("valid split"),
        }
    }

    /// The function names this algorithm's PIM offload targets (set `F` of
    /// Eq. 2): the exact measure plus its bound functions.
    pub fn offloadable(self, data: &Dataset) -> Vec<String> {
        let mut names = vec!["ED".to_string()];
        names.extend(self.cascade(data).names());
        names
    }
}

/// Runs one baseline kNN query workload; returns the merged report.
pub fn run_knn_baseline(algo: KnnAlgo, w: &Workload, k: usize) -> RunReport {
    let cascade = algo.cascade(&w.data);
    let mut total = RunReport::new(Architecture::ConventionalDram);
    for q in &w.queries {
        let res = if matches!(algo, KnnAlgo::Standard) {
            knn_standard(&w.data, q, k, Measure::EuclideanSq)
        } else {
            knn_cascade(&w.data, &cascade, q, k, Measure::EuclideanSq)
        }
        .expect("float measures");
        total.merge(&res.report);
    }
    total
}

/// Runs the `-PIM` counterpart of a kNN baseline (the bottleneck bound is
/// replaced by the executor's PIM bound; the remaining original bounds of
/// FNN stay in place, per Section VI-C's default plan).
pub fn run_knn_pim(
    algo: KnnAlgo,
    exec: &mut PimExecutor,
    w: &Workload,
    k: usize,
) -> Result<RunReport, MiningError> {
    // Retained original bounds: FNN keeps its finer levels; the
    // single-bound algorithms replace their only bound.
    let retained = match algo {
        KnnAlgo::Fnn => {
            let mut stages: Vec<Box<dyn simpim_bounds::BoundStage>> = Vec::new();
            let levels = simpim_mining::knn::algorithms::fnn_levels(w.data.dim());
            for &s in levels.iter().skip(1) {
                stages.push(Box::new(
                    simpim_bounds::FnnBound::build(&w.data, s).expect("divisor"),
                ));
            }
            BoundCascade::new(stages)
        }
        _ => BoundCascade::empty(),
    };
    let mut total = RunReport::new(Architecture::ReRamPim);
    for q in &w.queries {
        let res = knn_pim_ed(exec, &w.data, &retained, q, k)?;
        total.merge(&res.report);
    }
    Ok(total)
}

/// Model milliseconds of a merged report.
pub fn ms(report: &RunReport) -> f64 {
    report.total_ms(&params())
}

/// The k-means algorithms of Section VI-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KmeansAlgo {
    /// Lloyd's algorithm.
    Standard,
    /// Elkan's triangle-inequality variant.
    Elkan,
    /// Drake's adaptive-bound variant.
    Drake,
    /// Yinyang global/group filtering.
    Yinyang,
}

impl KmeansAlgo {
    /// All four, in Table 7 order.
    pub const ALL: [KmeansAlgo; 4] = [
        KmeansAlgo::Standard,
        KmeansAlgo::Elkan,
        KmeansAlgo::Drake,
        KmeansAlgo::Yinyang,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KmeansAlgo::Standard => "Standard",
            KmeansAlgo::Elkan => "Elkan",
            KmeansAlgo::Drake => "Drake",
            KmeansAlgo::Yinyang => "Yinyang",
        }
    }

    /// Runs the algorithm (optionally PIM-assisted).
    pub fn run(
        self,
        data: &Dataset,
        cfg: &simpim_mining::kmeans::KmeansConfig,
        pim: Option<&mut simpim_mining::kmeans::pim::PimAssist<'_>>,
    ) -> Result<simpim_mining::kmeans::KmeansResult, MiningError> {
        match self {
            KmeansAlgo::Standard => simpim_mining::kmeans::lloyd::kmeans_lloyd(data, cfg, pim),
            KmeansAlgo::Elkan => simpim_mining::kmeans::elkan::kmeans_elkan(data, cfg, pim),
            KmeansAlgo::Drake => simpim_mining::kmeans::drake::kmeans_drake(data, cfg, pim),
            KmeansAlgo::Yinyang => simpim_mining::kmeans::yinyang::kmeans_yinyang(data, cfg, pim),
        }
    }
}

/// Runs one k-means configuration on both architectures; returns
/// `(baseline result, PIM result)`. Assignments are asserted identical.
pub fn run_kmeans_pair(
    algo: KmeansAlgo,
    data: &Dataset,
    cfg: &simpim_mining::kmeans::KmeansConfig,
) -> Result<
    (
        simpim_mining::kmeans::KmeansResult,
        simpim_mining::kmeans::KmeansResult,
    ),
    MiningError,
> {
    let base = algo.run(data, cfg, None)?;
    let mut exec = prepare_executor(data)?;
    let mut assist = simpim_mining::kmeans::pim::PimAssist::new(&mut exec);
    let pim = algo.run(data, cfg, Some(&mut assist))?;
    assert_eq!(
        base.assignments,
        pim.assignments,
        "{} PIM must be lossless",
        algo.name()
    );
    Ok((base, pim))
}

/// Model ms **per iteration** of a k-means result (Table 7's unit).
pub fn ms_per_iter(res: &simpim_mining::kmeans::KmeansResult) -> f64 {
    res.report.total_ms(&params()) / res.iterations.max(1) as f64
}

/// Pretty-prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a milliseconds value.
pub fn fmt_ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a speedup factor.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_scaled_and_deterministic() {
        let a = load(PaperDataset::Year);
        let b = load(PaperDataset::Year);
        assert_eq!(a.data, b.data);
        assert!(a.data.len() >= MIN_N);
        assert_eq!(a.data.dim(), 90);
        assert_eq!(a.queries.len(), QUERIES);
    }

    #[test]
    fn knn_algo_metadata() {
        let w = load(PaperDataset::Year);
        assert_eq!(KnnAlgo::Standard.cascade(&w.data).len(), 0);
        assert!(KnnAlgo::Fnn.cascade(&w.data).len() >= 2);
        assert!(KnnAlgo::Fnn.offloadable(&w.data).len() >= 3);
        assert_eq!(KnnAlgo::Ost.name(), "OST");
    }

    #[test]
    fn baseline_and_pim_agree_on_small_workload() {
        let w = load(PaperDataset::Year);
        let base = run_knn_baseline(KnnAlgo::Standard, &w, 10);
        let mut exec = prepare_executor(&w.data).unwrap();
        let pim = run_knn_pim(KnnAlgo::Standard, &mut exec, &w, 10).unwrap();
        assert!(ms(&pim) < ms(&base), "PIM must be faster on the model");
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_x(2.0), "2.0x");
    }
}

//! Fig. 16 — execution time with execution-plan optimization (Section V-D).
//!
//! Compares, on the MSD-shaped workload (k = 10):
//! * `FNN` — the three-level baseline cascade,
//! * `FNN-PIM` — first level replaced by `LB_PIM-FNN^s`, other levels
//!   retained (the default of Section VI-C),
//! * `FNN-PIM-optimize` — the Eq. 13 planner's choice (the paper's
//!   measured outcome: drop all original bounds, keep only the PIM bound),
//! * `FNN-PIM-oracle` — Eq. 2's lower bound.

use simpim_bench::{
    fmt_ms, fmt_x, load, ms, params, prepare_executor, print_table, run_knn_baseline, run_knn_pim,
    KnnAlgo,
};
use simpim_bounds::{BoundCascade, BoundStage, FnnBound};
use simpim_core::planner::Planner;
use simpim_core::stage::PimFnnStage;
use simpim_datasets::PaperDataset;
use simpim_mining::knn::pim::knn_pim_ed;
use simpim_mining::{Architecture, RunReport};
use simpim_profiling::oracle_report;
use simpim_similarity::{Measure, NormalizedDataset};

fn main() {
    let mut run = simpim_bench::BenchRun::start("fig16_plan");
    let w = load(PaperDataset::Msd);
    run.set_dataset(&w.dataset.spec());
    let nds = NormalizedDataset::assert_normalized(w.data.clone());
    let p = params();
    let k = 10;

    // Baseline FNN and the default FNN-PIM.
    let base = run_knn_baseline(KnnAlgo::Fnn, &w, k);
    let mut exec = prepare_executor(&w.data).expect("fits");
    let s = match exec.prepared() {
        simpim_core::executor::PreparedFunction::Fnn { d_prime, .. } => *d_prime,
        _ => w.data.dim(),
    };
    let pim_default = run_knn_pim(KnnAlgo::Fnn, &mut exec, &w, k).expect("prepared");

    // Plan optimization: candidates = FNN levels + the PIM bound at s.
    let levels = simpim_mining::knn::algorithms::fnn_levels(w.data.dim());
    let classic: Vec<FnnBound> = levels
        .iter()
        .map(|&l| FnnBound::build(&w.data, l).expect("divisor"))
        .collect();
    let pim_stage = PimFnnStage::build(&nds, s, 1e6).expect("divisor");
    let mut stages: Vec<&dyn BoundStage> = classic.iter().map(|b| b as &dyn BoundStage).collect();
    stages.push(&pim_stage);
    let planner = Planner {
        refine_bytes_per_object: w.data.dim() as u64 * 8,
        n: w.data.len(),
    };
    let plan = planner
        .best_plan_measured(&stages, &w.data, &w.queries, k, Measure::EuclideanSq)
        .expect("valid planner inputs");
    println!(
        "planner's choice: {:?} ({:.2} MB/query estimated)",
        plan.names,
        plan.estimated_bytes / 1e6
    );

    // Execute the optimized plan: retained = the chosen classic bounds
    // (the PIM stage runs on the crossbars regardless of its position).
    let retained_stages: Vec<Box<dyn BoundStage>> = plan
        .stages
        .iter()
        .filter(|&&i| i < classic.len())
        .map(|&i| Box::new(classic[i].clone()) as Box<dyn BoundStage>)
        .collect();
    let retained = BoundCascade::new(retained_stages);
    let mut optimized = RunReport::new(Architecture::ReRamPim);
    for q in &w.queries {
        let res = knn_pim_ed(&mut exec, &w.data, &retained, q, k).expect("prepared");
        optimized.merge(&res.report);
    }

    // Oracle.
    let offload = KnnAlgo::Fnn.offloadable(&w.data);
    let refs: Vec<&str> = offload.iter().map(String::as_str).collect();
    let oracle = oracle_report(&base.profile, &p, &refs);

    run.record_report("fnn/base", &base);
    run.record_report("fnn/pim_default", &pim_default);
    run.record_report("fnn/pim_optimized", &optimized);
    run.push_extra(
        "plan",
        simpim_obs::Json::Arr(
            plan.names
                .iter()
                .map(|s| simpim_obs::Json::Str(s.clone()))
                .collect(),
        ),
    );
    let base_ms = ms(&base);
    let rows = vec![
        vec!["FNN".into(), fmt_ms(base_ms), "-".into()],
        vec![
            "FNN-PIM".into(),
            fmt_ms(ms(&pim_default)),
            fmt_x(base_ms / ms(&pim_default)),
        ],
        vec![
            "FNN-PIM-optimize".into(),
            fmt_ms(ms(&optimized)),
            fmt_x(base_ms / ms(&optimized)),
        ],
        vec![
            "FNN-PIM-oracle".into(),
            fmt_ms(oracle.oracle_ns / 1e6),
            fmt_x(base_ms / (oracle.oracle_ns / 1e6)),
        ],
    ];
    print_table(
        &format!(
            "Fig. 16: execution-plan optimization (MSD-shaped, N={}, k=10, s={s})",
            w.data.len()
        ),
        &["variant", "time (ms)", "vs FNN"],
        &rows,
    );
    assert!(
        ms(&optimized) <= ms(&pim_default) * 1.05,
        "optimized plan must not regress"
    );
    println!("paper: the planner drops all original bounds (keep only");
    println!("       LB_PIM-FNN^105); FNN-PIM-optimize approaches FNN-PIM-oracle");
    run.finish();
}

//! Fault sweep — robustness of PIM kNN under crossbar hard faults.
//!
//! Beyond-the-paper experiment: injects deterministic stuck-at cells, dead
//! bitlines/wordlines, ADC glitches and wear-out into the crossbars (see
//! `simpim-reram::faults`), runs kNN through the scrub/remap/quarantine
//! recovery pipeline, and checks the results against the fault-free run.
//! The exactness guarantee says every row must match bit-identically: the
//! guard-banded bounds stay valid lower bounds (only pruning power
//! shrinks) and quarantined objects are refined exactly on the host.
//!
//! Scale the workload with `SIMPIM_BENCH_SCALE` (e.g. `0.01` for a CI
//! smoke run).

use simpim_bounds::BoundCascade;
use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_datasets::{generate, sample_queries, spec::env_scale, SyntheticConfig};
use simpim_mining::knn::pim::knn_pim_ed;
use simpim_reram::{CrossbarConfig, FaultConfig, PimConfig};
use simpim_similarity::NormalizedDataset;

fn exec_cfg_with(faults: Option<FaultConfig>, num_crossbars: usize) -> ExecutorConfig {
    ExecutorConfig {
        pim: PimConfig {
            crossbar: CrossbarConfig {
                size: 64,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars,
            ..Default::default()
        },
        alpha: 1e6,
        operand_bits: 32,
        double_buffer: false,
        parallel_regions: true,
        faults,
        scrub_interval: 4,
    }
}

fn exec_cfg(faults: Option<FaultConfig>) -> ExecutorConfig {
    exec_cfg_with(faults, 40_000)
}

fn main() {
    let mut run = simpim_bench::BenchRun::start("fault_sweep");
    let n = ((1000.0 * env_scale()) as usize).max(100);
    let k = 10;
    let ds = generate(&SyntheticConfig {
        n,
        d: 64,
        clusters: 5,
        cluster_std: 0.04,
        stat_uniformity: 0.0,
        seed: 33,
    });
    let queries = sample_queries(&ds, 8, 0.02, 5);
    let nds = NormalizedDataset::assert_normalized(ds.clone());

    // Fault-free reference.
    let mut clean = PimExecutor::prepare_euclidean(exec_cfg(None), &nds).expect("prepare");
    let reference: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            knn_pim_ed(&mut clean, &ds, &BoundCascade::empty(), q, k)
                .expect("clean query")
                .indices()
        })
        .collect();

    let scenarios: Vec<(&str, FaultConfig)> = vec![
        (
            "stuck cells (1e-3)",
            FaultConfig {
                stuck_low_rate: 5e-4,
                stuck_high_rate: 5e-4,
                seed: 1,
                ..Default::default()
            },
        ),
        (
            "dead lines (2%)",
            FaultConfig {
                dead_bitline_rate: 0.02,
                dead_wordline_rate: 0.02,
                seed: 2,
                ..Default::default()
            },
        ),
        (
            "glitchy ADC (10%)",
            FaultConfig {
                adc_glitch_rate: 0.1,
                adc_retry_limit: 8,
                seed: 3,
                ..Default::default()
            },
        ),
        (
            "mixed + wear",
            FaultConfig {
                stuck_low_rate: 1e-3,
                dead_wordline_rate: 0.01,
                adc_glitch_rate: 0.05,
                adc_retry_limit: 8,
                endurance_limit: 1_000_000,
                seed: 4,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, faults) in &scenarios {
        let mut exec =
            PimExecutor::prepare_euclidean(exec_cfg(Some(*faults)), &nds).expect("prepare faulty");
        let mut identical = true;
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k)
                .expect("faulty query")
                .indices();
            identical &= got == *want;
        }
        let fc = *exec.fault_counters();
        run.note_stage(
            &format!("scenario/{name}"),
            0,
            fc.scrubs,
            fc.faults_detected,
            0,
        );
        rows.push(vec![
            name.to_string(),
            format!("{}", fc.faults_detected),
            format!("{}", fc.adc_retries),
            format!("{}", fc.remapped_crossbars),
            format!("{}", fc.quarantined_rows),
            format!("{}", fc.guarded_bounds),
            format!("{}", fc.fallback_refinements),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(identical, "{name}: faulty kNN diverged from fault-free");
    }

    // Worst case: a dead crossbar with zero spare capacity. The dead
    // objects cannot be remapped — they are quarantined and every query
    // recovers them by exact host-side refinement.
    {
        let budget = clean.report().crossbars_used;
        let faults = FaultConfig {
            dead_wordline_rate: 0.3,
            seed: 5,
            ..Default::default()
        };
        let mut exec = PimExecutor::prepare_euclidean(exec_cfg_with(Some(faults), budget), &nds)
            .expect("prepare quarantined");
        let mut identical = true;
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k)
                .expect("quarantined query")
                .indices();
            identical &= got == *want;
        }
        let fc = *exec.fault_counters();
        run.note_stage(
            "scenario/dead, no spares",
            0,
            fc.scrubs,
            fc.faults_detected,
            0,
        );
        rows.push(vec![
            "dead, no spares".to_string(),
            format!("{}", fc.faults_detected),
            format!("{}", fc.adc_retries),
            format!("{}", fc.remapped_crossbars),
            format!("{}", fc.quarantined_rows),
            format!("{}", fc.guarded_bounds),
            format!("{}", fc.fallback_refinements),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(identical, "quarantine: faulty kNN diverged from fault-free");
        assert!(
            fc.quarantined_rows > 0 && fc.fallback_refinements > 0,
            "the no-spares scenario must exercise quarantine + host fallback"
        );
    }

    simpim_bench::print_table(
        &format!("Fault sweep: PIM kNN under injected crossbar faults (N={n}, k={k})"),
        &[
            "scenario",
            "faults",
            "retries",
            "remaps",
            "quarantined",
            "guarded",
            "fallbacks",
            "top-k identical",
        ],
        &rows,
    );
    println!("recovery pipeline: scrub -> classify -> remap-to-spares -> quarantine");
    println!("exactness: guard-banded bounds stay valid; quarantined rows refined");
    println!("           exactly on the host -- top-k matches fault-free bit-for-bit");
    run.finish();
}

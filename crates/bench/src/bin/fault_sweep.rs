//! Fault sweep — robustness of PIM kNN under crossbar hard faults.
//!
//! Beyond-the-paper experiment: injects deterministic stuck-at cells, dead
//! bitlines/wordlines, ADC glitches and wear-out into the crossbars (see
//! `simpim-reram::faults`), runs kNN through the scrub/remap/quarantine
//! recovery pipeline, and checks the results against the fault-free run.
//! The exactness guarantee says every row must match bit-identically: the
//! guard-banded bounds stay valid lower bounds (only pruning power
//! shrinks) and quarantined objects are refined exactly on the host.
//!
//! The second half drills *whole-bank* loss: a replicated shard
//! (`simpim-serve::ReplicaSet`) has 1..R−1 of its banks fail-stopped
//! mid-stream; every answer must stay identical through the failover,
//! and the recovery time to re-replicate the lost banks is reported.
//!
//! Scale the workload with `SIMPIM_BENCH_SCALE` (e.g. `0.01` for a CI
//! smoke run).

use std::time::Instant;

use simpim_bounds::BoundCascade;
use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_datasets::{generate, sample_queries, spec::env_scale, SyntheticConfig};
use simpim_mining::knn::pim::knn_pim_ed;
use simpim_obs::Json;
use simpim_reram::{CrossbarConfig, FaultConfig, PimConfig};
use simpim_serve::{ReplicaSet, ShardConfig};
use simpim_similarity::NormalizedDataset;

fn exec_cfg_with(faults: Option<FaultConfig>, num_crossbars: usize) -> ExecutorConfig {
    ExecutorConfig {
        pim: PimConfig {
            crossbar: CrossbarConfig {
                size: 64,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars,
            ..Default::default()
        },
        alpha: 1e6,
        operand_bits: 32,
        double_buffer: false,
        parallel_regions: true,
        faults,
        scrub_interval: 4,
    }
}

fn exec_cfg(faults: Option<FaultConfig>) -> ExecutorConfig {
    exec_cfg_with(faults, 40_000)
}

fn main() {
    let mut run = simpim_bench::BenchRun::start("fault_sweep");
    let n = ((1000.0 * env_scale()) as usize).max(100);
    let k = 10;
    let ds = generate(&SyntheticConfig {
        n,
        d: 64,
        clusters: 5,
        cluster_std: 0.04,
        stat_uniformity: 0.0,
        seed: 33,
    });
    let queries = sample_queries(&ds, 8, 0.02, 5);
    let nds = NormalizedDataset::assert_normalized(ds.clone());

    // Fault-free reference.
    let mut clean = PimExecutor::prepare_euclidean(exec_cfg(None), &nds).expect("prepare");
    let reference: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            knn_pim_ed(&mut clean, &ds, &BoundCascade::empty(), q, k)
                .expect("clean query")
                .indices()
        })
        .collect();

    let scenarios: Vec<(&str, FaultConfig)> = vec![
        (
            "stuck cells (1e-3)",
            FaultConfig {
                stuck_low_rate: 5e-4,
                stuck_high_rate: 5e-4,
                seed: 1,
                ..Default::default()
            },
        ),
        (
            "dead lines (2%)",
            FaultConfig {
                dead_bitline_rate: 0.02,
                dead_wordline_rate: 0.02,
                seed: 2,
                ..Default::default()
            },
        ),
        (
            "glitchy ADC (10%)",
            FaultConfig {
                adc_glitch_rate: 0.1,
                adc_retry_limit: 8,
                seed: 3,
                ..Default::default()
            },
        ),
        (
            "mixed + wear",
            FaultConfig {
                stuck_low_rate: 1e-3,
                dead_wordline_rate: 0.01,
                adc_glitch_rate: 0.05,
                adc_retry_limit: 8,
                endurance_limit: 1_000_000,
                seed: 4,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, faults) in &scenarios {
        let mut exec =
            PimExecutor::prepare_euclidean(exec_cfg(Some(*faults)), &nds).expect("prepare faulty");
        let mut identical = true;
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k)
                .expect("faulty query")
                .indices();
            identical &= got == *want;
        }
        let fc = *exec.fault_counters();
        run.note_stage(
            &format!("scenario/{name}"),
            0,
            fc.scrubs,
            fc.faults_detected,
            0,
        );
        rows.push(vec![
            name.to_string(),
            format!("{}", fc.faults_detected),
            format!("{}", fc.adc_retries),
            format!("{}", fc.remapped_crossbars),
            format!("{}", fc.quarantined_rows),
            format!("{}", fc.guarded_bounds),
            format!("{}", fc.fallback_refinements),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(identical, "{name}: faulty kNN diverged from fault-free");
    }

    // Worst case: a dead crossbar with zero spare capacity. The dead
    // objects cannot be remapped — they are quarantined and every query
    // recovers them by exact host-side refinement.
    {
        let budget = clean.report().crossbars_used;
        let faults = FaultConfig {
            dead_wordline_rate: 0.3,
            seed: 5,
            ..Default::default()
        };
        let mut exec = PimExecutor::prepare_euclidean(exec_cfg_with(Some(faults), budget), &nds)
            .expect("prepare quarantined");
        let mut identical = true;
        for (q, want) in queries.iter().zip(&reference) {
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, k)
                .expect("quarantined query")
                .indices();
            identical &= got == *want;
        }
        let fc = *exec.fault_counters();
        run.note_stage(
            "scenario/dead, no spares",
            0,
            fc.scrubs,
            fc.faults_detected,
            0,
        );
        rows.push(vec![
            "dead, no spares".to_string(),
            format!("{}", fc.faults_detected),
            format!("{}", fc.adc_retries),
            format!("{}", fc.remapped_crossbars),
            format!("{}", fc.quarantined_rows),
            format!("{}", fc.guarded_bounds),
            format!("{}", fc.fallback_refinements),
            if identical { "yes".into() } else { "NO".into() },
        ]);
        assert!(identical, "quarantine: faulty kNN diverged from fault-free");
        assert!(
            fc.quarantined_rows > 0 && fc.fallback_refinements > 0,
            "the no-spares scenario must exercise quarantine + host fallback"
        );
    }

    // Bank loss: fail-stop whole banks under a replicated shard
    // mid-stream. Detection is traffic-driven (the next routed batch
    // fails over), the repair loop re-replicates each lost bank from a
    // surviving host mirror, and every answer — before, during, and
    // after the loss — must match the fault-free reference.
    let mut loss_rows = Vec::new();
    for (name, r, kills) in [("R=2, kill 1", 2usize, 1usize), ("R=3, kill 2", 3, 2)] {
        let shard_cfg = ShardConfig {
            executor: exec_cfg(None),
            spare_rows: 8,
            ..Default::default()
        };
        let ids: Vec<usize> = (0..ds.len()).collect();
        let mut set = ReplicaSet::open(shard_cfg, r, ds.clone(), ids).expect("open replica set");
        let mut identical = true;
        let half = queries.len() / 2;
        for (q, want) in queries[..half].iter().zip(&reference) {
            let got = set.query_batch(std::slice::from_ref(q), &[k]).remove(0);
            let got: Vec<usize> = got
                .expect("pre-kill query")
                .iter()
                .map(|&(id, _)| id)
                .collect();
            identical &= got == *want;
        }
        for victim in 0..kills {
            set.kill_replica(victim);
        }
        let killed = Instant::now();
        // The remaining queries stream through the loss: the first batch
        // after each kill detects it and fails over. Repair interleaves,
        // one replica per query, the way the engine's repair tick does.
        for (q, want) in queries[half..].iter().zip(&reference[half..]) {
            let got = set.query_batch(std::slice::from_ref(q), &[k]).remove(0);
            let got: Vec<usize> = got
                .expect("post-kill query")
                .iter()
                .map(|&(id, _)| id)
                .collect();
            identical &= got == *want;
            if set.needs_repair() {
                set.repair_one().expect("repair");
            }
        }
        while set.needs_repair() {
            set.repair_one().expect("repair");
        }
        let recovery_ns = killed.elapsed().as_nanos() as u64;
        let stats = set.stats();
        assert!(identical, "{name}: answers diverged through bank loss");
        assert_eq!(stats.healthy, r, "{name}: all replicas back in routing");
        assert_eq!(stats.repairs as usize, kills, "{name}: every kill repaired");
        assert_eq!(
            stats.degraded_queries, 0,
            "{name}: never degraded (kills < R)"
        );
        run.note_stage(
            &format!("bank_loss/{name}"),
            recovery_ns,
            stats.failovers,
            0,
            0,
        );
        run.push_extra(
            &format!("bank_loss/{name}"),
            Json::obj([
                ("replicas", Json::Num(r as f64)),
                ("killed", Json::Num(kills as f64)),
                ("failovers", Json::Num(stats.failovers as f64)),
                ("repairs", Json::Num(stats.repairs as f64)),
                ("recovery_ns", Json::Num(recovery_ns as f64)),
            ]),
        );
        loss_rows.push(vec![
            name.to_string(),
            format!("{r}"),
            format!("{kills}"),
            format!("{}", stats.failovers),
            format!("{}", stats.repairs),
            format!("{:.2}", recovery_ns as f64 / 1e6),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }

    simpim_bench::print_table(
        &format!("Fault sweep: PIM kNN under injected crossbar faults (N={n}, k={k})"),
        &[
            "scenario",
            "faults",
            "retries",
            "remaps",
            "quarantined",
            "guarded",
            "fallbacks",
            "top-k identical",
        ],
        &rows,
    );
    println!("recovery pipeline: scrub -> classify -> remap-to-spares -> quarantine");
    println!("exactness: guard-banded bounds stay valid; quarantined rows refined");
    println!("           exactly on the host -- top-k matches fault-free bit-for-bit");
    simpim_bench::print_table(
        &format!("Bank loss: replicated shard with banks fail-stopped mid-stream (N={n}, k={k})"),
        &[
            "scenario",
            "R",
            "killed",
            "failovers",
            "repairs",
            "recovery ms",
            "top-k identical",
        ],
        &loss_rows,
    );
    println!("bank-loss pipeline: detect (routed batch) -> quarantine -> failover ->");
    println!("                    re-replicate from a surviving host mirror -> rejoin");
    run.finish();
}

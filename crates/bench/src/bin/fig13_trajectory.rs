//! Fig. 13 at paper scale: a fixed-shape throughput trajectory over the
//! streaming materialization path.
//!
//! The paper's Fig. 13 shows SimPIM's throughput holding up as the dataset
//! grows because the crossbar budget (and therefore Theorem 4's `s`)
//! scales with it. This harness reproduces that *shape* at laptop scale:
//! every trajectory point multiplies both the MSD object count and the
//! per-shard crossbar budget by the same factor, so the capacity pressure
//! — and the chosen `s`, and the pruning behaviour — stay fixed while `n`
//! grows 10x past the default harness scale.
//!
//! Three properties are asserted, not just reported:
//!
//! 1. **Bounded peak RSS.** The largest point opens its serving engine
//!    with [`ServeEngine::open_source`], which streams rows block-by-block
//!    (`SIMPIM_BLOCK_ROWS`) into one host mirror per shard and programs
//!    banks incrementally. The `VmHWM` delta across that open must stay
//!    under a block-bounded budget (~2x the resident mirror, far below
//!    the materialize-then-clone peak of the pre-streaming path).
//! 2. **Bit-identical answers.** The streamed engine's kNN answers equal
//!    the in-memory [`ServeEngine::open`] engine's, id for id, bit for
//!    bit.
//! 3. **Fleet placement beats naive uniform sharding.** A heterogeneous
//!    bank fleet (mixed crossbar budgets, wear, one dead bank) is planned
//!    with [`FleetPlanner::plan`] using pruning ratios *measured* from a
//!    sample workload's metrics; the plan's modeled throughput must be at
//!    least the best uniform split's — `extra.fig13.modeled_qps` is the
//!    machine-independent metric `simpim report --assert-no-regress`
//!    gates on in CI.

use std::time::Instant;

use simpim_bench::BenchRun;
use simpim_bounds::BoundCascade;
use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_core::{BankProfile, CandidateBound, FleetPlanner, PreparedFunction};
use simpim_datasets::spec::env_scale;
use simpim_datasets::{DatasetSource, PaperDataset, SynthSource, SyntheticConfig};
use simpim_mining::knn::pim::knn_pim_ed;
use simpim_obs::Json;
use simpim_serve::{Neighbor, ServeConfig, ServeEngine};
use simpim_similarity::{Dataset, NormalizedDataset};

/// Trajectory points, as multiples of `SIMPIM_SCALE`. The last (largest)
/// point runs first so its peak-RSS delta is measured from a clean
/// high-water mark; `>= 10` is the paper-scale acceptance point.
const MULTS: [f64; 4] = [10.0, 5.0, 2.0, 1.0];

/// Shards the serving engine splits the dataset across.
const SHARDS: usize = 4;

/// kNN queries timed per trajectory point.
const QUERIES: usize = 8;

/// Neighbours per query.
const K: usize = 10;

/// Parses the process peak resident set (`VmHWM`) in bytes.
fn vmhwm_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Per-shard executor configuration at one trajectory point: the global
/// crossbar budget scales with the point's effective scale and is split
/// evenly across shards, preserving the seed harness's capacity pressure
/// (and thus Theorem 4's `s`) at every `n`.
fn shard_executor_config(eff_scale: f64) -> ExecutorConfig {
    let mut cfg = ExecutorConfig::default();
    let fleet = ((cfg.pim.num_crossbars as f64 * eff_scale) as usize).max(256 * SHARDS);
    cfg.pim.num_crossbars = fleet / SHARDS;
    cfg
}

fn serve_config(eff_scale: f64) -> ServeConfig {
    ServeConfig {
        shards: SHARDS,
        executor: shard_executor_config(eff_scale),
        ..ServeConfig::default()
    }
}

/// Streams the first `rows` objects of a fresh source into a dataset.
fn materialize_prefix(cfg: SyntheticConfig, rows: usize) -> Dataset {
    let mut src = SynthSource::new(cfg);
    let mut data = Dataset::with_dim(cfg.d).expect("non-zero dim");
    let mut buf = Vec::new();
    let mut remaining = rows;
    while remaining > 0 {
        let got = src.next_block(remaining.min(8192), &mut buf);
        assert!(got > 0, "source drained before the prefix was full");
        for row in buf.chunks_exact(cfg.d) {
            data.push(row).expect("row dims");
        }
        remaining -= got;
    }
    data
}

/// Runs `queries` through `engine` one at a time, returning the answers
/// and the wall-clock queries/s.
fn timed_knn(engine: &ServeEngine, queries: &[Vec<f64>]) -> (Vec<Vec<Neighbor>>, f64) {
    let start = Instant::now();
    let answers: Vec<Vec<Neighbor>> = queries
        .iter()
        .map(|q| engine.knn(q, K).expect("query"))
        .collect();
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (answers, queries.len() as f64 / secs)
}

/// Measures pruning ratios for the planner the way Section V-D says to:
/// run the real kNN kernel over a one-shard-sized sample and read the
/// `simpim.bounds.*` counters it flushed. Returns the measured candidates
/// and the `s` they were measured at.
fn measured_candidates(
    cfg: SyntheticConfig,
    sample_rows: usize,
    exec_cfg: ExecutorConfig,
    queries: &[Vec<f64>],
) -> (Vec<CandidateBound>, usize) {
    let sample = materialize_prefix(cfg, sample_rows);
    let nds = NormalizedDataset::assert_normalized_ref(&sample);
    let mut exec = PimExecutor::prepare_euclidean(exec_cfg, nds).expect("sample fits");
    for q in queries {
        knn_pim_ed(&mut exec, &sample, &BoundCascade::empty(), q, K).expect("sample query");
    }
    let ref_s = match exec.prepared() {
        PreparedFunction::Ed { d, .. } => *d,
        PreparedFunction::Fnn { d_prime, .. } => *d_prime,
        PreparedFunction::Sm { d_prime, .. } => *d_prime,
        _ => sample.dim(),
    };
    let candidates = CandidateBound::from_metrics(&simpim_obs::metrics::snapshot());
    assert!(
        candidates.iter().any(|c| c.is_pim),
        "sample run flushed no PIM bound metrics"
    );
    (candidates, ref_s)
}

/// A heterogeneous fleet with the same total crossbar budget as the
/// homogeneous serving config: two big banks, three mid banks, two small
/// banks (listed first so a naive uniform split lands hard on them), and
/// one dead bank. Wear varies so placement tie-breaks are exercised.
fn heterogeneous_fleet(eff_scale: f64) -> Vec<BankProfile> {
    let total = shard_executor_config(eff_scale).pim.num_crossbars * SHARDS;
    let bank = |crossbars: usize, wear: u64, healthy: bool| BankProfile {
        crossbars,
        wear,
        healthy,
    };
    vec![
        bank(total / 16, 12, true),
        bank(total / 16, 0, true),
        bank(total / 8, 3, true),
        bank(total / 8, 9, true),
        bank(total / 8, 0, false), // quarantined mid bank
        bank(total / 4, 5, true),
        bank(total / 4, 1, true),
    ]
}

fn main() {
    let mut run = BenchRun::start("fig13");
    let spec = PaperDataset::Msd.spec();
    run.set_dataset(&spec);
    let base_scale = env_scale();
    run.config_entry("shards", Json::Num(SHARDS as f64));
    run.config_entry("k", Json::Num(K as f64));
    run.config_entry("trajectory_queries", Json::Num(QUERIES as f64));
    run.config_entry(
        "block_rows",
        Json::Num(simpim_datasets::env_block_rows() as f64),
    );

    let mut trajectory: Vec<Json> = Vec::new();
    let mut largest: Option<(f64, usize)> = None; // (eff_scale, n)
    let mut fig13 = Vec::new();

    for (i, mult) in MULTS.iter().enumerate() {
        let eff_scale = (base_scale * mult).min(1.0);
        let n = spec.scaled_n(eff_scale, simpim_bench::MIN_N);
        let synth = SyntheticConfig::from_spec(&spec, n);
        let cfg = serve_config(eff_scale);

        // Queries are the stream's first rows — identical at every point.
        let queries: Vec<Vec<f64>> = {
            let prefix = materialize_prefix(synth, QUERIES);
            (0..QUERIES).map(|r| prefix.row(r).to_vec()).collect()
        };

        let rss_before = vmhwm_bytes();
        let open_start = Instant::now();
        let mut source = SynthSource::new(synth);
        let engine = ServeEngine::open_source(cfg.clone(), &mut source).expect("streamed open");
        let open_secs = open_start.elapsed().as_secs_f64();
        let rss_after = vmhwm_bytes();
        let query_start = Instant::now();
        let (streamed_answers, streamed_qps) = timed_knn(&engine, &queries);

        let mirror_bytes = (n * spec.d * 8) as u64;
        run.note_stage(
            &format!("streamed_open@{n}"),
            (open_secs * 1e9) as u64,
            1,
            n as u64,
            mirror_bytes,
        );
        run.note_stage(
            &format!("knn@{n}"),
            query_start.elapsed().as_nanos() as u64,
            QUERIES as u64,
            (QUERIES * n) as u64,
            0,
        );
        let mut point = vec![
            ("scale", Json::Num(eff_scale)),
            ("n", Json::Num(n as f64)),
            ("d", Json::Num(spec.d as f64)),
            ("open_secs", Json::Num(open_secs)),
            ("streamed_qps_wall", Json::Num(streamed_qps)),
            ("mirror_bytes", Json::Num(mirror_bytes as f64)),
        ];

        if i == 0 {
            // Largest point, measured from a clean high-water mark: the
            // streamed open may keep the shard mirrors plus the programmed
            // regions resident, but never a second full copy of the
            // dataset. Budget: 2x mirror + one stream block + fixed slack.
            let block_bytes = (simpim_datasets::env_block_rows() * spec.d * 8) as u64;
            let rss_budget = 2 * mirror_bytes + 4 * block_bytes + 256 * 1024 * 1024;
            let rss_delta = rss_after.saturating_sub(rss_before);
            assert!(
                rss_delta <= rss_budget,
                "streamed open peak RSS {} MiB exceeds block-bounded budget {} MiB",
                rss_delta >> 20,
                rss_budget >> 20,
            );
            point.push(("peak_rss_streamed_bytes", Json::Num(rss_delta as f64)));
            point.push(("rss_budget_bytes", Json::Num(rss_budget as f64)));
            fig13.push(("peak_rss_streamed_bytes", Json::Num(rss_delta as f64)));
            fig13.push(("rss_budget_bytes", Json::Num(rss_budget as f64)));
            fig13.push(("n", Json::Num(n as f64)));
            fig13.push(("d", Json::Num(spec.d as f64)));
            fig13.push(("scale", Json::Num(eff_scale)));
            fig13.push(("streamed_qps_wall", Json::Num(streamed_qps)));
            largest = Some((eff_scale, n));

            // Bit-identity against the one-shot in-memory open.
            drop(engine);
            let data = SynthSource::new(synth).materialize();
            let in_memory = ServeEngine::open(cfg, &data).expect("in-memory open");
            let (memory_answers, memory_qps) = timed_knn(&in_memory, &queries);
            assert_eq!(
                streamed_answers, memory_answers,
                "streamed and in-memory engines disagree"
            );
            point.push(("in_memory_qps_wall", Json::Num(memory_qps)));
            fig13.push(("in_memory_qps_wall", Json::Num(memory_qps)));
            println!(
                "paper-scale point: n={n} d={} streamed {:.1} q/s (in-memory {:.1} q/s), peak RSS {} MiB",
                spec.d,
                streamed_qps,
                memory_qps,
                rss_delta >> 20,
            );
        }

        trajectory.push(Json::obj(point));
        println!(
            "trajectory: scale={eff_scale:.3} n={n} open {:.2}s, {:.1} q/s streamed",
            open_secs, streamed_qps
        );
    }
    trajectory.reverse(); // ascending n in the artifact
    run.push_extra("trajectory", Json::Arr(trajectory));

    // Fleet placement on measured pruning ratios (largest point's shape).
    let (eff_scale, n) = largest.expect("trajectory ran");
    let synth = SyntheticConfig::from_spec(&spec, n);
    let exec_cfg = shard_executor_config(eff_scale);
    let queries: Vec<Vec<f64>> = {
        let prefix = materialize_prefix(synth, QUERIES);
        (0..QUERIES).map(|r| prefix.row(r).to_vec()).collect()
    };
    let (candidates, ref_s) = measured_candidates(
        synth,
        n.div_ceil(SHARDS),
        exec_cfg,
        &queries[..QUERIES.min(4)],
    );
    let planner = FleetPlanner {
        d: spec.d,
        operand_bits: exec_cfg.operand_bits,
        buffer_factor: if exec_cfg.double_buffer { 2 } else { 1 },
        base_pim: exec_cfg.pim,
        refine_bytes_per_object: (spec.d * 8) as u64,
        candidates,
        pim_reference_s: ref_s,
        spare_rows: ServeConfig::default().spare_rows,
        merge_bytes_per_shard: (K * 16) as f64,
    };
    let banks = heterogeneous_fleet(eff_scale);
    let plan = planner.plan(n, &banks).expect("fleet fits");
    let uniform_qps = (1..=banks.iter().filter(|b| b.healthy).count())
        .filter_map(|m| planner.uniform(n, &banks, m))
        .map(|p| p.modeled_qps)
        .fold(0.0f64, f64::max);
    assert!(
        plan.modeled_qps >= uniform_qps,
        "planned fleet ({:.1} q/s modeled) lost to uniform sharding ({uniform_qps:.1} q/s)",
        plan.modeled_qps
    );
    println!(
        "fleet plan: {} shards over {} banks, modeled {:.1} q/s vs best uniform {:.1} q/s",
        plan.shards.len(),
        banks.len(),
        plan.modeled_qps,
        uniform_qps
    );

    // The planned engine answers exactly like the uniform streamed one.
    let mut source = SynthSource::new(synth);
    let planned = ServeEngine::open_planned(
        ServeConfig {
            executor: exec_cfg,
            ..ServeConfig::default()
        },
        &mut source,
        &plan,
        &banks,
    )
    .expect("planned open");
    let (planned_answers, planned_qps) = timed_knn(&planned, &queries);
    drop(planned);
    let data = SynthSource::new(synth).materialize();
    let reference = ServeEngine::open(serve_config(eff_scale), &data).expect("reference open");
    let (reference_answers, _) = timed_knn(&reference, &queries);
    assert_eq!(
        planned_answers, reference_answers,
        "fleet-planned placement changed kNN answers"
    );

    fig13.push(("modeled_qps", Json::Num(plan.modeled_qps)));
    fig13.push(("uniform_qps", Json::Num(uniform_qps)));
    fig13.push(("planned_shards", Json::Num(plan.shards.len() as f64)));
    fig13.push(("fleet_banks", Json::Num(banks.len() as f64)));
    fig13.push(("pim_reference_s", Json::Num(ref_s as f64)));
    fig13.push(("planned_qps_wall", Json::Num(planned_qps)));
    run.push_extra("fig13", Json::obj(fig13));

    run.finish();
}

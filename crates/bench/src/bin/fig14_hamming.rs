//! Fig. 14 — kNN on binary vector data (Hamming distance).
//!
//! LSH codes of 128 / 256 / 512 / 1024 bits learned from the GIST-shaped
//! dataset; k = 10. PIM computes HD *exactly* (two dot products per code),
//! so the host only reads 64 bits per object — a win only when the code is
//! wide. Paper: PIM does not help much at 128 bits and the speedup grows
//! with dimensionality.

use simpim_bench::{fmt_ms, fmt_x, ms, print_table, scaled_executor_config, BenchRun, MIN_N};
use simpim_core::executor::PimExecutor;
use simpim_datasets::spec::env_scale;
use simpim_datasets::{generate, lsh_codes, PaperDataset, SyntheticConfig};
use simpim_mining::knn::hamming::knn_hamming;
use simpim_mining::knn::pim::knn_pim_hamming;
use simpim_mining::{Architecture, RunReport};
use simpim_profiling::oracle_report;

fn main() {
    // Fig. 14's codes are learned from GIST descriptors; mirror that.
    let spec = PaperDataset::Gist.spec();
    let n = spec.scaled_n(env_scale(), MIN_N);
    let base_data = generate(&SyntheticConfig::from_spec(&spec, n));
    let p = simpim_bench::params();
    let mut run = BenchRun::start("fig14_hamming");
    run.set_dataset(&spec);

    let mut rows = Vec::new();
    for bits in [128usize, 256, 512, 1024] {
        let codes = lsh_codes(&base_data, bits, 0x51AA ^ bits as u64);
        let mut exec =
            PimExecutor::prepare_hamming(scaled_executor_config(), &codes).expect("codes fit");
        let query_idx = [1usize, n / 3, (2 * n) / 3];

        let mut base = RunReport::new(Architecture::ConventionalDram);
        let mut pim = RunReport::new(Architecture::ReRamPim);
        for &qi in &query_idx {
            let q = codes.row(qi);
            let b = knn_hamming(&codes, &q, 10);
            let g = knn_pim_hamming(&mut exec, &codes, &q, 10).expect("prepared");
            assert_eq!(b.indices(), g.indices(), "PIM HD must be exact");
            base.merge(&b.report);
            pim.merge(&g.report);
        }
        run.record_report(&format!("hd{bits}/base"), &base);
        run.record_report(&format!("hd{bits}/pim"), &pim);
        let oracle = oracle_report(&base.profile, &p, &["HD"]);
        rows.push(vec![
            format!("{bits}"),
            fmt_ms(ms(&base)),
            fmt_ms(ms(&pim)),
            fmt_ms(oracle.oracle_ns / 1e6),
            fmt_x(ms(&base) / ms(&pim)),
        ]);
    }
    print_table(
        &format!("Fig. 14: kNN on binary codes (N={n}, k=10, HD)"),
        &[
            "bits",
            "Standard (ms)",
            "Standard-PIM (ms)",
            "oracle (ms)",
            "speedup",
        ],
        &rows,
    );
    println!("paper: little gain at 128 bits; speedup grows with code width");
    run.finish();
}

//! kernel_sweep — per-backend SIMD kernel trajectory on the fixed
//! Fig. 13 shape (DESIGN.md §14).
//!
//! For every kernel backend the running CPU supports (always `scalar`;
//! `sse2`/`avx2` on x86_64, `neon` on aarch64), pinned via
//! `simpim_kern::with_backend`, the sweep measures:
//!
//! * **per-kernel ns/element** for the six dispatched kernels (f64
//!   dot / norm_sq / fused dot+norm / squared Euclidean over the MSD
//!   workload's rows, u64 XOR- and AND-popcount MACs over packed words),
//!   best-of-several passes so a preempted pass doesn't pollute the
//!   trajectory;
//! * **end-to-end kNN throughput**: Standard-PIM kNN (`knn_pim_ed`)
//!   over the workload's queries — the path that exercises both the f64
//!   refinement kernels and the crossbar's AND-popcount MAC;
//! * an **FNV-1a result hash** covering every kernel output bit and
//!   every neighbor (index, distance bits). The binary aborts unless all
//!   backends produce the *same* hash (the bit-identity contract), and
//!   unless the hash is invariant across 1 and 4 `simpim-par` workers.
//!
//! The artifact (`BENCH_kernels.json`) stamps each backend's numbers and
//! its speedup over forced-scalar, seeding the per-PR BENCH trajectory
//! the ROADMAP gates on (`simpim report --assert-no-regress`). CI runs
//! the sweep under `SIMPIM_KERNEL=scalar` and `=auto` and diffs the
//! hashes; it also fails if the detected backend on an x86_64 runner is
//! `scalar` (the vectorized tiers went missing).

use std::time::Instant;

use simpim_bench::{fmt_x, load, prepare_executor, print_table, BenchRun, Workload, QUERIES};
use simpim_bounds::BoundCascade;
use simpim_core::executor::PimExecutor;
use simpim_datasets::PaperDataset;
use simpim_kern::{self as kern, Backend};
use simpim_obs::Json;
use simpim_par as par;

const K: usize = 10;
/// Packed words per popcount-MAC operand (≈ a 2.1 Mbit LSH code stripe).
const POPCOUNT_WORDS: usize = 32_768;
/// Minimum measurement budget per kernel per backend.
const MIN_PASSES: usize = 5;
const MAX_PASSES: usize = 200;
const BUDGET_NS: u64 = 40_000_000;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `pass` repeatedly (best-of, fixed budget) and returns
/// (ns per element, hash of the first pass's outputs).
fn measure(elems_per_pass: usize, mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let hash = pass(); // warmup + hashed outputs
    let mut best = u64::MAX;
    let mut spent = 0u64;
    let mut runs = 0usize;
    while (runs < MIN_PASSES || spent < BUDGET_NS) && runs < MAX_PASSES {
        let t0 = Instant::now();
        std::hint::black_box(pass());
        let ns = t0.elapsed().as_nanos() as u64;
        best = best.min(ns);
        spent += ns;
        runs += 1;
    }
    (best as f64 / elems_per_pass.max(1) as f64, hash)
}

/// Deterministic xorshift64* word stream for the popcount operands.
fn words(len: usize, mut seed: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
        })
        .collect()
}

/// Per-backend measurements, in `BACKENDS` order.
struct Row {
    name: &'static str,
    dot_ns: f64,
    norm_ns: f64,
    fused_ns: f64,
    euclid_ns: f64,
    xorpop_ns: f64,
    andpop_ns: f64,
    knn_wall_ms: f64,
    knn_qps: f64,
    hash: u64,
}

/// One timed kNN pass over the workload; returns (hash, wall ns).
fn knn_pass(exec: &mut PimExecutor, w: &Workload) -> (u64, u64) {
    use simpim_mining::knn::pim::knn_pim_ed;
    let t0 = Instant::now();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for q in &w.queries {
        let res = knn_pim_ed(exec, &w.data, &BoundCascade::empty(), q, K).expect("prepared");
        for (i, v) in &res.neighbors {
            h = fnv1a(h, &(*i as u64).to_le_bytes());
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
    }
    (h, t0.elapsed().as_nanos() as u64)
}

fn sweep_backend(b: Backend, exec: &mut PimExecutor, w: &Workload, wa: &[u64], wb: &[u64]) -> Row {
    kern::with_backend(b, || {
        let n = w.data.len();
        let d = w.data.dim();
        let q0 = &w.queries[0];
        let f64_elems = n * d;

        let hash_all = |f: &dyn Fn(&[f64]) -> u64| -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for i in 0..n {
                h = fnv1a(h, &f(w.data.row(i)).to_le_bytes());
            }
            h
        };

        let (dot_ns, h_dot) = measure(f64_elems, || hash_all(&|r| kern::dot(r, q0).to_bits()));
        let (norm_ns, h_norm) = measure(f64_elems, || hash_all(&|r| kern::norm_sq(r).to_bits()));
        let (fused_ns, h_fused) = measure(f64_elems, || {
            hash_all(&|r| {
                let (dp, nr) = kern::dot_norm_sq(r, q0);
                dp.to_bits() ^ nr.to_bits().rotate_left(17)
            })
        });
        let (euclid_ns, h_euclid) = measure(f64_elems, || {
            hash_all(&|r| kern::euclidean_sq(r, q0).to_bits())
        });
        let (xorpop_ns, h_xor) = measure(POPCOUNT_WORDS, || kern::xor_popcount(wa, wb));
        let (andpop_ns, h_and) = measure(POPCOUNT_WORDS, || kern::and_popcount(wa, wb));

        // End-to-end Standard-PIM kNN: timed at ambient workers, then
        // re-run pinned to 1 and 4 workers — all three hashes must match
        // (kernels compose with simpim-par chunking bit-identically).
        // The executor is programmed once in `main` and shared by every
        // (backend, workers) cell: queries never reprogram a bank, and
        // the bit-identity contract makes the programmed state
        // backend-independent, so there is nothing to rebuild per tier.
        let (h_knn, knn_ns) = knn_pass(exec, w);
        let (h_1t, _) = par::with_threads(1, || knn_pass(exec, w));
        let (h_4t, _) = par::with_threads(4, || knn_pass(exec, w));
        assert_eq!(h_knn, h_1t, "{}: kNN diverged at 1 worker", b.name());
        assert_eq!(h_knn, h_4t, "{}: kNN diverged at 4 workers", b.name());

        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for part in [h_dot, h_norm, h_fused, h_euclid, h_xor, h_and, h_knn] {
            hash = fnv1a(hash, &part.to_le_bytes());
        }
        let knn_s = knn_ns as f64 / 1e9;
        Row {
            name: b.name(),
            dot_ns,
            norm_ns,
            fused_ns,
            euclid_ns,
            xorpop_ns,
            andpop_ns,
            knn_wall_ms: knn_ns as f64 / 1e6,
            knn_qps: w.queries.len() as f64 / knn_s.max(1e-12),
            hash,
        }
    })
}

fn main() {
    let mut run = BenchRun::start("kernels");
    let w = load(PaperDataset::Msd);
    run.set_dataset(&w.dataset.spec());
    run.config_entry("k", Json::Num(K as f64));
    run.config_entry("popcount_words", Json::Num(POPCOUNT_WORDS as f64));

    let detected = kern::detected_backend();
    let active = kern::backend();
    let wa = words(POPCOUNT_WORDS, 0x9e37_79b9_7f4a_7c15);
    let wb = words(POPCOUNT_WORDS, 0xd1b5_4a32_d192_ed03);

    // One dataset, one programmed executor, shared by every
    // (backend, workers) measurement cell.
    let mut exec = prepare_executor(&w.data).expect("fits");

    let tiers: Vec<Backend> = Backend::ALL
        .into_iter()
        .filter(|b| b.is_supported())
        .collect();
    let rows: Vec<Row> = tiers
        .iter()
        .map(|&b| sweep_backend(b, &mut exec, &w, &wa, &wb))
        .collect();

    let scalar = &rows[0];
    assert_eq!(scalar.name, "scalar");
    for r in &rows[1..] {
        assert_eq!(
            r.hash, scalar.hash,
            "backend '{}' is not bit-identical to scalar",
            r.name
        );
    }
    let hash = scalar.hash;

    print_table(
        &format!(
            "kernel_sweep: MSD-shaped fig13 (n={}, d={}, k={K}, {} queries, detected={}, active={})",
            w.data.len(),
            w.data.dim(),
            QUERIES,
            detected.name(),
            active.name()
        ),
        &[
            "backend", "dot", "norm", "fused", "euclid", "xorpop", "andpop", "knn qps", "vs scalar",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.into(),
                    format!("{:.3}", r.dot_ns),
                    format!("{:.3}", r.norm_ns),
                    format!("{:.3}", r.fused_ns),
                    format!("{:.3}", r.euclid_ns),
                    format!("{:.3}", r.xorpop_ns),
                    format!("{:.3}", r.andpop_ns),
                    format!("{:.0}", r.knn_qps),
                    fmt_x(scalar.dot_ns / r.dot_ns.max(1e-12)),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "result hash {hash:016x} identical across {} backends and 1|4|ambient workers \
         (ns/element columns; popcount per u64 word)",
        rows.len()
    );

    let backends_json: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::Str(r.name.into())),
                ("dot_ns_per_elem", Json::Num(r.dot_ns)),
                ("norm_sq_ns_per_elem", Json::Num(r.norm_ns)),
                ("dot_norm_sq_ns_per_elem", Json::Num(r.fused_ns)),
                ("euclidean_sq_ns_per_elem", Json::Num(r.euclid_ns)),
                ("xor_popcount_ns_per_word", Json::Num(r.xorpop_ns)),
                ("and_popcount_ns_per_word", Json::Num(r.andpop_ns)),
                ("knn_wall_ms", Json::Num(r.knn_wall_ms)),
                ("knn_qps", Json::Num(r.knn_qps)),
                (
                    "speedup_dot",
                    Json::Num(scalar.dot_ns / r.dot_ns.max(1e-12)),
                ),
                (
                    "speedup_euclidean",
                    Json::Num(scalar.euclid_ns / r.euclid_ns.max(1e-12)),
                ),
                (
                    "speedup_xor_popcount",
                    Json::Num(scalar.xorpop_ns / r.xorpop_ns.max(1e-12)),
                ),
                (
                    "speedup_knn",
                    Json::Num(r.knn_qps / scalar.knn_qps.max(1e-12)),
                ),
            ])
        })
        .collect();

    // The active backend's end-to-end throughput is the headline metric
    // future PRs gate on with `--assert-no-regress`.
    let active_row = rows
        .iter()
        .find(|r| r.name == active.name())
        .unwrap_or(scalar);
    run.push_extra(
        "kernels",
        Json::obj([
            ("detected", Json::Str(detected.name().into())),
            ("active", Json::Str(active.name().into())),
            ("result_hash", Json::Str(format!("{hash:016x}"))),
            ("threads_invariant", Json::Bool(true)),
            ("knn_qps", Json::Num(active_row.knn_qps)),
            (
                "speedup_dot",
                Json::Num(scalar.dot_ns / active_row.dot_ns.max(1e-12)),
            ),
            (
                "speedup_xor_popcount",
                Json::Num(scalar.xorpop_ns / active_row.xorpop_ns.max(1e-12)),
            ),
            ("backends", Json::Arr(backends_json)),
        ]),
    );
    run.note_stage(
        "kernel_sweep/knn_active",
        (active_row.knn_wall_ms * 1e6) as u64,
        w.queries.len() as u64,
        0,
        0,
    );
    run.finish();
}

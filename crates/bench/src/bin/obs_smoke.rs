//! Observability smoke run — the CI artifact plus the tracing-overhead
//! check.
//!
//! Runs one small kNN workload (FNN cascade) and one k-means workload,
//! emits `BENCH_smoke.json`, and demonstrates that the *disabled* tracing
//! fast path costs under 2% of the kNN cascade hot loop:
//!
//! * wall-clock A/B: the same cascade workload timed with tracing off and
//!   on (the "on" run bounds the "off" run from above — the off path is a
//!   strict subset of the on path);
//! * a direct microbenchmark of the disabled `span!` probe, scaled by the
//!   number of instrumentation events one query actually fires.

use std::time::Instant;

use simpim_bench::{load, ms, print_table, run_kmeans_pair, run_knn_baseline, BenchRun, KnnAlgo};
use simpim_bench::{KmeansAlgo, QUERIES};
use simpim_datasets::PaperDataset;
use simpim_mining::kmeans::KmeansConfig;
use simpim_obs::Json;

/// Repetitions for the wall-clock A/B; the minimum is reported so OS
/// noise inflates neither side.
const REPS: usize = 5;

fn main() {
    let mut run = BenchRun::start("smoke");
    simpim_obs::trace::disable();

    // One small kNN bench: FNN cascade, k = 10.
    let w = load(PaperDataset::Msd);
    run.set_dataset(&w.dataset.spec());
    let knn = run_knn_baseline(KnnAlgo::Fnn, &w, 10);
    run.record_report("knn/FNN", &knn);

    // One small k-means bench: Lloyd, k = 8, both architectures.
    let cfg = KmeansConfig {
        k: 8,
        max_iters: 4,
        seed: 7,
    };
    let (base, pim) = run_kmeans_pair(KmeansAlgo::Standard, &w.data, &cfg).expect("agree");
    run.record_report("kmeans/Standard/base", &base.report);
    run.record_report("kmeans/Standard/pim", &pim.report);

    // --- Tracing overhead on the kNN cascade hot loop ---------------------

    // Warm-up, then the A/B: identical workload, tracing off vs on.
    let _ = run_knn_baseline(KnnAlgo::Fnn, &w, 10);
    let off_ns = best_of(REPS, || {
        let _ = run_knn_baseline(KnnAlgo::Fnn, &w, 10);
    });
    simpim_obs::trace::enable(1 << 16);
    let on_ns = best_of(REPS, || {
        let _ = run_knn_baseline(KnnAlgo::Fnn, &w, 10);
    });
    simpim_obs::trace::disable();
    simpim_obs::trace::clear();
    let on_overhead_pct = (on_ns as f64 / off_ns as f64 - 1.0) * 100.0;

    // Microbenchmark: cost of one disabled span probe (one relaxed atomic
    // load), scaled by the instrumentation events a cascade query fires
    // (one query span, one filter span, ~one span/metric flush per stage
    // plus the two histograms — 32 is a generous ceiling).
    const PROBES: u32 = 1_000_000;
    let probe_ns = best_of(3, || {
        for _ in 0..PROBES {
            let _g = simpim_obs::span!("bench.obs.probe");
        }
    }) as f64
        / f64::from(PROBES);
    let per_query_ns = off_ns as f64 / QUERIES as f64;
    let off_overhead_pct = 32.0 * probe_ns / per_query_ns * 100.0;

    print_table(
        "Observability smoke: tracing overhead on the kNN cascade hot loop",
        &["quantity", "value"],
        &[
            vec![
                "model time, FNN workload".into(),
                format!("{:.2} ms", ms(&knn)),
            ],
            vec![
                "wall clock, tracing off".into(),
                format!("{:.2} ms", off_ns as f64 / 1e6),
            ],
            vec![
                "wall clock, tracing on".into(),
                format!("{:.2} ms", on_ns as f64 / 1e6),
            ],
            vec![
                "tracing-on overhead".into(),
                format!("{on_overhead_pct:+.2}%"),
            ],
            vec!["disabled span probe".into(), format!("{probe_ns:.1} ns")],
            vec![
                "tracing-off overhead (32 probes/query)".into(),
                format!("{off_overhead_pct:.4}%"),
            ],
        ],
    );
    run.push_extra("tracing_off_wall_ms", Json::Num(off_ns as f64 / 1e6));
    run.push_extra("tracing_on_wall_ms", Json::Num(on_ns as f64 / 1e6));
    run.push_extra("tracing_on_overhead_pct", Json::Num(on_overhead_pct));
    run.push_extra("disabled_span_probe_ns", Json::Num(probe_ns));
    run.push_extra("tracing_off_overhead_pct", Json::Num(off_overhead_pct));
    run.finish();

    // The disabled-path budget is a hard gate: the microbenchmark is
    // deterministic enough (one relaxed atomic load per probe) that a
    // miss means a real regression, not noise.
    if off_overhead_pct >= 2.0 {
        eprintln!("error: disabled-tracing overhead {off_overhead_pct:.2}% >= 2% budget");
        std::process::exit(1);
    }
}

/// Minimum wall-clock nanoseconds over `reps` runs of `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> u128 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .min()
        .unwrap_or(1)
        .max(1)
}

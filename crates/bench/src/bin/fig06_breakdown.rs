//! Fig. 6 — execution-time breakdown by function (Section IV-B).
//!
//! Panel (a): kNN on MSD, k = 10 — ED dominates `Standard`; the bound
//! functions (72–86%) dominate OST / SM / FNN.
//! Panel (b): k-means on NUS-WIDE, k = 64 — ED takes 52–96%; Elkan's
//! bound-update pass is the visible exception.

use simpim_bench::{load, params, print_table, run_knn_baseline, BenchRun, KmeansAlgo, KnnAlgo};
use simpim_datasets::PaperDataset;
use simpim_mining::kmeans::KmeansConfig;
use simpim_mining::RunReport;

fn rows_for(report: &RunReport) -> Vec<Vec<String>> {
    let p = params();
    report
        .profile
        .fractions(&p)
        .into_iter()
        .map(|(name, frac)| vec![name, format!("{:.1}%", frac * 100.0)])
        .collect()
}

fn main() {
    let mut run = BenchRun::start("fig06_breakdown");
    let w = load(PaperDataset::Msd);
    run.set_dataset(&w.dataset.spec());
    for algo in KnnAlgo::ALL {
        let report = run_knn_baseline(algo, &w, 10);
        run.record_report(&format!("knn/{}", algo.name()), &report);
        print_table(
            &format!("Fig. 6(a): {} function breakdown (MSD-shaped)", algo.name()),
            &["function", "share"],
            &rows_for(&report),
        );
    }

    let w = load(PaperDataset::NusWide);
    let cfg = KmeansConfig {
        k: 64,
        max_iters: 8,
        seed: 7,
    };
    for algo in KmeansAlgo::ALL {
        let res = algo.run(&w.data, &cfg, None).expect("baseline");
        run.record_report(&format!("kmeans/{}", algo.name()), &res.report);
        print_table(
            &format!(
                "Fig. 6(b): {} function breakdown (NUS-WIDE-shaped)",
                algo.name()
            ),
            &["function", "share"],
            &rows_for(&res.report),
        );
    }
    println!("\npaper: ED dominates Standard; bounds take 72-86% for OST/SM/FNN;");
    println!("       ED takes 52-96% of k-means; Elkan's bound update up to 45%");
    run.finish();
}

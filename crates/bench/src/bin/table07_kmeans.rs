//! Table 7 — k-means execution time per iteration.
//!
//! Four datasets (Year / Notre / NUS-WIDE / Enron) × k ∈ {4, 64, 256,
//! 1024} × eight variants (Standard / Elkan / Drake / Yinyang, each ±PIM).
//! Paper anchors: PIM speeds up every algorithm; Standard-PIM up to
//! 33.4×, Drake-PIM up to 8.5×, Yinyang-PIM up to 4.9× on
//! high-dimensional data, Elkan-PIM only slightly ahead of Elkan.
//!
//! Pass `--quick` to limit k to {4, 64} (the default full sweep takes a
//! few minutes at SIMPIM_SCALE=0.01).

use simpim_bench::{fmt_ms, load, ms_per_iter, print_table, run_kmeans_pair, BenchRun, KmeansAlgo};
use simpim_datasets::PaperDataset;
use simpim_mining::kmeans::KmeansConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ks: &[usize] = if quick { &[4, 64] } else { &[4, 64, 256, 1024] };
    let mut run = BenchRun::start("table07_kmeans");
    run.config_entry("quick", simpim_obs::Json::Bool(quick));

    let mut rows = Vec::new();
    for ds in PaperDataset::KMEANS {
        let w = load(ds);
        run.set_dataset(&w.dataset.spec());
        for &k in ks {
            if k >= w.data.len() {
                continue;
            }
            let cfg = KmeansConfig {
                k,
                max_iters: 6,
                seed: 7,
            };
            let mut row = vec![ds.name().to_string(), format!("{k}")];
            for algo in KmeansAlgo::ALL {
                let (base, pim) = run_kmeans_pair(algo, &w.data, &cfg).expect("variants agree");
                run.record_report(
                    &format!("{}/{}/k{k}/base", ds.name(), algo.name()),
                    &base.report,
                );
                run.record_report(
                    &format!("{}/{}/k{k}/pim", ds.name(), algo.name()),
                    &pim.report,
                );
                row.push(fmt_ms(ms_per_iter(&base)));
                row.push(fmt_ms(ms_per_iter(&pim)));
            }
            rows.push(row);
        }
    }
    print_table(
        "Table 7: k-means ms/iteration (model time; columns: base | -PIM)",
        &[
            "dataset",
            "k",
            "Standard",
            "Std-PIM",
            "Elkan",
            "Elkan-PIM",
            "Drake",
            "Drake-PIM",
            "Yinyang",
            "YY-PIM",
        ],
        &rows,
    );
    println!("\npaper: every algorithm gains; Standard-PIM up to 33.4x; Elkan-PIM");
    println!("       only slightly ahead (bound updates dominate Elkan); Drake-PIM");
    println!("       up to 8.5x; Yinyang-PIM up to 4.9x on high-dimensional data");
    run.finish();
}

//! Fig. 13 — kNN classification execution time.
//!
//! * (a) vary dataset (ImageNet / MSD / Trevi / GIST), Standard vs
//!   Standard-PIM, k = 10, ED. Paper: up to 453× (Trevi); GIST improves
//!   little because LB_FNN prunes GIST poorly.
//! * (b) vary algorithm (Standard / OST / SM / FNN) and their -PIM
//!   variants plus the PIM-oracle, MSD. Paper: baselines average 3.9×
//!   over Standard; PIM lifts them to 40.8×.
//! * (c) vary k ∈ {1, 10, 100}, Standard vs Standard-PIM, MSD.
//!   Paper: 71.5× / 57.1× / 29.2×.
//! * (d) vary distance (ED / CS / PCC), MSD. Paper: similar gaps; PCC
//!   slightly weaker because LB_PIM-FNN shares its statistics.
//!
//! Pass `--panel a|b|c|d` to run one panel (default: all).

use simpim_bench::{
    fmt_ms, fmt_x, load, ms, params, prepare_executor, print_table, run_knn_baseline, run_knn_pim,
    BenchRun, KnnAlgo,
};
use simpim_core::executor::{ExecutorConfig, PimExecutor, SimTarget};
use simpim_datasets::PaperDataset;
use simpim_mining::knn::pim::knn_pim_sim;
use simpim_mining::knn::standard::knn_standard;
use simpim_mining::{Architecture, RunReport};
use simpim_profiling::oracle_report;
use simpim_similarity::{Measure, NormalizedDataset};

fn panel_a(run: &mut BenchRun) {
    let mut rows = Vec::new();
    for ds in PaperDataset::KNN {
        let w = load(ds);
        let base = run_knn_baseline(KnnAlgo::Standard, &w, 10);
        let mut exec = prepare_executor(&w.data).expect("fits");
        let bound = exec.bound_name();
        let pim = run_knn_pim(KnnAlgo::Standard, &mut exec, &w, 10).expect("prepared");
        run.set_dataset(&w.dataset.spec());
        run.record_report(&format!("a/{}/base", ds.name()), &base);
        run.record_report(&format!("a/{}/pim", ds.name()), &pim);
        rows.push(vec![
            ds.name().to_string(),
            format!("{}", w.data.len()),
            format!("{}", w.data.dim()),
            bound,
            fmt_ms(ms(&base)),
            fmt_ms(ms(&pim)),
            fmt_x(ms(&base) / ms(&pim)),
        ]);
    }
    print_table(
        "Fig. 13(a): Standard vs Standard-PIM across datasets (k=10, ED)",
        &[
            "dataset",
            "N",
            "d",
            "PIM bound",
            "Standard (ms)",
            "Standard-PIM (ms)",
            "speedup",
        ],
        &rows,
    );
    println!("paper: speedup grows with d; Trevi largest (453x); GIST smallest");
}

fn panel_b(run: &mut BenchRun) {
    let w = load(PaperDataset::Msd);
    let p = params();
    let std_ms = ms(&run_knn_baseline(KnnAlgo::Standard, &w, 10));
    let mut rows = Vec::new();
    for algo in KnnAlgo::ALL {
        let base = run_knn_baseline(algo, &w, 10);
        let mut exec = prepare_executor(&w.data).expect("fits");
        let pim = run_knn_pim(algo, &mut exec, &w, 10).expect("prepared");
        run.record_report(&format!("b/{}/base", algo.name()), &base);
        run.record_report(&format!("b/{}/pim", algo.name()), &pim);
        let offload = algo.offloadable(&w.data);
        let refs: Vec<&str> = offload.iter().map(String::as_str).collect();
        let oracle = oracle_report(&base.profile, &p, &refs);
        rows.push(vec![
            algo.name().to_string(),
            fmt_ms(ms(&base)),
            fmt_ms(ms(&pim)),
            fmt_ms(oracle.oracle_ns / 1e6),
            fmt_x(std_ms / ms(&base)),
            fmt_x(std_ms / ms(&pim)),
        ]);
    }
    print_table(
        "Fig. 13(b): algorithms vs their -PIM variants (MSD-shaped, k=10)",
        &[
            "algorithm",
            "base (ms)",
            "PIM (ms)",
            "oracle (ms)",
            "base vs Std",
            "PIM vs Std",
        ],
        &rows,
    );
    println!("paper: baselines 3.9x over Standard on average; PIM lifts to 40.8x;");
    println!("       PIM variants close to the PIM-oracle");
}

fn panel_c(run: &mut BenchRun) {
    let w = load(PaperDataset::Msd);
    let mut rows = Vec::new();
    for k in [1usize, 10, 100] {
        let base = run_knn_baseline(KnnAlgo::Standard, &w, k);
        let mut exec = prepare_executor(&w.data).expect("fits");
        let pim = run_knn_pim(KnnAlgo::Standard, &mut exec, &w, k).expect("prepared");
        run.record_report(&format!("c/k{k}/base"), &base);
        run.record_report(&format!("c/k{k}/pim"), &pim);
        rows.push(vec![
            format!("{k}"),
            fmt_ms(ms(&base)),
            fmt_ms(ms(&pim)),
            fmt_x(ms(&base) / ms(&pim)),
        ]);
    }
    print_table(
        "Fig. 13(c): Standard vs Standard-PIM across k (MSD-shaped, ED)",
        &["k", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        &rows,
    );
    println!("paper: 71.5x / 57.1x / 29.2x — speedup declines as k grows");
}

fn panel_d(run: &mut BenchRun) {
    let w = load(PaperDataset::Msd);
    let nds = NormalizedDataset::assert_normalized(w.data.clone());
    let mut rows = Vec::new();
    for measure in [Measure::EuclideanSq, Measure::Cosine, Measure::Pearson] {
        let mut base = RunReport::new(Architecture::ConventionalDram);
        for q in &w.queries {
            base.merge(
                &knn_standard(&w.data, q, 10, measure)
                    .expect("float measure")
                    .report,
            );
        }
        let mut pim_total = RunReport::new(Architecture::ReRamPim);
        match measure {
            Measure::EuclideanSq => {
                let mut exec = prepare_executor(&w.data).expect("fits");
                pim_total = run_knn_pim(KnnAlgo::Standard, &mut exec, &w, 10).expect("prepared");
            }
            Measure::Cosine | Measure::Pearson => {
                let target = if measure == Measure::Cosine {
                    SimTarget::Cosine
                } else {
                    SimTarget::Pearson
                };
                let mut exec =
                    PimExecutor::prepare_similarity(ExecutorConfig::default(), &nds, target)
                        .expect("fits uncompressed");
                for q in &w.queries {
                    let res = knn_pim_sim(&mut exec, &w.data, q, 10, measure).expect("prepared");
                    pim_total.merge(&res.report);
                }
            }
            Measure::Hamming => unreachable!(),
        }
        run.record_report(&format!("d/{}/base", measure.name()), &base);
        run.record_report(&format!("d/{}/pim", measure.name()), &pim_total);
        rows.push(vec![
            measure.name().to_string(),
            fmt_ms(ms(&base)),
            fmt_ms(ms(&pim_total)),
            fmt_x(ms(&base) / ms(&pim_total)),
        ]);
    }
    print_table(
        "Fig. 13(d): Standard vs Standard-PIM across distance functions (MSD-shaped, k=10)",
        &["distance", "Standard (ms)", "Standard-PIM (ms)", "speedup"],
        &rows,
    );
    println!("paper: similar gaps on all three; PCC slightly weaker");
}

fn main() {
    let panel = std::env::args()
        .skip_while(|a| a != "--panel")
        .nth(1)
        .unwrap_or_else(|| "all".to_string());
    let mut run = BenchRun::start("fig13_knn");
    run.config_entry("panel", simpim_obs::Json::Str(panel.clone()));
    match panel.as_str() {
        "a" => panel_a(&mut run),
        "b" => panel_b(&mut run),
        "c" => panel_c(&mut run),
        "d" => panel_d(&mut run),
        _ => {
            panel_a(&mut run);
            panel_b(&mut run);
            panel_c(&mut run);
            panel_d(&mut run);
        }
    }
    run.finish();
}

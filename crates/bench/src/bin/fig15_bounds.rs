//! Fig. 15 — pruning ratio and data-transfer cost of the candidate bounds
//! (MSD, α = 10⁶, k = 10).
//!
//! Compares the FNN cascade levels (`LB_FNN^{6,28,105}` at d = 420) with
//! `LB_PIM-FNN^105`. Paper: the PIM bound prunes more than `LB_FNN^{6,105}`
//! and slightly less than `LB_FNN^28`… (in the paper's notation
//! `LB_PIM-FNN^105` is stronger than `LB_FNN^{7}` and `LB_FNN^{105}`'s
//! *cheap* levels while costing only 3·b bits), and at α = 10⁶ it is tight
//! enough to prune ~99% of objects.

use simpim_bench::{load, print_table};
use simpim_bounds::{BoundStage, FnnBound};
use simpim_core::planner::PruningProfile;
use simpim_core::stage::PimFnnStage;
use simpim_datasets::PaperDataset;
use simpim_mining::knn::algorithms::fnn_levels;
use simpim_similarity::{Measure, NormalizedDataset};

fn main() {
    let mut run = simpim_bench::BenchRun::start("fig15_bounds");
    let w = load(PaperDataset::Msd);
    run.set_dataset(&w.dataset.spec());
    let nds = NormalizedDataset::assert_normalized(w.data.clone());
    let levels = fnn_levels(w.data.dim());
    let top = *levels.last().expect("at least one level");

    let classic: Vec<FnnBound> = levels
        .iter()
        .map(|&s| FnnBound::build(&w.data, s).expect("divisor"))
        .collect();
    let pim = PimFnnStage::build(&nds, top, 1e6).expect("divisor");

    let mut stages: Vec<&dyn BoundStage> = classic.iter().map(|b| b as &dyn BoundStage).collect();
    stages.push(&pim);

    let ratios = PruningProfile::measure(&stages, &w.data, &w.queries, 10, Measure::EuclideanSq)
        .expect("matching bound directions");

    let n = w.data.len() as u64;
    for (s, &r) in stages.iter().zip(&ratios) {
        run.note_stage(
            &format!("prune/{}", s.name()),
            0,
            1,
            (r * n as f64) as u64,
            s.transfer_bytes_per_object() * n,
        );
        run.push_extra(&format!("ratio/{}", s.name()), simpim_obs::Json::Num(r));
    }
    let rows: Vec<Vec<String>> = stages
        .iter()
        .zip(&ratios)
        .map(|(s, &r)| {
            vec![
                s.name(),
                format!("{:.1}%", r * 100.0),
                format!("{}", s.transfer_bytes_per_object()),
                format!("{:.2}", (s.transfer_bytes_per_object() * n) as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 15: pruning ratio & transfer cost (MSD-shaped, N={n}, α=1e6)"),
        &["bound", "prune ratio", "bytes/object", "total MB"],
        &rows,
    );
    println!("paper: LB_PIM-FNN^105 prunes ~99%, stronger than LB_FNN^7 and");
    println!("       LB_FNN^105, slightly weaker than LB_FNN^28 — at 3·b bits of");
    println!("       transfer instead of d'/64..d'/4 values per object");

    // α sweep: Theorem 3 in action (the Fig. 15 caption's α = 1e6 choice).
    let mut rows = Vec::new();
    for alpha in [1e1, 1e2, 1e3, 1e4, 1e6] {
        let stage = PimFnnStage::build(&nds, top, alpha).expect("divisor");
        let r = PruningProfile::measure(&[&stage], &w.data, &w.queries, 10, Measure::EuclideanSq)
            .expect("matching bound directions")[0];
        rows.push(vec![format!("{alpha:.0}"), format!("{:.1}%", r * 100.0)]);
    }
    print_table(
        "Fig. 15 (supplement): pruning ratio vs α",
        &["alpha", "prune ratio"],
        &rows,
    );
    run.finish();
}

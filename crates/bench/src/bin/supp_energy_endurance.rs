//! Supplementary analysis: energy and endurance (Section V-C's
//! motivation and the paper's future-work discussion quantified).
//!
//! * **Energy** — programming (one-time) vs per-query compute/bus energy,
//!   from the Table 1-calibrated energy model.
//! * **Endurance** — with 10⁸–10¹¹ write cycles per cell (Table 1), how
//!   many dataset re-programmings would wear out the array, and why the
//!   compress-once strategy matters.

use simpim_bench::{load, prepare_executor, print_table, run_knn_pim, BenchRun, KnnAlgo};
use simpim_datasets::PaperDataset;
use simpim_reram::config::nvm_table;

fn main() {
    let mut run = BenchRun::start("supp_energy_endurance");
    let mut rows = Vec::new();
    for ds in PaperDataset::KNN {
        let w = load(ds);
        let mut exec = prepare_executor(&w.data).expect("fits");
        let prep = exec.report().clone();
        // Run a query workload to accumulate online energy.
        let report = run_knn_pim(KnnAlgo::Standard, &mut exec, &w, 10).expect("prepared");
        run.set_dataset(&w.dataset.spec());
        run.record_report(&format!("knn/{}", ds.name()), &report);
        let e = *exec.bank().pim().energy();

        // Endurance: cells are written once per (re-)programming; the
        // weakest Table 1 endurance is 1e8 cycles.
        let reprograms_to_wearout = nvm_table::RERAM.endurance_writes.0; // per cell
        rows.push(vec![
            ds.name().to_string(),
            format!("{:.2}", e.write_j * 1e3),
            format!("{:.4}", (e.compute_j + e.bus_j) * 1e3),
            format!("{}", prep.cell_writes),
            format!("{:.0e}", reprograms_to_wearout),
        ]);
    }
    print_table(
        "Supplement: energy & endurance per dataset (5-query workload)",
        &[
            "dataset",
            "program mJ",
            "query mJ",
            "cell writes",
            "reprograms→wearout",
        ],
        &rows,
    );
    println!("\nreading never wears cells: the compress-once strategy of Section V-C");
    println!("means a dataset is programmed once, then queried indefinitely; even");
    println!("daily re-programming would take ~3e5 years to reach 1e8 cycles/cell");
    run.finish();
}

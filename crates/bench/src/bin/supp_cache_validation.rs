//! Supplementary analysis: trace-driven validation of the analytical
//! `T_cache` model (Section IV-A's methodology check).
//!
//! The Eq. 1 cost model assumes linear scans of data far beyond L3 miss on
//! essentially every line, while small working sets (bound tables,
//! centers) stay cache-resident. This harness replays both access shapes
//! through the set-associative L1/L2/L3 simulator of the paper's machine
//! and reports simulated miss fractions next to the model's assumption.

use simpim_bench::{print_table, BenchRun};
use simpim_profiling::hardware::scan_trace_check;

fn main() {
    let mut run = BenchRun::start("supp_cache_validation");
    let mut rows = Vec::new();
    for (label, objects, bytes_per_object, passes, assumption) in [
        (
            "MSD scan (33 MB), 1 pass",
            10_000u64,
            3_360u64,
            1u32,
            "miss ~100%",
        ),
        ("MSD scan (33 MB), 2 passes", 10_000, 3_360, 2, "miss ~100%"),
        (
            "bound table (0.8 MB), 2 passes",
            10_000,
            80,
            2,
            "partially resident (< L3)",
        ),
        (
            "centers (32 KB), 4 passes",
            64,
            512,
            4,
            "resident after pass 1",
        ),
    ] {
        let check = scan_trace_check(objects, bytes_per_object, passes);
        run.note_stage(
            &format!("trace/{label}"),
            (check.simulated_avg_latency_ns * objects as f64 * passes as f64) as u64,
            passes as u64,
            objects * passes as u64,
            objects * bytes_per_object * passes as u64,
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", check.simulated_memory_fraction * 100.0),
            format!("{:.1} ns", check.simulated_avg_latency_ns),
            assumption.to_string(),
        ]);
    }
    print_table(
        "Supplement: cache-simulator check of the T_cache assumptions",
        &[
            "workload",
            "simulated line-miss",
            "avg access latency",
            "model assumption",
        ],
        &rows,
    );
    println!("\nlarge scans miss every line regardless of repetition (capacity);");
    println!("small tables become cache-resident — both as the analytical model assumes");
    run.finish();
}

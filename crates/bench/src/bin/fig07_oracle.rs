//! Fig. 7 — No-PIM vs PIM-oracle (Eq. 2).
//!
//! For each algorithm, `T_PIM-oracle` removes the time of every
//! offloadable function (the exact measure + its bounds for kNN; the
//! assign-step ED for k-means). Paper anchors: PIM-oracle is 183.9×
//! faster than No-PIM for Standard kNN; for k-means it is 51.4×
//! (Standard) but only 7.5× / 5.3× / 2.2× for Drake / Yinyang / Elkan.

use simpim_bench::{
    fmt_ms, fmt_x, load, params, print_table, run_knn_baseline, BenchRun, KmeansAlgo, KnnAlgo,
};
use simpim_datasets::PaperDataset;
use simpim_mining::kmeans::KmeansConfig;
use simpim_profiling::oracle_report;

fn main() {
    let p = params();
    let mut run = BenchRun::start("fig07_oracle");

    // Panel (a): kNN on MSD, k = 10.
    let w = load(PaperDataset::Msd);
    let mut rows = Vec::new();
    for algo in KnnAlgo::ALL {
        let report = run_knn_baseline(algo, &w, 10);
        run.set_dataset(&w.dataset.spec());
        run.record_report(&format!("knn/{}", algo.name()), &report);
        let offload: Vec<String> = algo.offloadable(&w.data);
        let refs: Vec<&str> = offload.iter().map(String::as_str).collect();
        let o = oracle_report(&report.profile, &p, &refs);
        rows.push(vec![
            algo.name().to_string(),
            fmt_ms(o.total_ns / 1e6),
            fmt_ms(o.oracle_ns / 1e6),
            fmt_x(o.speedup_ceiling),
        ]);
    }
    print_table(
        &format!(
            "Fig. 7(a): kNN No-PIM vs PIM-oracle (MSD-shaped, N={}, k=10)",
            w.data.len()
        ),
        &["algorithm", "No-PIM (ms)", "PIM-oracle (ms)", "ceiling"],
        &rows,
    );

    // Panel (b): k-means on NUS-WIDE, k = 64 — F = {ED of the assign step}.
    let w = load(PaperDataset::NusWide);
    let cfg = KmeansConfig {
        k: 64,
        max_iters: 8,
        seed: 7,
    };
    let mut rows = Vec::new();
    for algo in KmeansAlgo::ALL {
        let res = algo.run(&w.data, &cfg, None).expect("baseline");
        run.record_report(&format!("kmeans/{}", algo.name()), &res.report);
        let o = oracle_report(&res.report.profile, &p, &["ED"]);
        rows.push(vec![
            algo.name().to_string(),
            fmt_ms(o.total_ns / 1e6 / res.iterations as f64),
            fmt_ms(o.oracle_ns / 1e6 / res.iterations as f64),
            fmt_x(o.speedup_ceiling),
        ]);
    }
    print_table(
        &format!(
            "Fig. 7(b): k-means No-PIM vs PIM-oracle (NUS-WIDE-shaped, N={}, k=64, ms/iter)",
            w.data.len()
        ),
        &["algorithm", "No-PIM", "PIM-oracle", "ceiling"],
        &rows,
    );
    println!("\npaper: kNN Standard ceiling 183.9x; k-means Standard 51.4x,");
    println!("       Drake 7.5x, Yinyang 5.3x, Elkan 2.2x");
    run.finish();
}

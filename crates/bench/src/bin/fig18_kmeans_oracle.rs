//! Fig. 18 — PIM-optimized vs PIM-oracle for k-means (NUS-WIDE, varying k).
//!
//! Panel (a): Standard; panel (b): Drake. Paper: the gap between the
//! baseline and its -PIM variant is large, while -PIM sits close to the
//! oracle — higher k widens Standard's gain; Drake-PIM "bridges the gap
//! effectively".

use simpim_bench::{
    fmt_ms, load, ms_per_iter, params, print_table, run_kmeans_pair, BenchRun, KmeansAlgo,
};
use simpim_datasets::PaperDataset;
use simpim_mining::kmeans::KmeansConfig;
use simpim_profiling::oracle_report;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ks: &[usize] = if quick { &[4, 64] } else { &[4, 64, 256, 1024] };
    let w = load(PaperDataset::NusWide);
    let p = params();
    let mut run = BenchRun::start("fig18_kmeans_oracle");
    run.set_dataset(&w.dataset.spec());

    for algo in [KmeansAlgo::Standard, KmeansAlgo::Drake] {
        let mut rows = Vec::new();
        for &k in ks {
            if k >= w.data.len() {
                continue;
            }
            let cfg = KmeansConfig {
                k,
                max_iters: 6,
                seed: 7,
            };
            let (base, pim) = run_kmeans_pair(algo, &w.data, &cfg).expect("variants agree");
            run.record_report(&format!("{}/k{k}/base", algo.name()), &base.report);
            run.record_report(&format!("{}/k{k}/pim", algo.name()), &pim.report);
            let oracle = oracle_report(&base.report.profile, &p, &["ED"]);
            rows.push(vec![
                format!("{k}"),
                fmt_ms(ms_per_iter(&base)),
                fmt_ms(ms_per_iter(&pim)),
                fmt_ms(oracle.oracle_ns / 1e6 / base.iterations as f64),
            ]);
        }
        print_table(
            &format!(
                "Fig. 18: {} vs {}-PIM vs {}-PIM-oracle (NUS-WIDE-shaped, ms/iter)",
                algo.name(),
                algo.name(),
                algo.name()
            ),
            &["k", "baseline", "-PIM", "-PIM-oracle"],
            &rows,
        );
    }
    println!("\npaper: obvious gap baseline → -PIM, narrow gap -PIM → oracle;");
    println!("       higher k amplifies Standard's benefit");
    run.finish();
}

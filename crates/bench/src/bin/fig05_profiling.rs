//! Fig. 5 — CPU-time breakdown by hardware component (Eq. 1).
//!
//! Panel (a): kNN algorithms on MSD, k = 10.
//! Panel (b): k-means algorithms on NUS-WIDE, k = 64.
//!
//! Paper observation to reproduce: `T_cache` dominates — 65–83% of kNN
//! time and 62–75% of k-means time — which is what justifies PIM.

use simpim_bench::{load, params, print_table, run_knn_baseline, BenchRun, KmeansAlgo, KnnAlgo};
use simpim_datasets::PaperDataset;
use simpim_mining::kmeans::KmeansConfig;

fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

fn main() {
    let p = params();
    let mut run = BenchRun::start("fig05_profiling");

    // Panel (a): kNN on MSD, k = 10.
    let w = load(PaperDataset::Msd);
    let mut rows = Vec::new();
    for algo in KnnAlgo::ALL {
        let report = run_knn_baseline(algo, &w, 10);
        run.set_dataset(&w.dataset.spec());
        run.record_report(&format!("knn/{}", algo.name()), &report);
        let b = report.host_breakdown(&p);
        let f = b.fractions();
        rows.push(vec![
            algo.name().to_string(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
            pct(f[4]),
        ]);
    }
    print_table(
        &format!(
            "Fig. 5(a): kNN hardware breakdown (MSD-shaped, N={}, k=10)",
            w.data.len()
        ),
        &["algorithm", "Tc", "Tcache", "TALU", "TBr", "TFe"],
        &rows,
    );

    // Panel (b): k-means on NUS-WIDE, k = 64.
    let w = load(PaperDataset::NusWide);
    let cfg = KmeansConfig {
        k: 64,
        max_iters: 8,
        seed: 7,
    };
    let mut rows = Vec::new();
    for algo in KmeansAlgo::ALL {
        let res = algo.run(&w.data, &cfg, None).expect("baseline");
        run.record_report(&format!("kmeans/{}", algo.name()), &res.report);
        let b = res.report.host_breakdown(&p);
        let f = b.fractions();
        rows.push(vec![
            algo.name().to_string(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
            pct(f[4]),
        ]);
    }
    print_table(
        &format!(
            "Fig. 5(b): k-means hardware breakdown (NUS-WIDE-shaped, N={}, k=64)",
            w.data.len()
        ),
        &["algorithm", "Tc", "Tcache", "TALU", "TBr", "TFe"],
        &rows,
    );
    println!("\npaper: Tcache 65-83% (kNN), 62-75% (k-means)");
    run.finish();
}

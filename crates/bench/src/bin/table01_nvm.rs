//! Tables 1 and 5 — the NVM device characteristics and the platform
//! configuration, as encoded in the simulator's constants (sanity view).

use simpim_bench::{print_table, BenchRun};
use simpim_reram::config::nvm_table;
use simpim_reram::PimConfig;
use simpim_simkit::constants;

fn main() {
    let mut run = BenchRun::start("table01_nvm");
    run.note_stage("render/tables", 0, 1, 0, 0);
    let rows: Vec<Vec<String>> = nvm_table::ALL
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                if r.volatile { "x".into() } else { "√".into() },
                format!("{:.0e}-{:.0e}", r.endurance_writes.0, r.endurance_writes.1),
                format!("{}-{}", r.read_latency_ns.0, r.read_latency_ns.1),
                format!("{}-{}", r.write_latency_ns.0, r.write_latency_ns.1),
                format!("{}-{}", r.cell_size_f2.0, r.cell_size_f2.1),
                format!("{:.0e}", r.write_energy_j_per_bit),
            ]
        })
        .collect();
    print_table(
        "Table 1: characteristics of representative NVM techniques",
        &[
            "memory",
            "non-volatile",
            "endurance",
            "read ns",
            "write ns",
            "cell F²",
            "J/bit",
        ],
        &rows,
    );

    let cfg = PimConfig::default();
    let rows = vec![
        vec![
            "CPU".into(),
            format!(
                "{:.2} GHz ({} ops/cycle)",
                1.0 / constants::CYCLE_NS,
                constants::ISSUE_WIDTH
            ),
        ],
        vec![
            "caches".into(),
            format!(
                "{} KB / {} KB / {} MB",
                constants::L1_BYTES / 1024,
                constants::L2_BYTES / 1024,
                constants::L3_BYTES / 1024 / 1024
            ),
        ],
        vec![
            "memory array".into(),
            format!("{} GB ReRAM", cfg.memory_bytes / (1 << 30)),
        ],
        vec![
            "buffer array".into(),
            format!("{} MB eDRAM", cfg.buffer_bytes / (1 << 20)),
        ],
        vec![
            "PIM array".into(),
            format!(
                "{} crossbars of {}x{} {}-bit cells (2 GB)",
                cfg.num_crossbars, cfg.crossbar.size, cfg.crossbar.size, cfg.crossbar.cell_bits
            ),
        ],
        vec![
            "crossbar latency".into(),
            format!(
                "read {} ns / write {} ns",
                cfg.crossbar.read_ns, cfg.crossbar.write_ns
            ),
        ],
        vec![
            "internal bus".into(),
            format!("{} GB/s", cfg.internal_bus_gbps),
        ],
    ];
    print_table(
        "Table 5: hardware platform configuration",
        &["component", "value"],
        &rows,
    );
    run.finish();
}

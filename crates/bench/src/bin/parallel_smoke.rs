//! parallel_smoke — determinism and speedup smoke for the `simpim-par`
//! execution layer (DESIGN.md §10).
//!
//! Runs the Fig. 13 kNN workload on the Trevi-shaped dataset (the
//! paper's highest-dimensional one, so the parallelized dot-product and
//! refinement dispatches dominate) with Standard-PIM at k = 10, three
//! times:
//!
//! 1. pinned to **1 worker**, capturing the dispatch schedule;
//! 2. pinned to **8 workers**, measured wall clock;
//! 3. at the **ambient** worker count (`SIMPIM_THREADS` / detected
//!    cores) — the headline `result_hash` CI diffs across runs at
//!    different thread counts.
//!
//! All three result hashes must be bit-identical (the binary aborts
//! otherwise). Besides the measured 8-worker speedup — which is bounded
//! by the physical core count of the measuring host — the artifact
//! reports the **modeled** 8-worker speedup: the captured single-worker
//! schedule replayed through the pool's claiming discipline on 8
//! virtual workers (`simpim_par::model`), which is what the chunking
//! admits on real hardware.

use std::time::Instant;

use simpim_bench::{
    fmt_ms, fmt_x, prepare_executor, print_table, BenchRun, Workload, MIN_N, QUERIES,
};
use simpim_bounds::BoundCascade;
use simpim_core::executor::PimExecutor;
use simpim_datasets::spec::env_scale;
use simpim_datasets::{generate, sample_queries, PaperDataset, SyntheticConfig};
use simpim_mining::knn::pim::knn_pim_ed;
use simpim_mining::{Architecture, RunReport};
use simpim_obs::Json;
use simpim_par as par;

const K: usize = 10;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs the workload's queries; returns (result hash, merged report).
/// The hash covers neighbor indices and distance bit patterns in rank
/// order, so any divergence — reordering, a ULP of drift — changes it.
fn run_queries(exec: &mut PimExecutor, w: &Workload) -> (u64, RunReport) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut total = RunReport::new(Architecture::ReRamPim);
    for q in &w.queries {
        let res = knn_pim_ed(exec, &w.data, &BoundCascade::empty(), q, K).expect("prepared");
        for (i, v) in &res.neighbors {
            h = fnv1a(h, &(*i as u64).to_le_bytes());
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
        total.merge(&res.report);
    }
    (h, total)
}

fn main() {
    let mut run = BenchRun::start("parallel");
    // The Fig. 13 workload with a higher object-count floor than the
    // other harnesses: the smoke measures scheduling, so the parallel
    // dispatches must dwarf the per-query serial residue (sort, top-k).
    let spec = PaperDataset::Trevi.spec();
    let n = spec.scaled_n(env_scale(), MIN_N).max(12_000);
    let data = generate(&SyntheticConfig::from_spec(&spec, n));
    let queries = sample_queries(&data, QUERIES, 0.02, spec.seed ^ 0xBEEF);
    let w = Workload {
        dataset: PaperDataset::Trevi,
        data,
        queries,
    };
    run.set_dataset(&w.dataset.spec());
    run.config_entry("k", Json::Num(K as f64));
    let ambient = par::thread_count();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Best of three captures: on a loaded or single-core host one
    // preempted job inflates the replayed makespan, so keep the
    // repetition whose schedule replays best (every repetition must
    // produce the same hash regardless).
    const REPS: usize = 3;
    let mut h1 = 0u64;
    let mut rep1 = RunReport::new(Architecture::ReRamPim);
    let mut wall1 = 0u64;
    let mut dispatches: Vec<Vec<u64>> = Vec::new();
    let mut best_ratio = f64::INFINITY;
    for r in 0..REPS {
        let mut exec = prepare_executor(&w.data).expect("fits");
        let t0 = Instant::now();
        let ((h, rep), disp) =
            par::model::capture(|| par::with_threads(1, || run_queries(&mut exec, &w)));
        let wall = t0.elapsed().as_nanos() as u64;
        if r == 0 {
            h1 = h;
        } else {
            assert_eq!(h, h1, "serial repetition diverged");
        }
        let ratio = par::model::modeled_wall_ns(wall, &disp, 8) as f64 / wall.max(1) as f64;
        if ratio < best_ratio {
            best_ratio = ratio;
            rep1 = rep;
            wall1 = wall;
            dispatches = disp;
        }
    }

    let mut exec = prepare_executor(&w.data).expect("fits");
    let t0 = Instant::now();
    let (h8, rep8) = par::with_threads(8, || run_queries(&mut exec, &w));
    let wall8 = t0.elapsed().as_nanos() as u64;

    let mut exec = prepare_executor(&w.data).expect("fits");
    let (hash, _rep_ambient) = run_queries(&mut exec, &w);

    assert_eq!(h1, h8, "8-worker kNN diverged from the serial result");
    assert_eq!(
        h1, hash,
        "ambient-thread kNN diverged from the serial result"
    );

    run.record_report("knn_1w", &rep1);
    run.record_report("knn_8w", &rep8);

    let busy: u64 = dispatches.iter().flatten().sum();
    let jobs: usize = dispatches.iter().map(Vec::len).sum();
    let modeled8 = par::model::modeled_wall_ns(wall1, &dispatches, 8);
    let measured_speedup = wall1 as f64 / wall8.max(1) as f64;
    let modeled_speedup = wall1 as f64 / modeled8.max(1) as f64;
    let parallel_fraction = busy as f64 / wall1.max(1) as f64;

    print_table(
        &format!(
            "parallel_smoke: Trevi-shaped kNN (Standard-PIM, k={K}, {} queries, host cores={cores}, ambient threads={ambient})",
            w.queries.len()
        ),
        &["workers", "wall (ms)", "speedup", "basis"],
        &[
            vec![
                "1".into(),
                fmt_ms(wall1 as f64 / 1e6),
                fmt_x(1.0),
                "measured".into(),
            ],
            vec![
                "8".into(),
                fmt_ms(wall8 as f64 / 1e6),
                fmt_x(measured_speedup),
                "measured".into(),
            ],
            vec![
                "8".into(),
                fmt_ms(modeled8 as f64 / 1e6),
                fmt_x(modeled_speedup),
                "schedule replay".into(),
            ],
        ],
    );
    println!(
        "result hash {hash:016x} identical at 1, 8 and ambient workers; \
         {} dispatches / {jobs} jobs, parallel fraction {:.1}%",
        dispatches.len(),
        parallel_fraction * 100.0
    );
    if cores < 8 {
        println!("note: measured 8-worker speedup is bounded by the {cores}-core host;");
        println!("      the schedule replay shows what the fixed chunking admits");
    }

    run.push_extra(
        "parallel",
        Json::obj([
            ("result_hash", Json::Str(format!("{hash:016x}"))),
            ("threads_ambient", Json::Num(ambient as f64)),
            ("host_cores", Json::Num(cores as f64)),
            ("wall_ms_1w", Json::Num(wall1 as f64 / 1e6)),
            ("wall_ms_8w", Json::Num(wall8 as f64 / 1e6)),
            ("measured_speedup_8w", Json::Num(measured_speedup)),
            ("modeled_wall_ms_8w", Json::Num(modeled8 as f64 / 1e6)),
            ("modeled_speedup_8w", Json::Num(modeled_speedup)),
            ("dispatches", Json::Num(dispatches.len() as f64)),
            ("dispatch_jobs", Json::Num(jobs as f64)),
            ("parallel_fraction", Json::Num(parallel_fraction)),
        ]),
    );
    run.finish();
}

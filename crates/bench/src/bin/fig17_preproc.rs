//! Fig. 17 — pre-processing time of FNN vs FNN-PIM-optimize.
//!
//! FNN precomputes three segment-statistic tables (`d/64`, `d/16`, `d/4`)
//! and writes them to DRAM; FNN-PIM-optimize quantizes one table at the
//! Theorem-4 `s` and programs it onto ReRAM crossbars. The paper finds the
//! PIM side ~1.9× *slower* on average — ReRAM write latency outweighs the
//! ~33% smaller write volume.

use simpim_bench::{fmt_ms, fmt_x, load, params, prepare_executor, print_table, BenchRun};
use simpim_datasets::PaperDataset;
use simpim_mining::knn::algorithms::fnn_levels;
use simpim_simkit::OpCounters;

fn main() {
    let p = params();
    let mut run = BenchRun::start("fig17_preproc");
    let mut rows = Vec::new();
    for ds in PaperDataset::KNN {
        let w = load(ds);
        let n = w.data.len() as u64;
        let d = w.data.dim() as u64;

        // Baseline FNN pre-processing: read the dataset once per level,
        // compute per-segment µ/σ, write the tables to DRAM.
        let mut counters = OpCounters::new();
        for &level in &fnn_levels(w.data.dim()) {
            counters.stream(n * d * 8); // scan the data
            counters.arith += n * d * 3; // accumulate mean + variance
            counters.mul += n * d;
            counters.sqrt += n * level as u64;
            counters.div += 2 * n * level as u64;
            counters.write(n * level as u64 * 2 * 8); // µ and σ tables
        }
        let fnn_ns = p.evaluate(&counters).total_ns();
        let fnn_written = counters.bytes_written;

        // PIM pre-processing: quantize one table at s, program crossbars.
        let exec = prepare_executor(&w.data).expect("fits");
        let rep = exec.report();
        let mut host = OpCounters::new();
        host.stream(n * d * 8); // scan the data once
        host.arith += n * d * 3;
        host.mul += n * d;
        host.write(rep.phi_bytes);
        let pim_ns = p.evaluate(&host).total_ns() + rep.program_ns;
        // Crossbar cell writes, expressed in bytes of h-bit cells.
        let pim_written = rep.cell_writes * 2 / 8 + rep.phi_bytes;

        run.set_dataset(&w.dataset.spec());
        run.note_stage(
            &format!("preproc/{}/fnn", ds.name()),
            fnn_ns as u64,
            1,
            0,
            fnn_written,
        );
        run.note_stage(
            &format!("preproc/{}/pim", ds.name()),
            pim_ns as u64,
            1,
            0,
            pim_written,
        );
        rows.push(vec![
            ds.name().to_string(),
            fmt_ms(fnn_ns / 1e6),
            fmt_ms(pim_ns / 1e6),
            fmt_x(pim_ns / fnn_ns),
            format!("{:.1}", fnn_written as f64 / 1e6),
            format!("{:.1}", pim_written as f64 / 1e6),
        ]);
    }
    print_table(
        "Fig. 17: pre-processing time, FNN vs FNN-PIM-optimize",
        &[
            "dataset",
            "FNN (ms)",
            "FNN-PIM (ms)",
            "PIM/FNN",
            "FNN MB written",
            "PIM MB written",
        ],
        &rows,
    );
    println!("paper: PIM pre-processing ~1.9x slower on average (ReRAM write");
    println!("       latency), while writing ~33% less data (one table, not three)");
    run.finish();
}

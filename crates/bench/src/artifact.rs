//! Schema-versioned run artifacts for the experiment harnesses.
//!
//! Every bench binary wraps its run in a [`BenchRun`]: merged
//! [`RunReport`]s become per-stage [`StageRecord`]s via the host cost
//! model, the metrics registry is snapshotted at the end, and the whole
//! document lands in `BENCH_<name>.json` next to the working directory
//! (set `SIMPIM_ARTIFACT_DIR` to redirect). Render or diff the result
//! with `simpim report <a.json> [<b.json>]`.

use std::path::PathBuf;

use simpim_datasets::spec::{env_scale, DatasetSpec};
use simpim_mining::RunReport;
use simpim_obs::{Json, RunArtifact, StageRecord, ToJson};
use simpim_simkit::HostParams;

/// Collects one bench binary's observations into a [`RunArtifact`].
pub struct BenchRun {
    artifact: RunArtifact,
    params: HostParams,
}

impl BenchRun {
    /// Starts a run: resets the metrics registry (so the artifact's
    /// snapshot covers exactly this binary) and stamps the git revision,
    /// the harness scale configuration, and the active SIMD kernel
    /// backend (so cross-PR latency/throughput comparisons are
    /// attributable to the kernels that actually ran).
    pub fn start(name: &str) -> Self {
        simpim_obs::metrics::reset();
        // Re-publish the backend gauge after the reset so the artifact's
        // metrics snapshot carries `simpim.kern.backend`.
        simpim_kern::publish_metrics();
        let mut artifact = RunArtifact::new(name);
        artifact.git = git_describe();
        artifact.config = Json::obj([
            ("scale", Json::Num(env_scale())),
            ("queries", Json::Num(crate::QUERIES as f64)),
            ("min_n", Json::Num(crate::MIN_N as f64)),
            (
                "kernel_backend",
                Json::Str(simpim_kern::backend_name().to_string()),
            ),
        ]);
        Self {
            artifact,
            params: crate::params(),
        }
    }

    /// Attaches the (first) dataset specification this run exercises.
    /// Multi-dataset harnesses keep the first and list the rest under an
    /// `extra` section if they care.
    pub fn set_dataset(&mut self, spec: &DatasetSpec) {
        if matches!(self.artifact.dataset, Json::Null) {
            self.artifact.dataset = spec.to_json();
        }
    }

    /// Adds one `key = value` entry to the run configuration section.
    pub fn config_entry(&mut self, key: &str, value: Json) {
        match &mut self.artifact.config {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            other => *other = Json::obj([(key, value)]),
        }
    }

    /// Converts a merged [`RunReport`] into stage records: one per
    /// profiled function (model time from the host cost model, operation
    /// and byte counts from the attributed counters) plus a `<label>/pim`
    /// stage when the report accumulated PIM-side latency.
    pub fn record_report(&mut self, label: &str, report: &RunReport) {
        for (fname, rec) in report.profile.iter() {
            let t = report.profile.function_time(fname, &self.params);
            let c = &rec.counters;
            self.artifact.stages.push(StageRecord {
                name: format!("{label}/{fname}"),
                time_ns: t.total_ns() as u64,
                calls: rec.calls,
                ops: c.arith + c.mul + c.div + c.sqrt + c.cmp + c.branch,
                bytes: c.bytes_streamed + c.random_fetches + c.bytes_written,
            });
        }
        let pim_ns = report.pim.total_ns();
        if pim_ns > 0.0 {
            self.artifact.stages.push(StageRecord {
                name: format!("{label}/pim"),
                time_ns: pim_ns as u64,
                calls: 0,
                ops: 0,
                bytes: 0,
            });
        }
    }

    /// Appends a hand-built stage record, for harnesses whose work is
    /// analytical (cost-model tables) rather than a mined [`RunReport`].
    pub fn note_stage(&mut self, name: &str, time_ns: u64, calls: u64, ops: u64, bytes: u64) {
        self.artifact.stages.push(StageRecord {
            name: name.to_string(),
            time_ns,
            calls,
            ops,
            bytes,
        });
    }

    /// Appends a free-form extension section (figure series, speedups).
    pub fn push_extra(&mut self, key: &str, value: Json) {
        self.artifact.push_extra(key, value);
    }

    /// Snapshots the metrics registry, writes `BENCH_<name>.json`, and
    /// returns the path. IO failures degrade to a warning on stderr: an
    /// artifact must never abort the experiment that produced it.
    pub fn finish(mut self) -> PathBuf {
        self.artifact.metrics = simpim_obs::metrics::snapshot().to_json();
        // Journal accounting rides along even when tracing was off:
        // capacity plus per-span-name drop counts, so a truncated span
        // dump is diagnosable from the artifact alone.
        self.artifact.push_extra(
            "trace_journal",
            simpim_obs::trace::journal_stats().to_json(),
        );
        self.artifact.totals = Json::obj([(
            "stage_time_ns",
            Json::Num(self.artifact.total_time_ns() as f64),
        )]);
        let dir = std::env::var("SIMPIM_ARTIFACT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.artifact.name));
        for problem in self.artifact.validate() {
            eprintln!("warning: artifact {}: {problem}", self.artifact.name);
        }
        if let Err(e) = std::fs::write(&path, self.artifact.to_json_text()) {
            eprintln!("warning: could not write artifact {}: {e}", path.display());
        } else {
            println!("\nartifact: {}", path.display());
        }
        path
    }
}

/// `git describe --always --dirty`, or `None` outside a git checkout.
fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!text.is_empty()).then_some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_mining::Architecture;

    #[test]
    fn report_becomes_stage_records() {
        let mut report = RunReport::new(Architecture::ConventionalDram);
        let mut c = simpim_simkit::OpCounters::new();
        c.euclidean_kernel(64, 8);
        report.profile.record("ED", c);
        let mut run = BenchRun::start("unit_test");
        run.record_report("knn", &report);
        assert_eq!(run.artifact.stages.len(), 1);
        let s = &run.artifact.stages[0];
        assert_eq!(s.name, "knn/ED");
        assert_eq!(s.calls, 1);
        assert!(s.time_ns > 0 && s.ops > 0);
    }

    #[test]
    fn artifact_lands_on_disk_and_parses_back() {
        let dir = std::env::temp_dir().join("simpim_bench_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("SIMPIM_ARTIFACT_DIR", &dir);
        let mut run = BenchRun::start("artifact_roundtrip");
        let mut report = RunReport::new(Architecture::ConventionalDram);
        let mut c = simpim_simkit::OpCounters::new();
        c.euclidean_kernel(8, 8);
        report.profile.record("ED", c);
        run.record_report("knn", &report);
        run.set_dataset(&simpim_datasets::PaperDataset::Msd.spec());
        run.config_entry("k", Json::Num(10.0));
        run.push_extra("note", Json::Str("unit".into()));
        let path = run.finish();
        std::env::remove_var("SIMPIM_ARTIFACT_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = RunArtifact::from_json_text(&text).unwrap();
        assert_eq!(parsed.schema_version, simpim_obs::SCHEMA_VERSION);
        assert_eq!(parsed.name, "artifact_roundtrip");
        assert!(parsed.validate().is_empty());
        std::fs::remove_file(&path).ok();
    }
}

//! Criterion micro-benches for the ReRAM simulator's hot kernels: the
//! unit-level bit-sliced pipeline, the array-level batch path, and
//! bit-slicing itself. These measure *simulator* throughput (how fast we
//! can simulate), not modeled hardware latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simpim_reram::bitslice::{slice_input, slice_operand};
use simpim_reram::{AccWidth, Crossbar, CrossbarConfig, PimArray, PimConfig};
use std::hint::black_box;

fn unit_level_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar/unit_level_dot");
    for &m in &[64usize, 256] {
        let cfg = CrossbarConfig {
            size: m,
            adc_bits: 14,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        let col: Vec<u64> = (0..m as u64).map(|i| i % 1024).collect();
        xb.program_operand_column(0, 0, &col, 10).unwrap();
        let query: Vec<u64> = (0..m as u64).map(|i| (i * 7) % 1024).collect();
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| xb.dot_products(0, black_box(&query), 10, 10).unwrap())
        });
    }
    group.finish();
}

fn array_level_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar/array_batch");
    for &n in &[1_000usize, 10_000] {
        let cfg = PimConfig::default();
        let mut pim = PimArray::new(cfg).unwrap();
        let s = 128usize;
        let flat: Vec<u32> = (0..n * s).map(|i| (i % 1_000_000) as u32).collect();
        let rep = pim.program_region(&flat, n, s, 32).unwrap();
        let query: Vec<u32> = (0..s).map(|i| (i * 7919 % 1_000_000) as u32).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                pim.dot_batch(rep.region, black_box(&query), AccWidth::U64)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bit_slicing(c: &mut Criterion) {
    c.bench_function("crossbar/slice_operand_32b_on_2b", |b| {
        b.iter(|| slice_operand(black_box(987_654), 32, 2).unwrap())
    });
    c.bench_function("crossbar/slice_input_20b_dac2", |b| {
        b.iter(|| slice_input(black_box(987_654), 20, 2).unwrap())
    });
}

criterion_group!(benches, unit_level_pipeline, array_level_batch, bit_slicing);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out. These are
//! model-quality studies (printed once per run) wrapped in Criterion so
//! `cargo bench` exercises them; the interesting output is the printed
//! tables, not the wall times.
//!
//! * **α sweep** — Theorem 3: bound tightness / pruning vs α.
//! * **crossbar geometry** — Theorem 4's `s` and the modeled batch latency
//!   across m × h configurations.
//! * **gather tree vs host aggregation** — what the all-ones gather tree
//!   buys over shipping partials to the CPU.
//! * **planner** — exhaustive 2^L vs greedy plan quality.

use criterion::{criterion_group, criterion_main, Criterion};
use simpim_bounds::BoundStage;
use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_core::planner::{CandidateBound, Planner};
use simpim_core::stage::PimFnnStage;
use simpim_core::{choose_dimensionality, PruningProfile};
use simpim_datasets::{generate, sample_queries, SyntheticConfig};
use simpim_reram::{CrossbarConfig, PimConfig};
use simpim_similarity::{Measure, NormalizedDataset};
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn workload() -> (simpim_similarity::Dataset, Vec<Vec<f64>>) {
    let ds = generate(&SyntheticConfig {
        n: 3_000,
        d: 420,
        clusters: 16,
        cluster_std: 0.05,
        stat_uniformity: 0.05,
        seed: 9,
    });
    let qs = sample_queries(&ds, 3, 0.02, 10);
    (ds, qs)
}

fn ablation_tables() {
    let (ds, qs) = workload();
    let nds = NormalizedDataset::assert_normalized(ds.clone());

    // α sweep (Theorem 3).
    println!("\n--- ablation: α sweep (LB_PIM-FNN^105, MSD-shaped) ---");
    println!(
        "{:>10} {:>12} {:>12}",
        "alpha", "error bound", "prune ratio"
    );
    for alpha in [1e1, 1e2, 1e3, 1e4, 1e6] {
        let stage = PimFnnStage::build(&nds, 105, alpha).unwrap();
        let r = PruningProfile::measure(&[&stage], &ds, &qs, 10, Measure::EuclideanSq).unwrap()[0];
        println!(
            "{:>10.0} {:>12.4} {:>11.1}%",
            alpha,
            simpim_core::pim_bounds::error_bound_fnn(ds.dim(), alpha),
            r * 100.0
        );
    }

    // Crossbar geometry (Theorem 4 + batch latency).
    println!("\n--- ablation: crossbar geometry (N=3000, d=420, b=32, C=1311) ---");
    println!(
        "{:>6} {:>4} {:>8} {:>12} {:>14}",
        "m", "h", "s", "crossbars", "batch ns"
    );
    for (m, h) in [
        (64usize, 2u32),
        (128, 2),
        (256, 2),
        (512, 2),
        (256, 1),
        (256, 4),
    ] {
        let cfg = PimConfig {
            crossbar: CrossbarConfig {
                size: m,
                cell_bits: h,
                adc_bits: (2 + 2 + (m as f64).log2().ceil() as u32).max(5),
                ..Default::default()
            },
            num_crossbars: 1311,
            ..Default::default()
        };
        match choose_dimensionality(3_000, 420, 4, 32, &cfg) {
            Ok(plan) => {
                let exec_cfg = ExecutorConfig {
                    pim: cfg,
                    ..Default::default()
                };
                match PimExecutor::prepare_fnn(exec_cfg, &nds, plan.s) {
                    Ok(mut exec) => {
                        let batch = exec.lb_ed_batch(&qs[0]).unwrap();
                        println!(
                            "{:>6} {:>4} {:>8} {:>12} {:>14.0}",
                            m,
                            h,
                            plan.s,
                            plan.total_crossbars(),
                            batch.timing.total_ns()
                        );
                    }
                    Err(e) => println!("{m:>6} {h:>4} {:>8} (executor: {e})", plan.s),
                }
            }
            Err(_) => println!("{m:>6} {h:>4}   does not fit"),
        }
    }

    // Gather tree vs host aggregation (Trevi-like d ≫ m).
    println!("\n--- ablation: gather tree vs host aggregation (d=4096, m=256) ---");
    let wide = generate(&SyntheticConfig {
        n: 500,
        d: 4096,
        clusters: 8,
        cluster_std: 0.05,
        stat_uniformity: 0.1,
        seed: 11,
    });
    let wide_nds = NormalizedDataset::assert_normalized(wide.clone());
    let cfg = ExecutorConfig::default();
    let mut exec = PimExecutor::prepare_euclidean(cfg, &wide_nds).unwrap();
    let q: Vec<f64> = wide.row(0).to_vec();
    let batch = exec.lb_ed_batch(&q).unwrap();
    let chunks = 4096usize.div_ceil(256);
    // Host aggregation would ship `chunks` partials per object instead of 1.
    let host_extra_bytes = (wide.len() * (chunks - 1) * 8) as u64;
    let host_extra_ns = simpim_bench::params().stream_time_ns(host_extra_bytes);
    println!(
        "gather tree : {:>10.0} ns PIM-side (gather {:.0} ns)",
        batch.timing.total_ns(),
        batch.timing.gather_ns
    );
    println!(
        "host aggregation alternative: +{:.0} ns of extra host transfer ({} partials/object)",
        host_extra_ns, chunks
    );

    // Mean-only LB_PIM-SM^{2s} vs µ/σ LB_PIM-FNN^{s}: equal crossbar
    // budget (SM needs one region, FNN two) — which prunes better?
    println!("\n--- ablation: SM^2s (1 region) vs FNN^s (2 regions), equal budget ---");
    println!(
        "{:>18} {:>12} {:>14}",
        "bound", "prune ratio", "bytes/object"
    );
    for (name, ratio, bytes) in [
        {
            let st = simpim_core::stage::PimSmStage::build(&nds, 210, 1e6).unwrap();
            let r = PruningProfile::measure(&[&st], &ds, &qs, 10, Measure::EuclideanSq).unwrap()[0];
            ("LB_PIM-SM^210", r, st.transfer_bytes_per_object())
        },
        {
            let st = PimFnnStage::build(&nds, 105, 1e6).unwrap();
            let r = PruningProfile::measure(&[&st], &ds, &qs, 10, Measure::EuclideanSq).unwrap()[0];
            ("LB_PIM-FNN^105", r, st.transfer_bytes_per_object())
        },
    ] {
        println!("{name:>18} {:>11.1}% {bytes:>14}", ratio * 100.0);
    }

    // Parallel vs serial region execution, and serial-sum vs pipelined
    // end-to-end accounting.
    println!("\n--- ablation: region parallelism & CPU/PIM pipelining ---");
    {
        use simpim_mining::knn::pim::knn_pim_ed;
        use simpim_mining::knn::standard::knn_standard;
        let params = simpim_bench::params();
        for parallel in [true, false] {
            let cfg = ExecutorConfig {
                pim: PimConfig {
                    num_crossbars: 1311,
                    ..Default::default()
                },
                parallel_regions: parallel,
                ..Default::default()
            };
            // Force the two-region µ/σ bound so region parallelism has
            // something to overlap.
            let mut exec = PimExecutor::prepare_fnn(cfg, &nds, 105).unwrap();
            let res = knn_pim_ed(
                &mut exec,
                &ds,
                &simpim_bounds::BoundCascade::empty(),
                &qs[0],
                10,
            )
            .unwrap();
            println!(
                "regions {}: PIM {:.0} ns | serial-sum {:.0} ns | pipelined {:.0} ns",
                if parallel { "parallel" } else { "serial  " },
                res.report.pim.total_ns(),
                res.report.total_ns(&params),
                res.report.total_ns_pipelined(&params),
            );
        }
        let base = knn_standard(&ds, &qs[0], 10, simpim_similarity::Measure::EuclideanSq).unwrap();
        println!("baseline Standard: {:.0} ns", base.report.total_ns(&params));
    }

    // Planner: exhaustive vs greedy.
    println!("\n--- ablation: plan enumeration, exhaustive 2^L vs greedy ---");
    let planner = Planner {
        refine_bytes_per_object: 420 * 8,
        n: 1_000_000,
    };
    let cands = vec![
        CandidateBound {
            name: "LB_FNN^6".into(),
            transfer_bytes: 96,
            pruning_ratio: 0.55,
            is_pim: false,
        },
        CandidateBound {
            name: "LB_FNN^28".into(),
            transfer_bytes: 448,
            pruning_ratio: 0.95,
            is_pim: false,
        },
        CandidateBound {
            name: "LB_FNN^105".into(),
            transfer_bytes: 1680,
            pruning_ratio: 0.985,
            is_pim: false,
        },
        CandidateBound {
            name: "LB_PIM-FNN^105".into(),
            transfer_bytes: 24,
            pruning_ratio: 0.98,
            is_pim: true,
        },
    ];
    let best = planner.best_plan(&cands);
    // Greedy: add bounds in cost order while they improve.
    let mut greedy: Vec<usize> = Vec::new();
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by_key(|&i| cands[i].transfer_bytes);
    for i in order {
        let mut trial = greedy.clone();
        trial.push(i);
        if planner.plan_cost(&cands, &trial) < planner.plan_cost(&cands, &greedy) {
            greedy = trial;
        }
    }
    println!(
        "exhaustive: {:?} → {:.2} MB",
        best.names,
        best.estimated_bytes / 1e6
    );
    println!(
        "greedy    : {:?} → {:.2} MB",
        greedy
            .iter()
            .map(|&i| cands[i].name.clone())
            .collect::<Vec<_>>(),
        planner.plan_cost(&cands, &greedy) / 1e6
    );
}

fn ablations(c: &mut Criterion) {
    PRINT_ONCE.call_once(ablation_tables);
    // Keep a measurable kernel so Criterion has something to time.
    let (ds, qs) = workload();
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let stage = PimFnnStage::build(&nds, 105, 1e6).unwrap();
    c.bench_function("ablations/pim_fnn_host_eval_3k", |b| {
        let prep = stage.prepare(&qs[0]);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..ds.len() {
                acc += prep.bound(black_box(i));
            }
            acc
        })
    });
}

criterion_group!(benches, ablations);
criterion_main!(benches);

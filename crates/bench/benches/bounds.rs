//! Criterion micro-benches for the bound kernels vs exact distances: how
//! much host-side arithmetic a bound evaluation actually saves, per
//! object, at MSD-like dimensionality.

use criterion::{criterion_group, criterion_main, Criterion};
use simpim_bounds::{BoundStage, FnnBound, OstBound, SmBound};
use simpim_core::stage::PimFnnStage;
use simpim_datasets::{generate, SyntheticConfig};
use simpim_similarity::{measures, NormalizedDataset};
use std::hint::black_box;

fn bound_evaluation(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig {
        n: 4_000,
        d: 420,
        clusters: 16,
        cluster_std: 0.05,
        stat_uniformity: 0.05,
        seed: 5,
    });
    let nds = NormalizedDataset::assert_normalized(ds.clone());
    let query: Vec<f64> = ds.row(0).to_vec();

    let mut group = c.benchmark_group("bounds/per_4k_objects");
    group.bench_function("exact_ED", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in ds.rows() {
                acc += measures::euclidean_sq(row, black_box(&query));
            }
            acc
        })
    });

    let ost = OstBound::build(&ds, 210).unwrap();
    let sm = SmBound::build(&ds, 105).unwrap();
    let fnn = FnnBound::build(&ds, 105).unwrap();
    let pim = PimFnnStage::build(&nds, 105, 1e6).unwrap();
    let stages: Vec<(&str, &dyn BoundStage)> = vec![
        ("LB_OST", &ost),
        ("LB_SM", &sm),
        ("LB_FNN", &fnn),
        ("LB_PIM-FNN(host)", &pim),
    ];
    for (name, stage) in stages {
        group.bench_function(name, |b| {
            let prep = stage.prepare(&query);
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..ds.len() {
                    acc += prep.bound(black_box(i));
                }
                acc
            })
        });
    }
    group.finish();
}

fn quantization(c: &mut Criterion) {
    let ds = generate(&SyntheticConfig {
        n: 1,
        d: 420,
        clusters: 1,
        cluster_std: 0.05,
        stat_uniformity: 0.0,
        seed: 6,
    });
    let q = simpim_similarity::Quantizer::identity(1e6).unwrap();
    let row: Vec<f64> = ds.row(0).to_vec();
    c.bench_function("bounds/quantize_vec_420d", |b| {
        b.iter(|| q.quantize_vec(black_box(&row)).unwrap())
    });
    c.bench_function("bounds/fnn_quant_105seg", |b| {
        b.iter(|| simpim_core::pim_bounds::FnnQuant::compute(black_box(&row), 105, 1e6).unwrap())
    });
}

criterion_group!(benches, bound_evaluation, quantization);
criterion_main!(benches);

//! x86_64 backends: AVX2 (4×f64 / 4×u64 per register) and SSE2 (two
//! 2-wide registers emulating the same 4 lanes).
//!
//! Bit-identity with [`crate::scalar`] holds because every kernel keeps
//! the scalar layout's 4 accumulator lanes, performs the identical
//! per-lane IEEE-754 operations (`mul` then `add` — **never** FMA, whose
//! single rounding would diverge), folds the lanes in the same
//! `(l0 + l1) + (l2 + l3)` order, and finishes the ragged tail through
//! the shared [`scalar::fold_tail`] helper. Packed `mulpd`/`addpd`/
//! `subpd` have exactly the scalar instructions' per-lane semantics;
//! Rust never enables FTZ/DAZ, so subnormals round identically too. The
//! popcount MACs are exact integer counting and trivially identical.
//!
//! One deliberate carve-out: when several distinct NaNs collide in one
//! reduction, *which* payload survives depends on operand order, and
//! Rust/LLVM document NaN bit patterns as non-deterministic (`fmul`/
//! `fadd` may be commuted differently for scalar vs packed codegen). The
//! contract is therefore NaN ⇔ NaN, with exact bits for every non-NaN
//! result — which covers all real distance data.
//!
//! # Safety
//! Every function here is `#[target_feature]`-gated and `unsafe`: the
//! dispatcher in `lib.rs` installs a function only after
//! `is_x86_feature_detected!` confirmed the feature at startup.

#![cfg(target_arch = "x86_64")]

use crate::scalar::{self, fold_tail};

/// AVX2 kernels: one ymm register holds all four accumulator lanes.
pub mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Dot product with the 4-lane layout in one ymm accumulator.
    ///
    /// # Safety
    /// Requires AVX2 (detected at dispatch time).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let blocks = a.len() / 4;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_pd();
        for i in 0..blocks {
            let va = _mm256_loadu_pd(pa.add(4 * i));
            let vb = _mm256_loadu_pd(pb.add(4 * i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        }
        fold4(acc, &a[4 * blocks..], &b[4 * blocks..], |x, y| x * y)
    }

    /// Squared L2 norm: [`dot`] with both operands the same slice.
    ///
    /// # Safety
    /// Requires AVX2 (detected at dispatch time).
    #[target_feature(enable = "avx2")]
    pub unsafe fn norm_sq(xs: &[f64]) -> f64 {
        dot(xs, xs)
    }

    /// Squared Euclidean distance: per-lane `sub`, `mul`, `add`.
    ///
    /// # Safety
    /// Requires AVX2 (detected at dispatch time).
    #[target_feature(enable = "avx2")]
    pub unsafe fn euclidean_sq(p: &[f64], q: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), q.len());
        let blocks = p.len() / 4;
        let (pp, pq) = (p.as_ptr(), q.as_ptr());
        let mut acc = _mm256_setzero_pd();
        for i in 0..blocks {
            let d = _mm256_sub_pd(
                _mm256_loadu_pd(pp.add(4 * i)),
                _mm256_loadu_pd(pq.add(4 * i)),
            );
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        fold4(acc, &p[4 * blocks..], &q[4 * blocks..], |x, y| {
            let d = x - y;
            d * d
        })
    }

    /// Fused `(dot(a, b), norm_sq(a))`: two ymm accumulators, one pass.
    ///
    /// # Safety
    /// Requires AVX2 (detected at dispatch time).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_norm_sq(a: &[f64], b: &[f64]) -> (f64, f64) {
        debug_assert_eq!(a.len(), b.len());
        let blocks = a.len() / 4;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut accd = _mm256_setzero_pd();
        let mut accn = _mm256_setzero_pd();
        for i in 0..blocks {
            let va = _mm256_loadu_pd(pa.add(4 * i));
            let vb = _mm256_loadu_pd(pb.add(4 * i));
            accd = _mm256_add_pd(accd, _mm256_mul_pd(va, vb));
            accn = _mm256_add_pd(accn, _mm256_mul_pd(va, va));
        }
        let ta = &a[4 * blocks..];
        let tb = &b[4 * blocks..];
        (
            fold4(accd, ta, tb, |x, y| x * y),
            fold4(accn, ta, ta, |x, y| x * y),
        )
    }

    /// Spills the ymm lanes and finishes with the canonical fold + tail.
    #[inline(always)]
    unsafe fn fold4(acc: __m256d, ta: &[f64], tb: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        fold_tail((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]), ta, tb, f)
    }

    /// Per-64-bit-element popcount of a ymm register via the Mula nibble
    /// LUT: `pshufb` looks up each nibble's population count, `psadbw`
    /// horizontally sums the byte counts into the four u64 lanes.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_epi64(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn popcount_mac(a: &[u64], b: &[u64], xor: bool) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let blocks = a.len() / 4;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        for i in 0..blocks {
            let va = _mm256_loadu_si256(pa.add(4 * i).cast());
            let vb = _mm256_loadu_si256(pb.add(4 * i).cast());
            let m = if xor {
                _mm256_xor_si256(va, vb)
            } else {
                _mm256_and_si256(va, vb)
            };
            acc = _mm256_add_epi64(acc, popcount_epi64(m));
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for (&x, &y) in a[4 * blocks..].iter().zip(&b[4 * blocks..]) {
            let m = if xor { x ^ y } else { x & y };
            total += u64::from(m.count_ones());
        }
        total
    }

    /// Hamming MAC `Σ popcount(aᵢ XOR bᵢ)`.
    ///
    /// # Safety
    /// Requires AVX2 (detected at dispatch time).
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
        popcount_mac(a, b, true)
    }

    /// Bit-serial MAC `Σ popcount(aᵢ AND bᵢ)`.
    ///
    /// # Safety
    /// Requires AVX2 (detected at dispatch time).
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
        popcount_mac(a, b, false)
    }
}

/// SSE2 kernels: two xmm registers carry lanes `{0,1}` and `{2,3}` of the
/// canonical 4-lane layout. SSE2 is baseline on x86_64, so this tier
/// always exists; it mainly serves as the forced mid-tier for the bench
/// trajectory and as the fallback on pre-AVX2 silicon.
pub mod sse2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Dot product over lanes `{0,1}` + `{2,3}` in two xmm accumulators.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let blocks = a.len() / 4;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for i in 0..blocks {
            acc01 = _mm_add_pd(
                acc01,
                _mm_mul_pd(_mm_loadu_pd(pa.add(4 * i)), _mm_loadu_pd(pb.add(4 * i))),
            );
            acc23 = _mm_add_pd(
                acc23,
                _mm_mul_pd(
                    _mm_loadu_pd(pa.add(4 * i + 2)),
                    _mm_loadu_pd(pb.add(4 * i + 2)),
                ),
            );
        }
        fold2x2(acc01, acc23, &a[4 * blocks..], &b[4 * blocks..], |x, y| {
            x * y
        })
    }

    /// Squared L2 norm: [`dot`] with both operands the same slice.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn norm_sq(xs: &[f64]) -> f64 {
        dot(xs, xs)
    }

    /// Squared Euclidean distance: per-lane `sub`, `mul`, `add`.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn euclidean_sq(p: &[f64], q: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), q.len());
        let blocks = p.len() / 4;
        let (pp, pq) = (p.as_ptr(), q.as_ptr());
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for i in 0..blocks {
            let d01 = _mm_sub_pd(_mm_loadu_pd(pp.add(4 * i)), _mm_loadu_pd(pq.add(4 * i)));
            let d23 = _mm_sub_pd(
                _mm_loadu_pd(pp.add(4 * i + 2)),
                _mm_loadu_pd(pq.add(4 * i + 2)),
            );
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
        }
        fold2x2(acc01, acc23, &p[4 * blocks..], &q[4 * blocks..], |x, y| {
            let d = x - y;
            d * d
        })
    }

    /// Fused `(dot(a, b), norm_sq(a))` in four xmm accumulators.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_norm_sq(a: &[f64], b: &[f64]) -> (f64, f64) {
        debug_assert_eq!(a.len(), b.len());
        let blocks = a.len() / 4;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut d01 = _mm_setzero_pd();
        let mut d23 = _mm_setzero_pd();
        let mut n01 = _mm_setzero_pd();
        let mut n23 = _mm_setzero_pd();
        for i in 0..blocks {
            let va01 = _mm_loadu_pd(pa.add(4 * i));
            let va23 = _mm_loadu_pd(pa.add(4 * i + 2));
            let vb01 = _mm_loadu_pd(pb.add(4 * i));
            let vb23 = _mm_loadu_pd(pb.add(4 * i + 2));
            d01 = _mm_add_pd(d01, _mm_mul_pd(va01, vb01));
            d23 = _mm_add_pd(d23, _mm_mul_pd(va23, vb23));
            n01 = _mm_add_pd(n01, _mm_mul_pd(va01, va01));
            n23 = _mm_add_pd(n23, _mm_mul_pd(va23, va23));
        }
        let ta = &a[4 * blocks..];
        let tb = &b[4 * blocks..];
        (
            fold2x2(d01, d23, ta, tb, |x, y| x * y),
            fold2x2(n01, n23, ta, ta, |x, y| x * y),
        )
    }

    /// Spills lane pairs `{0,1}` / `{2,3}` and finishes with the
    /// canonical `(l0 + l1) + (l2 + l3)` fold plus the shared tail.
    #[inline(always)]
    unsafe fn fold2x2(
        acc01: __m128d,
        acc23: __m128d,
        ta: &[f64],
        tb: &[f64],
        f: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        let mut l01 = [0.0f64; 2];
        let mut l23 = [0.0f64; 2];
        _mm_storeu_pd(l01.as_mut_ptr(), acc01);
        _mm_storeu_pd(l23.as_mut_ptr(), acc23);
        fold_tail((l01[0] + l01[1]) + (l23[0] + l23[1]), ta, tb, f)
    }
}

/// Hamming MAC using the hardware `popcnt` instruction, unrolled 4-wide.
/// Exact integer counting — bit-identical to the scalar reference.
///
/// # Safety
/// Requires POPCNT (detected independently of SSE2/AVX2 at dispatch
/// time; the SSE2 tier falls back to [`scalar::xor_popcount`] without it).
#[target_feature(enable = "popcnt")]
pub unsafe fn xor_popcount_popcnt(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 4;
    let mut t0 = 0u64;
    let mut t1 = 0u64;
    let mut t2 = 0u64;
    let mut t3 = 0u64;
    for i in 0..blocks {
        t0 += u64::from((a[4 * i] ^ b[4 * i]).count_ones());
        t1 += u64::from((a[4 * i + 1] ^ b[4 * i + 1]).count_ones());
        t2 += u64::from((a[4 * i + 2] ^ b[4 * i + 2]).count_ones());
        t3 += u64::from((a[4 * i + 3] ^ b[4 * i + 3]).count_ones());
    }
    t0 + t1 + t2 + t3 + scalar::xor_popcount(&a[4 * blocks..], &b[4 * blocks..])
}

/// Bit-serial MAC using the hardware `popcnt` instruction.
///
/// # Safety
/// Requires POPCNT (see [`xor_popcount_popcnt`]).
#[target_feature(enable = "popcnt")]
pub unsafe fn and_popcount_popcnt(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 4;
    let mut t0 = 0u64;
    let mut t1 = 0u64;
    let mut t2 = 0u64;
    let mut t3 = 0u64;
    for i in 0..blocks {
        t0 += u64::from((a[4 * i] & b[4 * i]).count_ones());
        t1 += u64::from((a[4 * i + 1] & b[4 * i + 1]).count_ones());
        t2 += u64::from((a[4 * i + 2] & b[4 * i + 2]).count_ones());
        t3 += u64::from((a[4 * i + 3] & b[4 * i + 3]).count_ones());
    }
    t0 + t1 + t2 + t3 + scalar::and_popcount(&a[4 * blocks..], &b[4 * blocks..])
}

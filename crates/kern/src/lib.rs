//! Runtime-dispatched SIMD distance kernels.
//!
//! The paper's speedups come from wide in-situ MACs; a credible host
//! baseline has to be vectorized too, or every reported PIM speedup is
//! inflated. This crate owns the workspace's distance inner loops — f64
//! `dot` / `norm_sq` / fused dot+norm / squared Euclidean, and the packed
//! u64 popcount MACs behind Hamming distance and the bit-sliced crossbar
//! model — as a [`KernelBackend`] vtable selected **once** at startup:
//!
//! * `x86_64`: AVX2 (4×f64 per register, Mula `pshufb` popcount) when
//!   `is_x86_feature_detected!("avx2")`, else SSE2 (baseline, two 2-wide
//!   registers; hardware `popcnt` when detected).
//! * `aarch64`: NEON when `is_aarch64_feature_detected!("neon")`.
//! * everything else: the portable chunked [`scalar`] kernels.
//!
//! **Bit-identity is the contract.** Every backend reproduces the scalar
//! kernels' exact operation sequence: 4 accumulator lanes over 4-element
//! blocks, per-lane `mul` then `add` (never FMA), the `(l0+l1)+(l2+l3)`
//! fold, and one shared serial tail ([`scalar::fold_tail`]). Packed IEEE
//! ops have identical per-lane semantics to their scalar forms — NaN
//! payloads, signed zeros and subnormals included — so a dispatched
//! result is the same *bits* as the scalar result, which in turn keeps
//! results invariant across machines, thread counts (`simpim-par` chunks
//! never change), and `SIMPIM_KERNEL` settings. The proptest suite in
//! `tests/kernels.rs` enforces this.
//!
//! Selection order: [`set_backend_override`] / [`with_backend`] (tests,
//! benches) > the `SIMPIM_KERNEL` environment variable
//! (`auto|scalar|sse2|avx2|neon`) > best detected. A forced backend the
//! CPU cannot run degrades to `scalar` with a warning rather than
//! faulting. The active backend is exported as the
//! `simpim.kern.backend` gauge (via [`publish_metrics`]) and recorded in
//! every `BENCH_*.json` artifact's config section.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Re-export of the canonical lane count (4) of the chunked layout.
pub use scalar::LANES;

/// Identifies one kernel backend tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable chunked Rust — the reference, available everywhere.
    Scalar,
    /// x86_64 baseline: two 2×f64 registers per lane set (+ `popcnt`
    /// MACs when the CPU has the instruction).
    Sse2,
    /// x86_64 AVX2: one 4×f64 register per lane set, `pshufb` popcount.
    Avx2,
    /// aarch64 NEON: two 2×f64 registers, `cnt`/`addlv` popcount.
    Neon,
}

impl Backend {
    /// All tiers, in ascending capability order.
    pub const ALL: [Backend; 4] = [Backend::Scalar, Backend::Sse2, Backend::Avx2, Backend::Neon];

    /// Stable lowercase name, as accepted by `SIMPIM_KERNEL` and stamped
    /// into artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Numeric code for the `simpim.kern.backend` gauge (scalar=0,
    /// sse2=1, avx2=2, neon=3).
    pub fn code(self) -> u8 {
        match self {
            Backend::Scalar => 0,
            Backend::Sse2 => 1,
            Backend::Avx2 => 2,
            Backend::Neon => 3,
        }
    }

    fn from_code(code: u8) -> Backend {
        match code {
            1 => Backend::Sse2,
            2 => Backend::Avx2,
            3 => Backend::Neon,
            _ => Backend::Scalar,
        }
    }

    /// Parses a `SIMPIM_KERNEL` value. `Some(None)` means `auto`
    /// (detect), `None` means unrecognized.
    pub fn parse(s: &str) -> Option<Option<Backend>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Some(None),
            "scalar" => Some(Some(Backend::Scalar)),
            "sse2" => Some(Some(Backend::Sse2)),
            "avx2" => Some(Some(Backend::Avx2)),
            "neon" => Some(Some(Backend::Neon)),
            _ => None,
        }
    }

    /// `true` when the running CPU can execute this tier.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

/// The dispatched kernel table: plain function pointers, one indirect
/// call per kernel invocation, resolved once per backend.
#[derive(Clone, Copy)]
pub struct KernelBackend {
    /// Which tier these pointers implement.
    pub backend: Backend,
    /// Dot product `Σ aᵢ·bᵢ`.
    pub dot: fn(&[f64], &[f64]) -> f64,
    /// Squared L2 norm `Σ xᵢ²`.
    pub norm_sq: fn(&[f64]) -> f64,
    /// Fused `(dot(a, b), norm_sq(a))` in one pass over `a`.
    pub dot_norm_sq: fn(&[f64], &[f64]) -> (f64, f64),
    /// Squared Euclidean distance `Σ (pᵢ − qᵢ)²`.
    pub euclidean_sq: fn(&[f64], &[f64]) -> f64,
    /// Hamming MAC `Σ popcount(aᵢ XOR bᵢ)` over packed u64 words.
    pub xor_popcount: fn(&[u64], &[u64]) -> u64,
    /// Bit-serial MAC `Σ popcount(aᵢ AND bᵢ)` over packed u64 words.
    pub and_popcount: fn(&[u64], &[u64]) -> u64,
}

impl std::fmt::Debug for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelBackend")
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

const SCALAR_TABLE: KernelBackend = KernelBackend {
    backend: Backend::Scalar,
    dot: scalar::dot,
    norm_sq: scalar::norm_sq,
    dot_norm_sq: scalar::dot_norm_sq,
    euclidean_sq: scalar::euclidean_sq,
    xor_popcount: scalar::xor_popcount,
    and_popcount: scalar::and_popcount,
};

// Safe trampolines: each is installed in a table only after the matching
// CPU feature was detected, which is exactly the precondition the
// `unsafe` target-feature functions document.
#[cfg(target_arch = "x86_64")]
mod x86_dispatch {
    use super::x86;

    macro_rules! trampoline {
        ($name:ident, $path:path, ($($arg:ident: $ty:ty),+) -> $ret:ty) => {
            pub fn $name($($arg: $ty),+) -> $ret {
                // Safety: installed only after feature detection.
                unsafe { $path($($arg),+) }
            }
        };
    }

    trampoline!(dot_avx2, x86::avx2::dot, (a: &[f64], b: &[f64]) -> f64);
    trampoline!(norm_sq_avx2, x86::avx2::norm_sq, (xs: &[f64]) -> f64);
    trampoline!(dot_norm_sq_avx2, x86::avx2::dot_norm_sq, (a: &[f64], b: &[f64]) -> (f64, f64));
    trampoline!(euclidean_sq_avx2, x86::avx2::euclidean_sq, (p: &[f64], q: &[f64]) -> f64);
    trampoline!(xor_popcount_avx2, x86::avx2::xor_popcount, (a: &[u64], b: &[u64]) -> u64);
    trampoline!(and_popcount_avx2, x86::avx2::and_popcount, (a: &[u64], b: &[u64]) -> u64);

    trampoline!(dot_sse2, x86::sse2::dot, (a: &[f64], b: &[f64]) -> f64);
    trampoline!(norm_sq_sse2, x86::sse2::norm_sq, (xs: &[f64]) -> f64);
    trampoline!(dot_norm_sq_sse2, x86::sse2::dot_norm_sq, (a: &[f64], b: &[f64]) -> (f64, f64));
    trampoline!(euclidean_sq_sse2, x86::sse2::euclidean_sq, (p: &[f64], q: &[f64]) -> f64);
    trampoline!(xor_popcount_popcnt, x86::xor_popcount_popcnt, (a: &[u64], b: &[u64]) -> u64);
    trampoline!(and_popcount_popcnt, x86::and_popcount_popcnt, (a: &[u64], b: &[u64]) -> u64);
}

#[cfg(target_arch = "aarch64")]
mod neon_dispatch {
    use super::neon;

    macro_rules! trampoline {
        ($name:ident, $path:path, ($($arg:ident: $ty:ty),+) -> $ret:ty) => {
            pub fn $name($($arg: $ty),+) -> $ret {
                // Safety: installed only after feature detection.
                unsafe { $path($($arg),+) }
            }
        };
    }

    trampoline!(dot, neon::dot, (a: &[f64], b: &[f64]) -> f64);
    trampoline!(norm_sq, neon::norm_sq, (xs: &[f64]) -> f64);
    trampoline!(dot_norm_sq, neon::dot_norm_sq, (a: &[f64], b: &[f64]) -> (f64, f64));
    trampoline!(euclidean_sq, neon::euclidean_sq, (p: &[f64], q: &[f64]) -> f64);
    trampoline!(xor_popcount, neon::xor_popcount, (a: &[u64], b: &[u64]) -> u64);
    trampoline!(and_popcount, neon::and_popcount, (a: &[u64], b: &[u64]) -> u64);
}

/// Builds the vtable for a tier the running CPU supports.
fn table(b: Backend) -> KernelBackend {
    match b {
        Backend::Scalar => SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => {
            // `popcnt` postdates SSE2 silicon; detect it independently so
            // the mid tier still gets hardware popcount where available.
            let hw_popcnt = is_x86_feature_detected!("popcnt");
            KernelBackend {
                backend: Backend::Sse2,
                dot: x86_dispatch::dot_sse2,
                norm_sq: x86_dispatch::norm_sq_sse2,
                dot_norm_sq: x86_dispatch::dot_norm_sq_sse2,
                euclidean_sq: x86_dispatch::euclidean_sq_sse2,
                xor_popcount: if hw_popcnt {
                    x86_dispatch::xor_popcount_popcnt
                } else {
                    scalar::xor_popcount
                },
                and_popcount: if hw_popcnt {
                    x86_dispatch::and_popcount_popcnt
                } else {
                    scalar::and_popcount
                },
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => KernelBackend {
            backend: Backend::Avx2,
            dot: x86_dispatch::dot_avx2,
            norm_sq: x86_dispatch::norm_sq_avx2,
            dot_norm_sq: x86_dispatch::dot_norm_sq_avx2,
            euclidean_sq: x86_dispatch::euclidean_sq_avx2,
            xor_popcount: x86_dispatch::xor_popcount_avx2,
            and_popcount: x86_dispatch::and_popcount_avx2,
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => KernelBackend {
            backend: Backend::Neon,
            dot: neon_dispatch::dot,
            norm_sq: neon_dispatch::norm_sq,
            dot_norm_sq: neon_dispatch::dot_norm_sq,
            euclidean_sq: neon_dispatch::euclidean_sq,
            xor_popcount: neon_dispatch::xor_popcount,
            and_popcount: neon_dispatch::and_popcount,
        },
        #[allow(unreachable_patterns)]
        _ => SCALAR_TABLE,
    }
}

/// Best tier the running CPU supports, ignoring overrides.
pub fn detected_backend() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
        if is_x86_feature_detected!("sse2") {
            return Backend::Sse2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Backend::Neon;
        }
    }
    Backend::Scalar
}

/// 0 = no override; otherwise `backend.code() + 1`.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static WARNED: AtomicBool = AtomicBool::new(false);

fn warn_once(msg: &str) {
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!("warning: simpim-kern: {msg}");
    }
}

/// Clamps a requested tier to something the CPU can run. An unsupported
/// request degrades to `scalar` (always correct, and the honest answer
/// when the caller explicitly asked to leave `auto`).
fn normalize(b: Backend, origin: &str) -> Backend {
    if b.is_supported() {
        b
    } else {
        warn_once(&format!(
            "{origin} requested backend '{}' which this CPU cannot run; using 'scalar'",
            b.name()
        ));
        Backend::Scalar
    }
}

fn env_default() -> Backend {
    static ENV: OnceLock<Backend> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("SIMPIM_KERNEL") {
        Err(_) => detected_backend(),
        Ok(v) => match Backend::parse(&v) {
            Some(None) => detected_backend(),
            Some(Some(b)) => normalize(b, "SIMPIM_KERNEL"),
            None => {
                warn_once(&format!(
                    "SIMPIM_KERNEL='{v}' is not one of auto|scalar|sse2|avx2|neon; using auto"
                ));
                detected_backend()
            }
        },
    })
}

/// The backend every dispatched kernel call uses right now.
///
/// Priority: [`set_backend_override`] > `SIMPIM_KERNEL` > best detected.
pub fn backend() -> Backend {
    let ovr = BACKEND_OVERRIDE.load(Ordering::Relaxed);
    if ovr != 0 {
        return Backend::from_code(ovr - 1);
    }
    env_default()
}

/// Stable name of the active backend (`scalar|sse2|avx2|neon`), as
/// stamped into artifact config sections.
pub fn backend_name() -> &'static str {
    backend().name()
}

/// Programmatically pins the backend (`None` restores `SIMPIM_KERNEL` /
/// auto-detection). Unsupported tiers degrade to `scalar` with a
/// warning. Used by the bit-identity proptests and `kernel_sweep` to
/// compare tiers within one process without racing on the environment —
/// callers serialize exactly as they do for
/// `simpim_par::set_thread_override`.
pub fn set_backend_override(b: Option<Backend>) {
    let code = match b {
        None => 0,
        Some(b) => normalize(b, "override").code() + 1,
    };
    BACKEND_OVERRIDE.store(code, Ordering::Relaxed);
}

/// Runs `f` with the backend pinned to `b` (clamped to a supported
/// tier), restoring the previous override afterwards — even on panic,
/// via a drop guard.
pub fn with_backend<T>(b: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            BACKEND_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let code = normalize(b, "override").code() + 1;
    let _guard = Restore(BACKEND_OVERRIDE.swap(code, Ordering::Relaxed));
    f()
}

/// The active vtable. Tables are built once per tier and cached.
pub fn kernels() -> &'static KernelBackend {
    static TABLES: [OnceLock<KernelBackend>; 4] = [const { OnceLock::new() }; 4];
    let b = backend();
    TABLES[b.code() as usize].get_or_init(|| table(b))
}

/// Exports the active backend as the `simpim.kern.backend` gauge
/// (scalar=0, sse2=1, avx2=2, neon=3). Bench harnesses call this right
/// after resetting the metrics registry so the artifact snapshot carries
/// the backend that actually ran.
pub fn publish_metrics() {
    simpim_obs::metrics::gauge_set("simpim.kern.backend", f64::from(backend().code()));
}

/// Dispatched dot product `Σ aᵢ·bᵢ` — bit-identical to
/// [`scalar::dot`] on every backend.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    (kernels().dot)(a, b)
}

/// Dispatched squared L2 norm `Σ xᵢ²` — bit-identical to
/// [`scalar::norm_sq`] on every backend.
#[inline]
pub fn norm_sq(xs: &[f64]) -> f64 {
    (kernels().norm_sq)(xs)
}

/// Dispatched fused `(dot(a, b), norm_sq(a))` — bit-identical to
/// `(dot(a, b), norm_sq(a))` on every backend.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn dot_norm_sq(a: &[f64], b: &[f64]) -> (f64, f64) {
    (kernels().dot_norm_sq)(a, b)
}

/// Dispatched squared Euclidean distance `Σ (pᵢ − qᵢ)²` — bit-identical
/// to [`scalar::euclidean_sq`] on every backend.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn euclidean_sq(p: &[f64], q: &[f64]) -> f64 {
    (kernels().euclidean_sq)(p, q)
}

/// Dispatched Hamming MAC `Σ popcount(aᵢ XOR bᵢ)` — exact on every
/// backend.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
    (kernels().xor_popcount)(a, b)
}

/// Dispatched bit-serial MAC `Σ popcount(aᵢ AND bᵢ)` — exact on every
/// backend.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    (kernels().and_popcount)(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The override is process-global; tests that touch it serialize.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn vecs(len: usize) -> (Vec<f64>, Vec<f64>) {
        let a = (0..len).map(|i| (i as f64).sin() * 3.7 - 1.0).collect();
        let b = (0..len).map(|i| (i as f64).cos() * 2.3 + 0.5).collect();
        (a, b)
    }

    fn words(len: usize) -> (Vec<u64>, Vec<u64>) {
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        (
            (0..len).map(|_| next()).collect(),
            (0..len).map(|_| next()).collect(),
        )
    }

    #[test]
    fn every_supported_backend_is_bit_identical_to_scalar() {
        let _g = test_lock();
        for b in Backend::ALL {
            if !b.is_supported() {
                continue;
            }
            with_backend(b, || {
                assert_eq!(backend(), b);
                for len in 0..=4 * LANES + 3 {
                    let (x, y) = vecs(len);
                    let (w, v) = words(len);
                    assert_eq!(dot(&x, &y).to_bits(), scalar::dot(&x, &y).to_bits());
                    assert_eq!(norm_sq(&x).to_bits(), scalar::norm_sq(&x).to_bits());
                    let (d, n) = dot_norm_sq(&x, &y);
                    assert_eq!(d.to_bits(), scalar::dot(&x, &y).to_bits());
                    assert_eq!(n.to_bits(), scalar::norm_sq(&x).to_bits());
                    assert_eq!(
                        euclidean_sq(&x, &y).to_bits(),
                        scalar::euclidean_sq(&x, &y).to_bits()
                    );
                    assert_eq!(xor_popcount(&w, &v), scalar::xor_popcount(&w, &v));
                    assert_eq!(and_popcount(&w, &v), scalar::and_popcount(&w, &v));
                }
            });
        }
    }

    #[test]
    fn override_wins_and_restores() {
        let _g = test_lock();
        let ambient = backend();
        let inside = with_backend(Backend::Scalar, backend);
        assert_eq!(inside, Backend::Scalar);
        assert_eq!(backend(), ambient);
        set_backend_override(Some(Backend::Scalar));
        assert_eq!(backend(), Backend::Scalar);
        set_backend_override(None);
        assert_eq!(backend(), ambient);
    }

    #[test]
    fn parse_accepts_all_names() {
        assert_eq!(Backend::parse("auto"), Some(None));
        assert_eq!(Backend::parse(""), Some(None));
        assert_eq!(Backend::parse(" AVX2 "), Some(Some(Backend::Avx2)));
        assert_eq!(Backend::parse("scalar"), Some(Some(Backend::Scalar)));
        assert_eq!(Backend::parse("sse2"), Some(Some(Backend::Sse2)));
        assert_eq!(Backend::parse("neon"), Some(Some(Backend::Neon)));
        assert_eq!(Backend::parse("mmx"), None);
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(Some(b)));
            assert_eq!(Backend::from_code(b.code()), b);
        }
    }

    #[test]
    fn detected_backend_is_supported_and_tables_match() {
        let _g = test_lock();
        let b = detected_backend();
        assert!(b.is_supported());
        with_backend(b, || {
            assert_eq!(kernels().backend, b);
        });
        #[cfg(target_arch = "x86_64")]
        assert_ne!(b, Backend::Scalar, "x86_64 always has at least SSE2");
    }

    #[test]
    fn unsupported_override_degrades_to_scalar() {
        let _g = test_lock();
        // NEON can never be supported on x86_64 and vice versa; on other
        // arches every SIMD tier is unsupported. Pick a tier that is
        // foreign everywhere this test can run.
        #[cfg(target_arch = "x86_64")]
        let foreign = Backend::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Backend::Avx2;
        with_backend(foreign, || {
            assert_eq!(backend(), Backend::Scalar);
        });
    }

    #[test]
    fn metrics_gauge_reports_backend_code() {
        let _g = test_lock();
        with_backend(Backend::Scalar, || {
            simpim_obs::metrics::reset();
            publish_metrics();
            let snap = simpim_obs::metrics::snapshot();
            assert_eq!(snap.gauge("simpim.kern.backend"), Some(0.0));
        });
    }
}

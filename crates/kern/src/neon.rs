//! aarch64 NEON backend: two 2×f64 `float64x2_t` registers carry lanes
//! `{0,1}` and `{2,3}` of the canonical 4-lane layout, exactly like the
//! SSE2 tier on x86_64.
//!
//! Bit-identity with [`crate::scalar`] holds for the same reason as the
//! x86 backends: per-lane `fmul`/`fadd`/`fsub` (never the fused
//! `vfmaq_f64`, whose single rounding would diverge), the canonical
//! `(l0 + l1) + (l2 + l3)` fold, and the shared [`scalar::fold_tail`]
//! tail. AArch64's default FPCR has flush-to-zero disabled, matching
//! scalar Rust semantics. The popcount MAC uses `cnt` (per-byte
//! popcount) + `addlv` horizontal sums — exact integer counting.
//!
//! # Safety
//! All functions are `#[target_feature(enable = "neon")]`-gated and
//! installed by the dispatcher only after
//! `is_aarch64_feature_detected!("neon")`.

#![cfg(target_arch = "aarch64")]

use crate::scalar::{self, fold_tail};
use core::arch::aarch64::*;

/// Spills lane pairs `{0,1}` / `{2,3}` and finishes with the canonical
/// fold plus the shared tail. `vaddvq_f64` performs the single in-pair
/// add (`l0 + l1`) the scalar fold performs.
#[inline(always)]
unsafe fn fold2x2(
    acc01: float64x2_t,
    acc23: float64x2_t,
    ta: &[f64],
    tb: &[f64],
    f: impl Fn(f64, f64) -> f64,
) -> f64 {
    fold_tail(vaddvq_f64(acc01) + vaddvq_f64(acc23), ta, tb, f)
}

/// Dot product over lanes `{0,1}` + `{2,3}` in two NEON accumulators.
///
/// # Safety
/// Requires NEON (detected at dispatch time).
#[target_feature(enable = "neon")]
pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 4;
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    for i in 0..blocks {
        acc01 = vaddq_f64(
            acc01,
            vmulq_f64(vld1q_f64(pa.add(4 * i)), vld1q_f64(pb.add(4 * i))),
        );
        acc23 = vaddq_f64(
            acc23,
            vmulq_f64(vld1q_f64(pa.add(4 * i + 2)), vld1q_f64(pb.add(4 * i + 2))),
        );
    }
    fold2x2(acc01, acc23, &a[4 * blocks..], &b[4 * blocks..], |x, y| {
        x * y
    })
}

/// Squared L2 norm: [`dot`] with both operands the same slice.
///
/// # Safety
/// Requires NEON (detected at dispatch time).
#[target_feature(enable = "neon")]
pub unsafe fn norm_sq(xs: &[f64]) -> f64 {
    dot(xs, xs)
}

/// Squared Euclidean distance: per-lane `sub`, `mul`, `add`.
///
/// # Safety
/// Requires NEON (detected at dispatch time).
#[target_feature(enable = "neon")]
pub unsafe fn euclidean_sq(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let blocks = p.len() / 4;
    let (pp, pq) = (p.as_ptr(), q.as_ptr());
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    for i in 0..blocks {
        let d01 = vsubq_f64(vld1q_f64(pp.add(4 * i)), vld1q_f64(pq.add(4 * i)));
        let d23 = vsubq_f64(vld1q_f64(pp.add(4 * i + 2)), vld1q_f64(pq.add(4 * i + 2)));
        acc01 = vaddq_f64(acc01, vmulq_f64(d01, d01));
        acc23 = vaddq_f64(acc23, vmulq_f64(d23, d23));
    }
    fold2x2(acc01, acc23, &p[4 * blocks..], &q[4 * blocks..], |x, y| {
        let d = x - y;
        d * d
    })
}

/// Fused `(dot(a, b), norm_sq(a))` in four NEON accumulators.
///
/// # Safety
/// Requires NEON (detected at dispatch time).
#[target_feature(enable = "neon")]
pub unsafe fn dot_norm_sq(a: &[f64], b: &[f64]) -> (f64, f64) {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 4;
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut d01 = vdupq_n_f64(0.0);
    let mut d23 = vdupq_n_f64(0.0);
    let mut n01 = vdupq_n_f64(0.0);
    let mut n23 = vdupq_n_f64(0.0);
    for i in 0..blocks {
        let va01 = vld1q_f64(pa.add(4 * i));
        let va23 = vld1q_f64(pa.add(4 * i + 2));
        let vb01 = vld1q_f64(pb.add(4 * i));
        let vb23 = vld1q_f64(pb.add(4 * i + 2));
        d01 = vaddq_f64(d01, vmulq_f64(va01, vb01));
        d23 = vaddq_f64(d23, vmulq_f64(va23, vb23));
        n01 = vaddq_f64(n01, vmulq_f64(va01, va01));
        n23 = vaddq_f64(n23, vmulq_f64(va23, va23));
    }
    let ta = &a[4 * blocks..];
    let tb = &b[4 * blocks..];
    (
        fold2x2(d01, d23, ta, tb, |x, y| x * y),
        fold2x2(n01, n23, ta, ta, |x, y| x * y),
    )
}

#[inline(always)]
unsafe fn popcount_mac(a: &[u64], b: &[u64], xor: bool) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 2;
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut total = 0u64;
    for i in 0..blocks {
        let va = vld1q_u64(pa.add(2 * i));
        let vb = vld1q_u64(pb.add(2 * i));
        let m = if xor {
            veorq_u64(va, vb)
        } else {
            vandq_u64(va, vb)
        };
        total += u64::from(vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(m))));
    }
    let tail = if xor {
        scalar::xor_popcount(&a[2 * blocks..], &b[2 * blocks..])
    } else {
        scalar::and_popcount(&a[2 * blocks..], &b[2 * blocks..])
    };
    total + tail
}

/// Hamming MAC `Σ popcount(aᵢ XOR bᵢ)` via `cnt`/`addlv`.
///
/// # Safety
/// Requires NEON (detected at dispatch time).
#[target_feature(enable = "neon")]
pub unsafe fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
    popcount_mac(a, b, true)
}

/// Bit-serial MAC `Σ popcount(aᵢ AND bᵢ)` via `cnt`/`addlv`.
///
/// # Safety
/// Requires NEON (detected at dispatch time).
#[target_feature(enable = "neon")]
pub unsafe fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    popcount_mac(a, b, false)
}

//! Portable chunked reference kernels.
//!
//! These are the workspace's canonical distance kernels, moved here from
//! `simpim-similarity` so that one implementation serves as both the
//! universal fallback backend and the ground truth every SIMD backend is
//! proven bit-identical against. The accumulation layout is fixed:
//! [`LANES`] (4) independent lanes over 4-element blocks, lanes folded as
//! `(l0 + l1) + (l2 + l3)`, then the ragged tail folded serially in
//! element order through the single [`fold_tail`] helper. A SIMD backend
//! reproduces exactly this sequence of IEEE-754 operations per lane, so
//! its results are bit-identical — not merely ULP-close. (Sole caveat:
//! NaN *payloads* are outside the contract — Rust documents NaN bit
//! patterns as non-deterministic, so a reduction over several distinct
//! NaNs guarantees NaN ⇔ NaN, not which payload wins.)

/// Independent accumulator lanes of the chunked kernels. Four lanes break
/// the loop-carried add dependency and map one-to-one onto a 4×f64 AVX2
/// register (or two 2×f64 SSE2/NEON registers).
pub const LANES: usize = 4;

/// Folds the ragged tail (the `len % LANES` elements past the last full
/// block) into `acc` serially, in element order: `acc += f(aᵢ, bᵢ)`.
///
/// Both the scalar and the SIMD backends finish through this one helper,
/// so the tail arithmetic has a single source of truth.
#[inline]
pub fn fold_tail(mut acc: f64, a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
    for (&x, &y) in a.iter().zip(b) {
        acc += f(x, y);
    }
    acc
}

/// The shared 4-lane chunked reduction: `Σ f(aᵢ, bᵢ)` with the fixed
/// lane/fold/tail order described in the module docs.
#[inline]
fn chunked(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        for (lane, (&x, &y)) in lanes.iter_mut().zip(pa.iter().zip(pb)) {
            *lane += f(x, y);
        }
    }
    let acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    fold_tail(acc, ca.remainder(), cb.remainder(), f)
}

/// Dot product `Σ aᵢ·bᵢ` — chunked kernel.
///
/// # Panics
/// Panics in debug builds when the lengths differ; callers validate
/// dimensionality at container boundaries.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    chunked(a, b, |x, y| x * y)
}

/// Squared L2 norm `Σ xᵢ²` — chunked kernel. Identical arithmetic to
/// [`dot`]`(xs, xs)`, so the two share one implementation (and one tail).
#[inline]
pub fn norm_sq(xs: &[f64]) -> f64 {
    chunked(xs, xs, |x, y| x * y)
}

/// Squared Euclidean distance `Σ (pᵢ − qᵢ)²` — chunked kernel.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn euclidean_sq(p: &[f64], q: &[f64]) -> f64 {
    chunked(p, q, |x, y| {
        let d = x - y;
        d * d
    })
}

/// Fused single pass returning `(Σ aᵢ·bᵢ, Σ aᵢ²)`.
///
/// Each component accumulates in its own 4-lane set with the same
/// per-lane operation order as the unfused kernels, so the pair is
/// bit-identical to `(dot(a, b), norm_sq(a))` while streaming `a` once.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn dot_norm_sq(a: &[f64], b: &[f64]) -> (f64, f64) {
    debug_assert_eq!(a.len(), b.len());
    let mut dl = [0.0f64; LANES];
    let mut nl = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (pa, pb) in ca.by_ref().zip(cb.by_ref()) {
        for j in 0..LANES {
            dl[j] += pa[j] * pb[j];
            nl[j] += pa[j] * pa[j];
        }
    }
    let d = fold_tail(
        (dl[0] + dl[1]) + (dl[2] + dl[3]),
        ca.remainder(),
        cb.remainder(),
        |x, y| x * y,
    );
    let n = fold_tail(
        (nl[0] + nl[1]) + (nl[2] + nl[3]),
        ca.remainder(),
        ca.remainder(),
        |x, y| x * y,
    );
    (d, n)
}

/// Hamming MAC `Σ popcount(aᵢ XOR bᵢ)` over packed u64 words. Exact
/// integer counting — every backend is trivially bit-identical.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| u64::from((x ^ y).count_ones()))
        .sum()
}

/// Bit-serial MAC `Σ popcount(aᵢ AND bᵢ)` over packed u64 words — the
/// crossbar's one-cycle row/column coincidence count.
///
/// # Panics
/// Panics in debug builds when the lengths differ.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| u64::from((x & y).count_ones()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms_small() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(norm_sq(&a), 14.0);
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm_sq(&[]), 0.0);
    }

    #[test]
    fn fused_matches_unfused_bitwise() {
        for len in 0usize..=4 * LANES + 3 {
            let a: Vec<f64> = (0..len).map(|i| ((i * 7 + 3) % 17) as f64 * 0.33).collect();
            let b: Vec<f64> = (0..len).map(|i| ((i * 5 + 1) % 13) as f64 * 0.71).collect();
            let (d, n) = dot_norm_sq(&a, &b);
            assert_eq!(d.to_bits(), dot(&a, &b).to_bits(), "len={len}");
            assert_eq!(n.to_bits(), norm_sq(&a).to_bits(), "len={len}");
        }
    }

    #[test]
    fn popcounts_match_direct_loop() {
        let a = [0xdeadbeefdeadbeefu64, u64::MAX, 0, 1, 0x5555_5555_5555_5555];
        let b = [0xfeedfacefeedfaceu64, 0, u64::MAX, 3, 0xaaaa_aaaa_aaaa_aaaa];
        let xor: u64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| u64::from((x ^ y).count_ones()))
            .sum();
        let and: u64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| u64::from((x & y).count_ones()))
            .sum();
        assert_eq!(xor_popcount(&a, &b), xor);
        assert_eq!(and_popcount(&a, &b), and);
        assert_eq!(xor_popcount(&[], &[]), 0);
    }
}

//! Time-series motif discovery and discord (anomaly) detection — the
//! remaining mining tasks of the paper's introduction (Mueen \[3\]).
//!
//! A length-`w` sliding window turns the series into `n − w + 1`
//! overlapping `w`-dimensional vectors; the **motif** is the closest
//! non-trivial pair of windows, the **discord** the window with the
//! largest non-trivial nearest-neighbor distance. Both are pure
//! similarity-search problems, so the PIM bound batch filters them the
//! same lossless way as kNN: candidates whose `LB_PIM` already exceeds the
//! running best need no exact distance.
//!
//! Trivial matches (overlapping windows) are excluded within `w/2`
//! positions, the standard exclusion zone.

use simpim_core::executor::{ExecutorConfig, PimExecutor};
use simpim_core::CoreError;
use simpim_similarity::{measures, Dataset, NormalizedDataset};
use simpim_simkit::OpCounters;

use crate::report::{Architecture, RunReport};

/// The closest non-trivial window pair.
#[derive(Debug, Clone)]
pub struct MotifResult {
    /// Start offsets of the pair, smaller first.
    pub pair: (usize, usize),
    /// Their squared distance.
    pub distance: f64,
    /// Instrumentation.
    pub report: RunReport,
}

/// The most anomalous window.
#[derive(Debug, Clone)]
pub struct DiscordResult {
    /// Start offset of the discord window.
    pub position: usize,
    /// Its non-trivial nearest-neighbor squared distance.
    pub score: f64,
    /// Instrumentation.
    pub report: RunReport,
}

/// Materializes the sliding-window dataset of a series.
pub fn window_dataset(series: &[f64], w: usize) -> Dataset {
    assert!(w >= 1 && w <= series.len(), "window must fit the series");
    let n = series.len() - w + 1;
    let mut ds = Dataset::with_dim(w).expect("w >= 1");
    for i in 0..n {
        ds.push(&series[i..i + w]).expect("window width fixed");
    }
    ds
}

fn exclusion(w: usize) -> usize {
    (w / 2).max(1)
}

/// Exhaustive motif search: O(n²) window pairs.
pub fn motif_standard(series: &[f64], w: usize) -> MotifResult {
    let ds = window_dataset(series, w);
    let excl = exclusion(w);
    let mut report = RunReport::new(Architecture::ConventionalDram);
    let mut ed = OpCounters::new();
    let mut other = OpCounters::new();
    let d = w as u64;

    let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
    for i in 0..ds.len() {
        for j in (i + excl)..ds.len() {
            ed.euclidean_kernel(d, d * 8);
            other.prune_test();
            let dist = measures::euclidean_sq(ds.row(i), ds.row(j));
            if dist < best.2 {
                best = (i, j, dist);
            }
        }
    }
    report.profile.record("ED", ed);
    report.profile.record("other", other);
    MotifResult {
        pair: (best.0, best.1),
        distance: best.2,
        report,
    }
}

/// PIM-filtered motif search: per anchor window, one `LB_PIM` batch orders
/// and prunes the candidate scan against the running best distance.
/// Returns exactly the [`motif_standard`] pair.
pub fn motif_pim(series: &[f64], w: usize, cfg: ExecutorConfig) -> Result<MotifResult, CoreError> {
    let ds = window_dataset(series, w);
    let nds = NormalizedDataset::assert_normalized_ref(&ds);
    let mut exec = PimExecutor::prepare_euclidean(cfg, nds)?;
    let excl = exclusion(w);
    let mut report = RunReport::new(Architecture::ReRamPim);
    let mut ed = OpCounters::new();
    let mut g = OpCounters::new();
    let mut other = OpCounters::new();
    let d = w as u64;
    let n = ds.len();

    let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
    let mut bound_name = String::new();
    for i in 0..n {
        let batch = exec.lb_ed_batch(ds.row(i))?;
        bound_name = exec.bound_name();
        report.pim.add(&batch.timing);
        g.stream(n as u64 * batch.host_bytes_per_object);
        g.arith += 4 * n as u64;
        g.mul += 2 * n as u64;
        for (j, &lb) in batch.values.iter().enumerate().skip(i + excl) {
            other.prune_test();
            if lb >= best.2 {
                continue; // cannot beat the running motif
            }
            ed.euclidean_kernel(d, d * 8);
            ed.random_fetches += 1;
            let dist = measures::euclidean_sq(ds.row(i), ds.row(j));
            other.prune_test();
            if dist < best.2 {
                best = (i, j, dist);
            }
        }
    }
    report.profile.record(&format!("G({bound_name})"), g);
    report.profile.record("ED", ed);
    report.profile.record("other", other);
    Ok(MotifResult {
        pair: (best.0, best.1),
        distance: best.2,
        report,
    })
}

/// Exhaustive discord search: each window's non-trivial 1-NN distance,
/// maximized.
pub fn discord_standard(series: &[f64], w: usize) -> DiscordResult {
    let ds = window_dataset(series, w);
    let excl = exclusion(w);
    let mut report = RunReport::new(Architecture::ConventionalDram);
    let mut ed = OpCounters::new();
    let mut other = OpCounters::new();
    let d = w as u64;

    let mut best = (usize::MAX, f64::NEG_INFINITY);
    for i in 0..ds.len() {
        let mut nn = f64::INFINITY;
        for j in 0..ds.len() {
            if i.abs_diff(j) < excl {
                continue;
            }
            ed.euclidean_kernel(d, d * 8);
            other.prune_test();
            nn = nn.min(measures::euclidean_sq(ds.row(i), ds.row(j)));
        }
        other.prune_test();
        if nn > best.1 {
            best = (i, nn);
        }
    }
    report.profile.record("ED", ed);
    report.profile.record("other", other);
    DiscordResult {
        position: best.0,
        score: best.1,
        report,
    }
}

/// PIM-filtered discord search with the ORCA-style cutoff: a window whose
/// running 1-NN distance drops below the best discord score so far is
/// abandoned; within a window's scan, sorted `LB_PIM` values finalize the
/// 1-NN early. Returns exactly the [`discord_standard`] result.
pub fn discord_pim(
    series: &[f64],
    w: usize,
    cfg: ExecutorConfig,
) -> Result<DiscordResult, CoreError> {
    let ds = window_dataset(series, w);
    let nds = NormalizedDataset::assert_normalized_ref(&ds);
    let mut exec = PimExecutor::prepare_euclidean(cfg, nds)?;
    let excl = exclusion(w);
    let mut report = RunReport::new(Architecture::ReRamPim);
    let mut ed = OpCounters::new();
    let mut g = OpCounters::new();
    let mut other = OpCounters::new();
    let d = w as u64;
    let n = ds.len();

    let mut best = (usize::MAX, f64::NEG_INFINITY);
    let mut bound_name = String::new();
    for i in 0..n {
        let batch = exec.lb_ed_batch(ds.row(i))?;
        bound_name = exec.bound_name();
        report.pim.add(&batch.timing);
        g.stream(n as u64 * batch.host_bytes_per_object);
        g.arith += 4 * n as u64;
        g.mul += 2 * n as u64;

        let mut order: Vec<(f64, usize)> = batch
            .values
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| i.abs_diff(j) >= excl)
            .map(|(j, v)| (v, j))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        other.cmp += (n as f64 * (n as f64).log2().max(1.0)) as u64;

        let mut nn = f64::INFINITY;
        let mut abandoned = false;
        for &(lb, j) in &order {
            other.prune_test();
            if lb >= nn {
                break; // sorted: the 1-NN distance is final
            }
            ed.euclidean_kernel(d, d * 8);
            ed.random_fetches += 1;
            nn = nn.min(measures::euclidean_sq(ds.row(i), ds.row(j)));
            other.prune_test();
            if nn <= best.1 {
                abandoned = true; // cannot be the discord any more
                break;
            }
        }
        if !abandoned && nn > best.1 {
            best = (i, nn);
        }
    }
    report.profile.record(&format!("G({bound_name})"), g);
    report.profile.record("ED", ed);
    report.profile.record("other", other);
    Ok(DiscordResult {
        position: best.0,
        score: best.1,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_datasets::timeseries::{generate_series, SeriesConfig};

    fn planted() -> (simpim_datasets::timeseries::PlantedSeries, usize) {
        let cfg = SeriesConfig {
            len: 800,
            pattern_len: 32,
            noise: 0.02,
            seed: 0xABCD,
        };
        (generate_series(&cfg), cfg.pattern_len)
    }

    #[test]
    fn finds_the_planted_motif() {
        let (s, w) = planted();
        let res = motif_standard(&s.values, w);
        let (a, b) = s.motif_positions;
        // The discovered pair must point at the planted occurrences
        // (within a couple of positions — neighboring windows overlap the
        // pattern almost completely).
        assert!(
            res.pair.0.abs_diff(a) <= 2,
            "pair {:?} vs planted ({a},{b})",
            res.pair
        );
        assert!(res.pair.1.abs_diff(b) <= 2);
        assert!(res.distance < 0.05);
    }

    #[test]
    fn finds_the_planted_discord() {
        let (s, w) = planted();
        let res = discord_standard(&s.values, w);
        assert!(
            res.position.abs_diff(s.discord_position) <= w,
            "discord at {} vs planted {}",
            res.position,
            s.discord_position
        );
        assert!(
            res.score > 1.0,
            "discord must be far from everything: {}",
            res.score
        );
    }

    #[test]
    fn pim_motif_matches_standard() {
        let (s, w) = planted();
        let base = motif_standard(&s.values, w);
        let pim = motif_pim(&s.values, w, ExecutorConfig::default()).unwrap();
        assert_eq!(pim.pair, base.pair);
        assert!((pim.distance - base.distance).abs() < 1e-12);
        assert!(pim.report.pim.total_ns() > 0.0);
    }

    #[test]
    fn pim_discord_matches_standard() {
        let (s, w) = planted();
        let base = discord_standard(&s.values, w);
        let pim = discord_pim(&s.values, w, ExecutorConfig::default()).unwrap();
        assert_eq!(pim.position, base.position);
        assert!((pim.score - base.score).abs() < 1e-12);
    }

    #[test]
    fn pim_prunes_most_pairwise_work() {
        let (s, w) = planted();
        let base = motif_standard(&s.values, w);
        let pim = motif_pim(&s.values, w, ExecutorConfig::default()).unwrap();
        let b = base.report.profile.get("ED").unwrap().counters.mul;
        let p = pim.report.profile.get("ED").unwrap().counters.mul;
        assert!(p * 4 < b, "motif scan must be bound-pruned: {p} vs {b}");
    }

    #[test]
    fn window_dataset_shape() {
        let ds = window_dataset(&[0.1, 0.2, 0.3, 0.4, 0.5], 3);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.row(2), &[0.3, 0.4, 0.5]);
    }
}

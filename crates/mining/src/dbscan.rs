//! DBSCAN — density-based clustering, another Section II-C target task
//! ("the algorithms of partitioning/density-based clustering").
//!
//! DBSCAN's hot loop is the ε-range query: all objects within distance ε
//! of a seed. On the baseline that is a full scan per expansion step; with
//! PIM, `LB_PIM(p, ·) > ε²` disqualifies a candidate without the exact
//! distance — range queries are the easiest case for lossless bound
//! filtering because the threshold is fixed.
//!
//! Both variants expand clusters in identical seed order, so labelings
//! (including the order-dependent border-point assignments) are identical.

use simpim_core::{CoreError, PimExecutor};
use simpim_similarity::{measures, Dataset};
use simpim_simkit::OpCounters;

use crate::report::{Architecture, RunReport};

/// Cluster assignment of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the given cluster.
    Cluster(usize),
}

/// Result of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Per-object labels.
    pub labels: Vec<DbscanLabel>,
    /// Number of clusters found.
    pub clusters: usize,
    /// Function profile + PIM timing.
    pub report: RunReport,
}

impl DbscanResult {
    /// Number of noise objects.
    pub fn noise_count(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| matches!(l, DbscanLabel::Noise))
            .count()
    }
}

/// The ε-neighborhood of `center` (indices, including `center` itself).
fn range_query_scan(
    dataset: &Dataset,
    center: usize,
    eps_sq: f64,
    ed: &mut OpCounters,
    other: &mut OpCounters,
) -> Vec<usize> {
    let d = dataset.dim() as u64;
    let row = dataset.row(center);
    let mut out = Vec::new();
    for (j, cand) in dataset.rows().enumerate() {
        ed.euclidean_kernel(d, d * 8);
        other.prune_test();
        if measures::euclidean_sq(row, cand) <= eps_sq {
            out.push(j);
        }
    }
    out
}

/// PIM-filtered ε-neighborhood: exact distances only for candidates whose
/// `LB_PIM` does not already exceed ε².
fn range_query_pim(
    executor: &mut PimExecutor,
    dataset: &Dataset,
    center: usize,
    eps_sq: f64,
    report: &mut RunReport,
    ed: &mut OpCounters,
    other: &mut OpCounters,
) -> Result<Vec<usize>, CoreError> {
    let d = dataset.dim() as u64;
    let n = dataset.len();
    let row = dataset.row(center);
    let batch = executor.lb_ed_batch(row)?;
    report.pim.add(&batch.timing);
    let mut g = OpCounters::new();
    g.stream(n as u64 * batch.host_bytes_per_object);
    g.arith += 4 * n as u64;
    g.mul += 2 * n as u64;
    report
        .profile
        .record(&format!("G({})", executor.bound_name()), g);

    let mut out = Vec::new();
    for (j, &lb) in batch.values.iter().enumerate() {
        other.prune_test();
        if lb > eps_sq {
            continue; // provably outside the ε-ball
        }
        ed.euclidean_kernel(d, d * 8);
        ed.random_fetches += 1;
        other.prune_test();
        if measures::euclidean_sq(row, dataset.row(j)) <= eps_sq {
            out.push(j);
        }
    }
    Ok(out)
}

/// Runs DBSCAN. Pass a prepared executor for the PIM variant; `None` runs
/// the full-scan baseline. `eps` is in the *unsquared* distance domain.
pub fn dbscan(
    dataset: &Dataset,
    eps: f64,
    min_pts: usize,
    mut pim: Option<&mut PimExecutor>,
) -> Result<DbscanResult, CoreError> {
    assert!(eps > 0.0, "eps must be positive");
    assert!(min_pts >= 1, "min_pts must be at least 1");
    let arch = if pim.is_some() {
        Architecture::ReRamPim
    } else {
        Architecture::ConventionalDram
    };
    let mut report = RunReport::new(arch);
    let mut ed = OpCounters::new();
    let mut other = OpCounters::new();
    let eps_sq = eps * eps;
    let n = dataset.len();

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut label = vec![UNVISITED; n];
    let mut clusters = 0usize;

    for i in 0..n {
        if label[i] != UNVISITED {
            continue;
        }
        let neighbors = match pim.as_deref_mut() {
            Some(exec) => {
                range_query_pim(exec, dataset, i, eps_sq, &mut report, &mut ed, &mut other)?
            }
            None => range_query_scan(dataset, i, eps_sq, &mut ed, &mut other),
        };
        if neighbors.len() < min_pts {
            label[i] = NOISE;
            continue;
        }
        // New cluster: BFS over density-reachable points.
        let cid = clusters;
        clusters += 1;
        label[i] = cid;
        let mut queue: Vec<usize> = neighbors.into_iter().filter(|&j| j != i).collect();
        while let Some(j) = queue.pop() {
            if label[j] == NOISE {
                label[j] = cid; // border point
                continue;
            }
            if label[j] != UNVISITED {
                continue;
            }
            label[j] = cid;
            let reach = match pim.as_deref_mut() {
                Some(exec) => {
                    range_query_pim(exec, dataset, j, eps_sq, &mut report, &mut ed, &mut other)?
                }
                None => range_query_scan(dataset, j, eps_sq, &mut ed, &mut other),
            };
            if reach.len() >= min_pts {
                queue.extend(
                    reach
                        .into_iter()
                        .filter(|&x| label[x] == UNVISITED || label[x] == NOISE),
                );
            }
        }
    }

    report.profile.record("ED", ed);
    report.profile.record("other", other);
    let labels = label
        .into_iter()
        .map(|l| {
            if l == NOISE || l == UNVISITED {
                DbscanLabel::Noise
            } else {
                DbscanLabel::Cluster(l)
            }
        })
        .collect();
    Ok(DbscanResult {
        labels,
        clusters,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_core::executor::ExecutorConfig;
    use simpim_datasets::{generate, SyntheticConfig};
    use simpim_similarity::NormalizedDataset;

    fn data() -> Dataset {
        let mut ds = generate(&SyntheticConfig {
            n: 180,
            d: 16,
            clusters: 3,
            cluster_std: 0.015,
            stat_uniformity: 0.0,
            seed: 99,
        });
        // Two isolated noise points.
        ds.push(&[0.999; 16]).unwrap();
        ds.push(&[0.001; 16]).unwrap();
        ds
    }

    #[test]
    fn recovers_clusters_and_noise() {
        let ds = data();
        let res = dbscan(&ds, 0.25, 4, None).unwrap();
        assert_eq!(res.clusters, 3, "three dense clusters");
        assert!(res.noise_count() >= 2, "planted noise detected");
        assert_eq!(res.labels.len(), ds.len());
        assert_eq!(res.labels[ds.len() - 1], DbscanLabel::Noise);
        assert_eq!(res.labels[ds.len() - 2], DbscanLabel::Noise);
    }

    #[test]
    fn pim_labeling_is_identical() {
        let ds = data();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        let base = dbscan(&ds, 0.25, 4, None).unwrap();
        let pim = dbscan(&ds, 0.25, 4, Some(&mut exec)).unwrap();
        assert_eq!(base.labels, pim.labels);
        assert_eq!(base.clusters, pim.clusters);
        assert!(pim.report.pim.total_ns() > 0.0);
    }

    #[test]
    fn pim_prunes_range_queries() {
        let ds = data();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        let base = dbscan(&ds, 0.25, 4, None).unwrap();
        let pim = dbscan(&ds, 0.25, 4, Some(&mut exec)).unwrap();
        let b = base.report.profile.get("ED").unwrap().counters.mul;
        let p = pim.report.profile.get("ED").unwrap().counters.mul;
        assert!(p * 2 < b, "range queries must be bound-pruned: {p} vs {b}");
    }

    #[test]
    fn everything_is_noise_at_tiny_eps() {
        let ds = data();
        let res = dbscan(&ds, 1e-6, 3, None).unwrap();
        assert_eq!(res.clusters, 0);
        assert_eq!(res.noise_count(), ds.len());
    }

    #[test]
    fn one_cluster_at_huge_eps() {
        let ds = data();
        let res = dbscan(&ds, 10.0, 3, None).unwrap();
        assert_eq!(res.clusters, 1);
        assert_eq!(res.noise_count(), 0);
    }
}

//! Run reports: everything a figure needs from one algorithm execution.

use simpim_profiling::FunctionProfiler;
use simpim_reram::PimTiming;
use simpim_simkit::{HostParams, NvmEmulator, TimeBreakdown};

/// Which main-memory technology the host side runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Architecture {
    /// Conventional architecture: DRAM main memory (the baselines).
    ConventionalDram,
    /// ReRAM-based memory with a PIM array (the `-PIM` variants): host
    /// traffic pays ReRAM latencies via the Quartz-style emulator, and the
    /// PIM array contributes its own latency.
    ReRamPim,
}

/// The measurable outcome of one algorithm run.
///
/// Deliberately **not** `Default`: a derived default left `architecture` as
/// `None`, which [`RunReport::host_breakdown`] silently treated as DRAM —
/// PIM runs accumulated through a defaulted report would lose their NVM
/// delay injection. Construct via [`RunReport::new`] instead.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Per-function operation counters (Section IV-B).
    pub profile: FunctionProfiler,
    /// Accumulated PIM-side latency (zero for baselines).
    pub pim: PimTiming,
    /// Which architecture the run models.
    pub architecture: Option<Architecture>,
}

impl RunReport {
    /// A fresh report for the given architecture.
    pub fn new(architecture: Architecture) -> Self {
        Self {
            profile: FunctionProfiler::new(),
            pim: PimTiming::default(),
            architecture: Some(architecture),
        }
    }

    /// Host-side Eq. 1 breakdown under `params`, applying Quartz delay
    /// injection when the run models ReRAM main memory.
    pub fn host_breakdown(&self, params: &HostParams) -> TimeBreakdown {
        debug_assert!(
            self.architecture.is_some(),
            "RunReport evaluated before an architecture was set; \
             construct reports with RunReport::new(architecture)"
        );
        let counters = self.profile.total_counters();
        match self.architecture {
            Some(Architecture::ReRamPim) => NvmEmulator::default().evaluate(params, &counters),
            _ => params.evaluate(&counters),
        }
    }

    /// End-to-end model time in nanoseconds: host breakdown plus PIM
    /// latency (the paper sums Quartz and NVSim outputs the same way).
    pub fn total_ns(&self, params: &HostParams) -> f64 {
        self.host_breakdown(params).total_ns() + self.pim.total_ns()
    }

    /// End-to-end model time in milliseconds.
    pub fn total_ms(&self, params: &HostParams) -> f64 {
        self.total_ns(params) / 1e6
    }

    /// Steady-state pipelined model time: the buffer array lets the CPU
    /// drain batch `t` while PIM computes batch `t+1` (Section III-A:
    /// "PIM array can work with CPU in parallel"), so across a long query
    /// stream the throughput-determining time is the *slower* of the two
    /// sides rather than their sum. The paper reports the conservative
    /// serial sum (as does [`RunReport::total_ns`]); this view quantifies
    /// the pipelining headroom in the `ablations` bench.
    pub fn total_ns_pipelined(&self, params: &HostParams) -> f64 {
        self.host_breakdown(params)
            .total_ns()
            .max(self.pim.total_ns())
    }

    /// Merges another report (e.g. per-query reports into a workload
    /// total). Architectures must match.
    pub fn merge(&mut self, other: &RunReport) {
        assert_eq!(
            self.architecture.or(other.architecture),
            other.architecture.or(self.architecture),
            "cannot merge runs from different architectures"
        );
        if self.architecture.is_none() {
            self.architecture = other.architecture;
        }
        self.profile.merge(&other.profile);
        self.pim.add(&other.pim);
    }
}

impl Architecture {
    /// Stable artifact identifier.
    pub fn as_str(&self) -> &'static str {
        match self {
            Architecture::ConventionalDram => "dram",
            Architecture::ReRamPim => "reram-pim",
        }
    }
}

impl simpim_obs::ToJson for Architecture {
    fn to_json(&self) -> simpim_obs::Json {
        simpim_obs::Json::Str(self.as_str().to_string())
    }
}

impl simpim_obs::ToJson for RunReport {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("architecture", self.architecture.to_json()),
            ("profile", self.profile.to_json()),
            ("pim", self.pim.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_simkit::OpCounters;

    #[test]
    fn totals_combine_host_and_pim() {
        let mut r = RunReport::new(Architecture::ReRamPim);
        let mut c = OpCounters::new();
        c.stream(1_000_000);
        r.profile.record("G", c);
        r.pim.bus_ns = 5000.0;
        let params = HostParams::default();
        let host = r.host_breakdown(&params).total_ns();
        assert!((r.total_ns(&params) - host - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn nvm_emulation_applies_only_to_pim_runs() {
        let params = HostParams::default();
        let mut c = OpCounters::new();
        c.write(1_000_000);
        let mut dram = RunReport::new(Architecture::ConventionalDram);
        dram.profile.record("f", c);
        let mut nvm = RunReport::new(Architecture::ReRamPim);
        nvm.profile.record("f", c);
        assert!(
            nvm.host_breakdown(&params).tcache_ns > 4.0 * dram.host_breakdown(&params).tcache_ns
        );
    }

    #[test]
    fn pipelined_time_is_the_slower_side() {
        let params = HostParams::default();
        let mut r = RunReport::new(Architecture::ReRamPim);
        let mut c = OpCounters::new();
        c.stream(1_000_000);
        r.profile.record("G", c);
        r.pim.bus_ns = 1e9; // PIM-bound workload
        assert!((r.total_ns_pipelined(&params) - 1e9).abs() < 1e-3);
        assert!(r.total_ns_pipelined(&params) < r.total_ns(&params));
        r.pim.bus_ns = 1.0; // host-bound workload
        let host = r.host_breakdown(&params).total_ns();
        assert!((r.total_ns_pipelined(&params) - host).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunReport::new(Architecture::ConventionalDram);
        let mut c = OpCounters::new();
        c.arith = 10;
        a.profile.record("f", c);
        let mut b = RunReport::new(Architecture::ConventionalDram);
        b.profile.record("f", c);
        b.pim.bus_ns = 1.0;
        a.merge(&b);
        assert_eq!(a.profile.get("f").unwrap().counters.arith, 20);
        assert_eq!(a.pim.bus_ns, 1.0);
    }

    #[test]
    #[should_panic(expected = "different architectures")]
    fn merge_rejects_mixed_architectures() {
        let mut a = RunReport::new(Architecture::ConventionalDram);
        let b = RunReport::new(Architecture::ReRamPim);
        a.merge(&b);
    }
}

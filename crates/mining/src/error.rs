//! Error type shared by the mining algorithms.

use std::error::Error;
use std::fmt;

use simpim_core::CoreError;
use simpim_similarity::Measure;

/// Errors surfaced by the mining algorithms.
///
/// The kNN entry points reject measure/operand mismatches (the classic one:
/// asking a floating-point scan for Hamming distance, which is defined on
/// binary codes and served by [`crate::knn::hamming`] /
/// [`crate::knn::pim::knn_pim_hamming`]) and forward any PIM execution
/// failure from `simpim-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningError {
    /// The requested measure is not defined for this algorithm's operand
    /// kind.
    UnsupportedMeasure {
        /// The measure that was requested.
        measure: Measure,
    },
    /// A PIM executor call failed (preparation, bound batch, or the fault
    /// recovery pipeline).
    Core(CoreError),
    /// A caller-supplied parameter is out of range (e.g. `k` outside
    /// `1..=N`); previously a panic in the hot entry points.
    InvalidArgument {
        /// What was wrong with the argument.
        what: String,
    },
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedMeasure { measure } => write!(
                f,
                "measure {} is not supported by this routine; Hamming \
                 distance runs on binary codes via knn::hamming / \
                 knn_pim_hamming",
                measure.name()
            ),
            Self::Core(e) => write!(f, "PIM execution failed: {e}"),
            Self::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for MiningError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::UnsupportedMeasure { .. } | Self::InvalidArgument { .. } => None,
        }
    }
}

impl From<CoreError> for MiningError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MiningError::UnsupportedMeasure {
            measure: Measure::Hamming,
        };
        assert!(e.to_string().contains("HD"));
        assert!(e.to_string().contains("binary codes"));
        assert!(e.source().is_none());
    }

    #[test]
    fn core_errors_convert_and_chain() {
        let core = CoreError::Mismatch { what: "test" };
        let e = MiningError::from(core.clone());
        assert_eq!(e, MiningError::Core(core));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("PIM execution failed"));
    }
}

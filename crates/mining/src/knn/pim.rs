//! PIM-optimized kNN (Section VI-C).
//!
//! The PIM-aware bound batch replaces the algorithm's bottleneck bound:
//! the crossbars produce `LB_PIM-ED` / `LB_PIM-FNN^s` (or `UB_PIM-CS` /
//! `UB_PIM-PCC`) for *every* object in one shot, the host evaluates the
//! O(1) combination `G` per object (3·b bits of traffic, Fig. 8), and
//! surviving candidates refine exactly on the host. Any *retained*
//! original bounds (FNN-PIM keeps its finer levels; FNN-PIM-optimize drops
//! them per the Section V-D plan) run between the PIM filter and the
//! refinement. Results are identical to the baselines — the bounds are
//! provably correct (Theorems 1–2).
//!
//! For Hamming distance the PIM result *is* the exact distance (Table 4),
//! so there is no refinement at all; the host merely selects the k
//! smallest of `N` 64-bit results (Fig. 14's "loading two dot-product
//! results ≈ 64 bits per object").

use simpim_bounds::{BoundCascade, BoundDirection};
use simpim_core::PimExecutor;
use simpim_similarity::{BinaryDataset, BinaryVecRef, Dataset, Measure};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::knn::cascade::charge_stage;
use crate::knn::{exact_eval, KnnResult, TopK};
use crate::report::{Architecture, RunReport};

/// Charges the host-side cost of combining one PIM batch: per object, the
/// Φ/dot reads plus the O(1) arithmetic of `G`.
fn charge_g(objects: u64, bytes_per_object: u64, counters: &mut OpCounters) {
    counters.stream(objects * bytes_per_object);
    counters.arith += 4 * objects;
    counters.mul += 2 * objects;
}

/// PIM-accelerated kNN under squared ED: PIM bound filter → retained
/// original bounds → exact refinement. `executor` must have been prepared
/// (`prepare_euclidean` / `prepare_fnn`) over exactly `dataset`'s rows.
pub fn knn_pim_ed(
    executor: &mut PimExecutor,
    dataset: &Dataset,
    retained: &BoundCascade,
    query: &[f64],
    k: usize,
) -> Result<KnnResult, MiningError> {
    assert!(k >= 1 && k <= dataset.len(), "k must be in 1..=N");
    assert_eq!(query.len(), dataset.dim(), "query dimensionality mismatch");
    if let Some(dir) = retained.direction() {
        assert_eq!(
            dir,
            BoundDirection::LowerBoundsDistance,
            "retained bounds must be ED lower bounds"
        );
    }

    let mut report = RunReport::new(Architecture::ReRamPim);
    let mut top = TopK::new(k, true);
    let mut other = OpCounters::new();
    let mut exact_counters = OpCounters::new();
    let n = dataset.len();
    let mut query_span = simpim_obs::span!("mining.knn.pim", k = k as u64, n = n as u64);

    // PIM bound batch over the whole dataset (one shot on the crossbars).
    let batch = executor.lb_ed_batch(query)?;
    report.pim.add(&batch.timing);
    let mut g_counters = OpCounters::new();
    charge_g(n as u64, batch.host_bytes_per_object, &mut g_counters);
    report
        .profile
        .record(&format!("G({})", executor.bound_name()), g_counters);

    // Best-bound-first refinement (see `knn::cascade` for the rationale).
    let mut order: Vec<(f64, usize)> = batch
        .values
        .iter()
        .copied()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    simpim_par::sort_by(&mut order, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    other.cmp += (n as f64 * (n as f64).log2().max(1.0)) as u64;

    let prepared: Vec<_> = retained.stages().map(|s| s.prepare(query)).collect();
    let stage_list: Vec<&dyn simpim_bounds::BoundStage> = retained.stages().collect();
    let mut stage_evals = vec![0u64; stage_list.len()];
    let mut stage_pruned = vec![0u64; stage_list.len()];
    let mut pim_pruned = 0u64;
    let mut refined = 0u64;

    // Parallel chunked refinement against per-chunk τ snapshots; chunk
    // boundaries and merge order are thread-count independent (see
    // `knn::cascade` and DESIGN.md §10).
    'walk: for chunk in crate::knn::refine_chunk_schedule(n, k) {
        other.prune_test();
        if top.prunable(order[chunk.start].0) {
            // Sorted PIM bounds: this chunk and the rest are pruned too.
            pim_pruned += (n - chunk.start) as u64;
            break 'walk;
        }
        let snap = &top.clone();
        let cands = &order[chunk];
        let prepared = &prepared;
        let chunks = simpim_par::map_chunks(cands.len(), crate::knn::REFINE_TASK, |r| {
            let mut hits = Vec::new();
            let mut exact = OpCounters::new();
            let mut other = OpCounters::new();
            let mut evals = vec![0u64; prepared.len()];
            let mut pruned = vec![0u64; prepared.len()];
            let mut pim_pruned = 0u64;
            'cand: for &(lb, i) in &cands[r] {
                other.prune_test();
                if snap.prunable(lb) {
                    pim_pruned += 1;
                    continue 'cand;
                }
                for (si, prep) in prepared.iter().enumerate() {
                    evals[si] += 1;
                    other.prune_test();
                    if snap.prunable(prep.bound(i)) {
                        pruned[si] += 1;
                        continue 'cand;
                    }
                }
                exact.random_fetches += 1;
                match exact_eval(Measure::EuclideanSq, dataset.row(i), query, &mut exact) {
                    Ok(v) => hits.push((i, v)),
                    Err(e) => return Err(e),
                }
            }
            Ok((hits, exact, other, evals, pruned, pim_pruned))
        });
        for res in chunks {
            let (hits, exact, task_other, evals, pruned, task_pim_pruned) = res?;
            exact_counters.add(&exact);
            other.add(&task_other);
            pim_pruned += task_pim_pruned;
            for (si, (e, p)) in evals.iter().zip(&pruned).enumerate() {
                stage_evals[si] += e;
                stage_pruned[si] += p;
            }
            refined += hits.len() as u64;
            for (i, v) in hits {
                other.prune_test();
                top.offer(i, v);
            }
        }
    }
    for (si, stage) in stage_list.iter().enumerate() {
        let mut c = OpCounters::new();
        charge_stage(&stage.eval_cost(), stage_evals[si], &mut c);
        report.profile.record(&stage.name(), c);
    }

    // Per-bound pruning observations, the PIM bound included — the same
    // `simpim.bounds.*` names the cascade engine flushes, so
    // `CandidateBound::from_metrics` sees PIM plans too.
    let bound = executor.bound_name();
    simpim_obs::metrics::counter_add(&format!("simpim.bounds.{bound}.seen"), n as u64);
    simpim_obs::metrics::counter_add(&format!("simpim.bounds.{bound}.pruned"), pim_pruned);
    simpim_obs::metrics::gauge_set(
        &format!("simpim.bounds.{bound}.transfer_bytes"),
        batch.host_bytes_per_object as f64,
    );
    for (si, stage) in stage_list.iter().enumerate() {
        let name = stage.name();
        simpim_obs::metrics::counter_add(&format!("simpim.bounds.{name}.seen"), stage_evals[si]);
        simpim_obs::metrics::counter_add(&format!("simpim.bounds.{name}.pruned"), stage_pruned[si]);
        simpim_obs::metrics::gauge_set(
            &format!("simpim.bounds.{name}.transfer_bytes"),
            stage.transfer_bytes_per_object() as f64,
        );
    }
    simpim_obs::metrics::histogram_record("simpim.mining.knn.refinements", refined);

    report.profile.record("ED", exact_counters);
    report.profile.record("other", other);
    query_span.record("refined", refined as f64);
    Ok(KnnResult {
        neighbors: top.into_sorted(),
        report,
    })
}

/// PIM-accelerated kNN under cosine / Pearson similarity: `UB_PIM` filter
/// then exact refinement. `executor` must be prepared with
/// `prepare_similarity` on the matching target.
pub fn knn_pim_sim(
    executor: &mut PimExecutor,
    dataset: &Dataset,
    query: &[f64],
    k: usize,
    measure: Measure,
) -> Result<KnnResult, MiningError> {
    assert!(k >= 1 && k <= dataset.len(), "k must be in 1..=N");
    assert!(
        matches!(measure, Measure::Cosine | Measure::Pearson),
        "similarity path covers CS/PCC"
    );

    let mut report = RunReport::new(Architecture::ReRamPim);
    let mut top = TopK::new(k, false);
    let mut other = OpCounters::new();
    let mut exact_counters = OpCounters::new();
    let n = dataset.len();
    let mut query_span = simpim_obs::span!("mining.knn.pim_sim", k = k as u64, n = n as u64);

    let batch = executor.ub_sim_batch(query)?;
    report.pim.add(&batch.timing);
    let mut g_counters = OpCounters::new();
    charge_g(n as u64, batch.host_bytes_per_object, &mut g_counters);
    report
        .profile
        .record(&format!("G({})", executor.bound_name()), g_counters);

    // Highest upper bound first: the similarity mirror of best-first
    // refinement.
    let mut order: Vec<(f64, usize)> = batch
        .values
        .iter()
        .copied()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    simpim_par::sort_by(&mut order, |a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    other.cmp += (n as f64 * (n as f64).log2().max(1.0)) as u64;

    // Same chunked parallel walk as the ED path, minus retained stages.
    let mut pruned = 0u64;
    let mut refined = 0u64;
    'walk: for chunk in crate::knn::refine_chunk_schedule(n, k) {
        other.prune_test();
        if top.prunable(order[chunk.start].0) {
            // Sorted descending: this chunk and the rest cannot qualify.
            pruned += (n - chunk.start) as u64;
            break 'walk;
        }
        let snap = &top.clone();
        let cands = &order[chunk];
        let chunks = simpim_par::map_chunks(cands.len(), crate::knn::REFINE_TASK, |r| {
            let mut hits = Vec::new();
            let mut exact = OpCounters::new();
            let mut other = OpCounters::new();
            let mut pruned = 0u64;
            for &(ub, i) in &cands[r] {
                other.prune_test();
                if snap.prunable(ub) {
                    pruned += 1;
                    continue;
                }
                exact.random_fetches += 1;
                match exact_eval(measure, dataset.row(i), query, &mut exact) {
                    Ok(v) => hits.push((i, v)),
                    Err(e) => return Err(e),
                }
            }
            Ok((hits, exact, other, pruned))
        });
        for res in chunks {
            let (hits, exact, task_other, task_pruned) = res?;
            exact_counters.add(&exact);
            other.add(&task_other);
            pruned += task_pruned;
            refined += hits.len() as u64;
            for (i, v) in hits {
                other.prune_test();
                top.offer(i, v);
            }
        }
    }

    let bound = executor.bound_name();
    simpim_obs::metrics::counter_add(&format!("simpim.bounds.{bound}.seen"), n as u64);
    simpim_obs::metrics::counter_add(&format!("simpim.bounds.{bound}.pruned"), pruned);
    simpim_obs::metrics::gauge_set(
        &format!("simpim.bounds.{bound}.transfer_bytes"),
        batch.host_bytes_per_object as f64,
    );
    simpim_obs::metrics::histogram_record("simpim.mining.knn.refinements", refined);

    report.profile.record(measure.name(), exact_counters);
    report.profile.record("other", other);
    query_span.record("refined", refined as f64);
    Ok(KnnResult {
        neighbors: top.into_sorted(),
        report,
    })
}

/// PIM kNN on binary codes: Hamming distances computed exactly on the
/// crossbars; the host only selects the k smallest.
pub fn knn_pim_hamming(
    executor: &mut PimExecutor,
    codes: &BinaryDataset,
    query: &BinaryVecRef<'_>,
    k: usize,
) -> Result<KnnResult, MiningError> {
    assert!(k >= 1 && k <= codes.len(), "k must be in 1..=N");

    let mut report = RunReport::new(Architecture::ReRamPim);
    let _span = simpim_obs::span!(
        "mining.knn.pim_hamming",
        k = k as u64,
        n = codes.len() as u64
    );
    let batch = executor.hd_batch(query)?;
    report.pim.add(&batch.timing);

    // Host: read the two dot-product results per object (64 bits total,
    // Fig. 14) and keep the top-k.
    let mut g_counters = OpCounters::new();
    g_counters.stream(batch.values.len() as u64 * 8);
    g_counters.arith += 2 * batch.values.len() as u64;
    let mut other = OpCounters::new();
    let mut top = TopK::new(k, true);
    for (i, &v) in batch.values.iter().enumerate() {
        other.prune_test();
        top.offer(i, v);
    }
    report.profile.record("G(HD_PIM)", g_counters);
    report.profile.record("other", other);
    Ok(KnnResult {
        neighbors: top.into_sorted(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::algorithms::fnn_cascade;
    use crate::knn::hamming::knn_hamming;
    use crate::knn::standard::knn_standard;
    use simpim_core::executor::{ExecutorConfig, SimTarget};
    use simpim_datasets::{generate, lsh_codes, sample_queries, SyntheticConfig};
    use simpim_reram::{CrossbarConfig, PimConfig};
    use simpim_similarity::NormalizedDataset;

    fn exec_cfg(crossbars: usize) -> ExecutorConfig {
        ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 64,
                    adc_bits: 12,
                    ..Default::default()
                },
                num_crossbars: crossbars,
                ..Default::default()
            },
            alpha: 1e6,
            operand_bits: 32,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        }
    }

    fn workload() -> (Dataset, Vec<Vec<f64>>) {
        let ds = generate(&SyntheticConfig {
            n: 250,
            d: 64,
            clusters: 5,
            cluster_std: 0.04,
            stat_uniformity: 0.0,
            seed: 33,
        });
        let qs = sample_queries(&ds, 4, 0.02, 5);
        (ds, qs)
    }

    #[test]
    fn standard_pim_matches_standard() {
        let (ds, qs) = workload();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_euclidean(exec_cfg(100_000), &nds).unwrap();
        for q in &qs {
            let truth = knn_standard(&ds, q, 10, Measure::EuclideanSq).unwrap();
            let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), q, 10).unwrap();
            assert_eq!(got.indices(), truth.indices());
            assert!(got.report.pim.total_ns() > 0.0);
        }
    }

    #[test]
    fn fnn_pim_with_retained_bounds_matches() {
        let (ds, qs) = workload();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_fnn(exec_cfg(100_000), &nds, 16).unwrap();
        let retained = fnn_cascade(&ds).unwrap();
        for q in &qs {
            let truth = knn_standard(&ds, q, 10, Measure::EuclideanSq).unwrap();
            let got = knn_pim_ed(&mut exec, &ds, &retained, q, 10).unwrap();
            assert_eq!(got.indices(), truth.indices());
        }
    }

    #[test]
    fn pim_filter_prunes_most_refinement() {
        let (ds, qs) = workload();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_euclidean(exec_cfg(100_000), &nds).unwrap();
        let got = knn_pim_ed(&mut exec, &ds, &BoundCascade::empty(), &qs[0], 10).unwrap();
        let refined = got
            .report
            .profile
            .get("ED")
            .unwrap()
            .counters
            .random_fetches;
        assert!(
            refined < 60,
            "PIM bound should prune most of 240 candidates: {refined}"
        );
    }

    #[test]
    fn similarity_pim_matches_standard() {
        let (ds, qs) = workload();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        for (measure, target) in [
            (Measure::Cosine, SimTarget::Cosine),
            (Measure::Pearson, SimTarget::Pearson),
        ] {
            let mut exec =
                PimExecutor::prepare_similarity(exec_cfg(100_000), &nds, target).unwrap();
            for q in &qs {
                let truth = knn_standard(&ds, q, 10, measure).unwrap();
                let got = knn_pim_sim(&mut exec, &ds, q, 10, measure).unwrap();
                assert_eq!(got.indices(), truth.indices(), "{measure:?}");
            }
        }
    }

    #[test]
    fn hamming_pim_matches_host_scan() {
        let (ds, _) = workload();
        let codes = lsh_codes(&ds, 128, 9);
        let mut exec = PimExecutor::prepare_hamming(exec_cfg(100_000), &codes).unwrap();
        for qi in [0usize, 7, 100] {
            let q = codes.row(qi);
            let truth = knn_hamming(&codes, &q, 10);
            let got = knn_pim_hamming(&mut exec, &codes, &q, 10).unwrap();
            assert_eq!(got.indices(), truth.indices());
            // PIM HD needs no refinement: no ED/HD function on the host.
            assert!(got.report.profile.get("HD").is_none());
        }
    }
}

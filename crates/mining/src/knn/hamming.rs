//! kNN on Hamming distance: linear scan over binary codes.
//!
//! Per \[28\] (as cited in Section II-C), no technique significantly beats a
//! linear XOR+popcount scan for kNN on binary codes, so `Standard` is the
//! only HD baseline (Fig. 14).

use simpim_similarity::{BinaryDataset, BinaryVecRef};
use simpim_simkit::OpCounters;

use crate::knn::{KnnResult, TopK};
use crate::report::{Architecture, RunReport};

/// Scans all codes, returning the exact k nearest by Hamming distance.
///
/// # Panics
/// Panics when `k` is out of range or the query width mismatches.
pub fn knn_hamming(codes: &BinaryDataset, query: &BinaryVecRef<'_>, k: usize) -> KnnResult {
    assert!(k >= 1 && k <= codes.len(), "k must be in 1..=N");
    assert_eq!(query.bits(), codes.bits(), "query code width mismatch");
    let mut report = RunReport::new(Architecture::ConventionalDram);
    let mut top = TopK::new(k, true);

    let words = codes.bits().div_ceil(64) as u64;
    let mut hd_counters = OpCounters::new();
    let mut other = OpCounters::new();
    for (i, code) in codes.rows().enumerate() {
        // XOR + popcount per word, streaming the stored code.
        hd_counters.arith += 2 * words;
        hd_counters.stream(words * 8);
        let d = code.hamming(query);
        other.prune_test();
        top.offer(i, f64::from(d));
    }
    report.profile.record("HD", hd_counters);
    report.profile.record("other", other);
    KnnResult {
        neighbors: top.into_sorted(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes() -> BinaryDataset {
        let mut ds = BinaryDataset::with_bits(128).unwrap();
        for i in 0..8u32 {
            let bits: Vec<bool> = (0..128).map(|b| (b as u32).is_multiple_of(i + 2)).collect();
            ds.push_bits(&bits).unwrap();
        }
        ds
    }

    #[test]
    fn self_query_is_nearest() {
        let ds = codes();
        let res = knn_hamming(&ds, &ds.row(3), 1);
        assert_eq!(res.indices(), vec![3]);
        assert_eq!(res.neighbors[0].1, 0.0);
    }

    #[test]
    fn matches_brute_force_order() {
        let ds = codes();
        let q = ds.row(0);
        let mut truth: Vec<(usize, u32)> =
            (0..ds.len()).map(|i| (i, q.hamming(&ds.row(i)))).collect();
        truth.sort_by_key(|&(i, d)| (d, i));
        let res = knn_hamming(&ds, &q, 4);
        assert_eq!(
            res.indices(),
            truth.iter().take(4).map(|&(i, _)| i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn charges_word_granular_traffic() {
        let ds = codes();
        let res = knn_hamming(&ds, &ds.row(0), 2);
        let c = res.report.profile.get("HD").unwrap().counters;
        assert_eq!(c.bytes_streamed, 8 * 2 * 8); // 8 codes × 2 words × 8 B
    }
}

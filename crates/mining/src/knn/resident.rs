//! Host-side refinement over a *resident* shard (the serving path).
//!
//! The offline kNN variants own the whole dataset and return positions
//! into it. A serving shard is different in three ways: its rows carry
//! stable **global ids** (positions shift as tombstoned rows are
//! compacted), some slots are **tombstoned** (deleted but still
//! programmed on the crossbars until the next reprogram), and one query's
//! candidates are spread across **many shards** whose partial results
//! must merge into one exact top-k.
//!
//! Exactness argument: every candidate is offered to [`TopK`] under its
//! global id, and `TopK` keeps the k best with ties broken by id. The
//! k-best selection is independent of offer order, so refining shard by
//! shard (in any order, even concurrently) and merging the partial pools
//! yields bit-identical neighbors to one global scan — provided each
//! shard's bound values are valid bounds, which Theorems 1–2 guarantee
//! even under drifted crossbars (guard-banded) and dead ones (exact host
//! fallback).

use simpim_similarity::{Dataset, Measure};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::knn::{exact_eval, TopK};

/// One shard's candidates, as parallel columns: `rows.row(i)` is the
/// shard-local row whose stable global id is `ids[i]`, `live[i]` is
/// `false` for tombstoned slots, and `bounds[i]` is the PIM bound for it
/// (a lower bound for distance measures, an upper bound for similarity
/// measures). Pass all-zero bounds to force a full exact scan — the
/// host-fallback / delta-scan path.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// Shard-local rows.
    pub rows: &'a Dataset,
    /// Stable global id per row.
    pub ids: &'a [usize],
    /// `false` marks a tombstoned (deleted) slot.
    pub live: &'a [bool],
    /// PIM bound value per row.
    pub bounds: &'a [f64],
}

/// Partial result of refining one shard.
#[derive(Debug, Clone)]
pub struct ShardRefine {
    /// `(global id, measure value)` pairs, best first, at most `k`.
    pub neighbors: Vec<(usize, f64)>,
    /// Candidates evaluated exactly.
    pub refined: u64,
    /// Candidates eliminated by their bound (tombstones excluded).
    pub pruned: u64,
}

/// Refines one shard's PIM bound batch into its exact partial top-k.
///
/// The walk is best-bound-first with the planner's usual early exit:
/// once the best remaining bound cannot beat the pool's threshold, the
/// rest of the shard is pruned wholesale.
pub fn refine_resident(
    view: &ShardView<'_>,
    query: &[f64],
    k: usize,
    measure: Measure,
    counters: &mut OpCounters,
) -> Result<ShardRefine, MiningError> {
    let ShardView {
        rows,
        ids,
        live,
        bounds,
    } = *view;
    assert!(k >= 1, "k must be at least 1");
    assert_eq!(rows.len(), ids.len(), "ids must parallel rows");
    assert_eq!(rows.len(), live.len(), "live must parallel rows");
    assert_eq!(rows.len(), bounds.len(), "bounds must parallel rows");
    assert_eq!(query.len(), rows.dim(), "query dimensionality mismatch");

    let smaller_is_closer = matches!(measure, Measure::EuclideanSq | Measure::Hamming);
    let mut top = TopK::new(k, smaller_is_closer);

    // Best-bound-first over live slots; tombstones never surface.
    let mut order: Vec<(f64, usize)> = bounds
        .iter()
        .copied()
        .enumerate()
        .filter(|&(i, _)| live[i])
        .map(|(i, v)| (v, i))
        .collect();
    if smaller_is_closer {
        simpim_par::sort_by(&mut order, |a, b| {
            a.0.total_cmp(&b.0).then(ids[a.1].cmp(&ids[b.1]))
        });
    } else {
        simpim_par::sort_by(&mut order, |a, b| {
            b.0.total_cmp(&a.0).then(ids[a.1].cmp(&ids[b.1]))
        });
    }
    let live_n = order.len();
    counters.cmp += (live_n as f64 * (live_n as f64).log2().max(1.0)) as u64;

    // Parallel chunked walk (see `knn::cascade` / DESIGN.md §10): fixed
    // chunk boundaries from `refine_chunk_schedule`, per-chunk τ
    // snapshots, offers merged in candidate order — results and counters
    // are identical at any `SIMPIM_THREADS`.
    let mut refined = 0u64;
    let mut pruned = 0u64;
    'walk: for chunk in crate::knn::refine_chunk_schedule(live_n, k.min(live_n.max(1))) {
        counters.prune_test();
        if top.prunable(order[chunk.start].0) {
            pruned += (live_n - chunk.start) as u64;
            break 'walk;
        }
        let snap = &top.clone();
        let cands = &order[chunk];
        let chunks = simpim_par::map_chunks(cands.len(), crate::knn::REFINE_TASK, |r| {
            let mut hits = Vec::new();
            let mut local = OpCounters::new();
            let mut pruned = 0u64;
            for &(bound, i) in &cands[r] {
                local.prune_test();
                if snap.prunable(bound) {
                    pruned += 1;
                    continue;
                }
                local.random_fetches += 1;
                match exact_eval(measure, rows.row(i), query, &mut local) {
                    Ok(v) => hits.push((ids[i], v)),
                    Err(e) => return Err(e),
                }
            }
            Ok((hits, local, pruned))
        });
        for res in chunks {
            let (hits, local, task_pruned) = res?;
            counters.add(&local);
            pruned += task_pruned;
            refined += hits.len() as u64;
            for (id, v) in hits {
                counters.prune_test();
                top.offer(id, v);
            }
        }
    }
    Ok(ShardRefine {
        neighbors: top.into_sorted(),
        refined,
        pruned,
    })
}

/// Merges per-shard partial top-k pools into the global exact top-k.
/// Offer order does not matter: ties still break on the global id.
pub fn merge_neighbors(
    parts: &[Vec<(usize, f64)>],
    k: usize,
    smaller_is_closer: bool,
) -> Vec<(usize, f64)> {
    let mut top = TopK::new(k, smaller_is_closer);
    for part in parts {
        for &(id, v) in part {
            top.offer(id, v);
        }
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::standard::knn_standard;

    fn rows() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.9],
            vec![0.5, 0.5],
            vec![0.9, 0.1],
            vec![0.4, 0.6],
        ])
        .unwrap()
    }

    #[test]
    fn sharded_refine_matches_global_scan() {
        let ds = rows();
        let q = [0.45, 0.55];
        let truth = knn_standard(&ds, &q, 2, Measure::EuclideanSq).unwrap();
        // Split rows 0..2 / 2..4 into two shards with zero bounds (never
        // prune → full exact scan) and merge.
        let shard_a = Dataset::from_rows(&[ds.row(0).to_vec(), ds.row(1).to_vec()]).unwrap();
        let shard_b = Dataset::from_rows(&[ds.row(2).to_vec(), ds.row(3).to_vec()]).unwrap();
        let mut c = OpCounters::new();
        let a = refine_resident(
            &ShardView {
                rows: &shard_a,
                ids: &[0, 1],
                live: &[true, true],
                bounds: &[0.0, 0.0],
            },
            &q,
            2,
            Measure::EuclideanSq,
            &mut c,
        )
        .unwrap();
        let b = refine_resident(
            &ShardView {
                rows: &shard_b,
                ids: &[2, 3],
                live: &[true, true],
                bounds: &[0.0, 0.0],
            },
            &q,
            2,
            Measure::EuclideanSq,
            &mut c,
        )
        .unwrap();
        let merged = merge_neighbors(&[a.neighbors, b.neighbors], 2, true);
        assert_eq!(merged, truth.neighbors);
    }

    #[test]
    fn tombstones_never_surface() {
        let ds = rows();
        let q = [0.5, 0.5];
        let mut c = OpCounters::new();
        // Row 1 is the exact match but tombstoned.
        let out = refine_resident(
            &ShardView {
                rows: &ds,
                ids: &[10, 11, 12, 13],
                live: &[true, false, true, true],
                bounds: &[0.0; 4],
            },
            &q,
            4,
            Measure::EuclideanSq,
            &mut c,
        )
        .unwrap();
        assert_eq!(out.neighbors.len(), 3);
        assert!(out.neighbors.iter().all(|&(id, _)| id != 11));
    }

    #[test]
    fn valid_bounds_prune_without_changing_results() {
        let ds = rows();
        let q = [0.45, 0.55];
        let exact: Vec<f64> = (0..4)
            .map(|i| simpim_similarity::measures::euclidean_sq(ds.row(i), &q))
            .collect();
        let mut c = OpCounters::new();
        let with_bounds = refine_resident(
            &ShardView {
                rows: &ds,
                ids: &[0, 1, 2, 3],
                live: &[true; 4],
                // The tightest valid lower bound: the distance itself.
                bounds: &exact,
            },
            &q,
            1,
            Measure::EuclideanSq,
            &mut c,
        )
        .unwrap();
        let mut c2 = OpCounters::new();
        let without = refine_resident(
            &ShardView {
                rows: &ds,
                ids: &[0, 1, 2, 3],
                live: &[true; 4],
                bounds: &[0.0; 4],
            },
            &q,
            1,
            Measure::EuclideanSq,
            &mut c2,
        )
        .unwrap();
        assert_eq!(with_bounds.neighbors, without.neighbors);
        assert!(with_bounds.pruned > 0);
    }
}

//! `Standard` kNN: exhaustive linear scan (the paper's baseline of
//! baselines). Exact by construction; its profile is dominated by the
//! exact-measure function, which is why Fig. 7 shows the largest PIM-oracle
//! gap for it.

use simpim_similarity::{Dataset, Measure};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::knn::{exact_eval, KnnResult, TopK};
use crate::report::{Architecture, RunReport};

/// Scans the whole dataset, returning the exact k nearest under `measure`
/// (`EuclideanSq`, `Cosine` or `Pearson`).
///
/// # Errors
/// [`MiningError::UnsupportedMeasure`] for `Measure::Hamming` — binary
/// codes use [`crate::knn::hamming`] instead.
///
/// # Panics
/// Panics when `k` is zero or exceeds the dataset size, or when the query
/// dimensionality mismatches.
pub fn knn_standard(
    dataset: &Dataset,
    query: &[f64],
    k: usize,
    measure: Measure,
) -> Result<KnnResult, MiningError> {
    assert!(k >= 1 && k <= dataset.len(), "k must be in 1..=N");
    assert_eq!(query.len(), dataset.dim(), "query dimensionality mismatch");
    let mut report = RunReport::new(Architecture::ConventionalDram);
    let mut top = TopK::new(k, measure.smaller_is_closer());
    let _span = simpim_obs::span!(
        "mining.knn.standard",
        k = k as u64,
        n = dataset.len() as u64
    );

    let mut measure_counters = OpCounters::new();
    let mut other = OpCounters::new();
    for (i, row) in dataset.rows().enumerate() {
        let v = exact_eval(measure, row, query, &mut measure_counters)?;
        other.prune_test();
        top.offer(i, v);
    }
    report.profile.record(measure.name(), measure_counters);
    report.profile.record("other", other);
    Ok(KnnResult {
        neighbors: top.into_sorted(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_similarity::measures::euclidean_sq;

    fn dataset() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.5, 0.5],
            vec![0.9, 0.9],
        ])
        .unwrap()
    }

    #[test]
    fn finds_exact_neighbors() {
        let ds = dataset();
        let res = knn_standard(&ds, &[0.05, 0.05], 2, Measure::EuclideanSq).unwrap();
        assert_eq!(res.indices(), vec![0, 2]);
        assert!((res.neighbors[0].1 - euclidean_sq(ds.row(0), &[0.05, 0.05])).abs() < 1e-12);
    }

    #[test]
    fn similarity_measures_reverse_order() {
        let ds = Dataset::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]]).unwrap();
        let res = knn_standard(&ds, &[1.0, 0.1], 1, Measure::Cosine).unwrap();
        assert_eq!(res.indices(), vec![0]);
    }

    #[test]
    fn profile_is_measure_dominated() {
        let ds = dataset();
        let res = knn_standard(&ds, &[0.0, 0.0], 1, Measure::EuclideanSq).unwrap();
        let params = simpim_simkit::HostParams::default();
        let (name, frac) = res.report.profile.bottleneck(&params).unwrap();
        assert_eq!(name, "ED");
        assert!(frac > 0.5);
        assert_eq!(
            res.report.pim.total_ns(),
            0.0,
            "baseline must not touch PIM"
        );
    }

    #[test]
    fn k_equals_n_returns_everything() {
        let ds = dataset();
        let res = knn_standard(&ds, &[0.0, 0.0], 5, Measure::EuclideanSq).unwrap();
        assert_eq!(res.neighbors.len(), 5);
        assert_eq!(res.neighbors[0].0, 0);
        assert_eq!(res.neighbors[4].0, 1);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let _ = knn_standard(&dataset(), &[0.0, 0.0], 0, Measure::EuclideanSq);
    }

    #[test]
    fn hamming_on_floats_is_a_typed_error() {
        let err = knn_standard(&dataset(), &[0.0, 0.0], 1, Measure::Hamming).unwrap_err();
        assert!(matches!(
            err,
            MiningError::UnsupportedMeasure {
                measure: Measure::Hamming
            }
        ));
    }
}

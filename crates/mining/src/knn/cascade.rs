//! The shared filter-and-refinement kNN engine.
//!
//! 1. **Warm-up**: evaluate the first `k` objects exactly to seed the
//!    candidate pool and its pruning threshold `τ`.
//! 2. **Filtering**: apply the cascade's bounds in order; an object whose
//!    bound proves it cannot beat `τ` is dropped. `τ` only tightens over
//!    time, so every prune is safe (filter-and-refinement, Section II-C).
//! 3. **Refinement**: evaluate survivors exactly (random fetches — they
//!    are scattered in memory), updating the pool and `τ` as it shrinks.
//!
//! Instantiated with the right cascade this engine *is* OST / SM / FNN
//! (see [`crate::knn::algorithms`]), and with a PIM bound batch spliced in
//! front it is the `-PIM` variant ([`crate::knn::pim`]).

use simpim_bounds::{BoundCascade, BoundDirection};
use simpim_similarity::{Dataset, Measure};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::knn::{exact_eval, KnnResult, TopK};
use crate::report::{Architecture, RunReport};

/// Converts a bound stage's per-object [`simpim_bounds::EvalCost`] into
/// counters for `objects` evaluations.
pub(crate) fn charge_stage(
    cost: &simpim_bounds::EvalCost,
    objects: u64,
    counters: &mut OpCounters,
) {
    counters.arith += cost.arith * objects;
    counters.mul += cost.mul * objects;
    counters.div += cost.div * objects;
    counters.sqrt += cost.sqrt * objects;
    counters.stream(cost.bytes * objects);
}

/// Runs filter-and-refinement kNN with `cascade` over `dataset`. The
/// cascade direction must match the measure (lower bounds for distances,
/// upper bounds for similarities); results are exact.
///
/// # Errors
/// [`MiningError::UnsupportedMeasure`] for `Measure::Hamming` — binary
/// codes use [`crate::knn::hamming`] instead.
pub fn knn_cascade(
    dataset: &Dataset,
    cascade: &BoundCascade,
    query: &[f64],
    k: usize,
    measure: Measure,
) -> Result<KnnResult, MiningError> {
    assert!(k >= 1 && k <= dataset.len(), "k must be in 1..=N");
    assert_eq!(query.len(), dataset.dim(), "query dimensionality mismatch");
    if let Some(dir) = cascade.direction() {
        let expected = if measure.smaller_is_closer() {
            BoundDirection::LowerBoundsDistance
        } else {
            BoundDirection::UpperBoundsSimilarity
        };
        assert_eq!(dir, expected, "cascade direction must match the measure");
    }

    let mut report = RunReport::new(Architecture::ConventionalDram);
    let mut top = TopK::new(k, measure.smaller_is_closer());
    let mut other = OpCounters::new();
    let mut exact_counters = OpCounters::new();
    let n = dataset.len();
    let mut query_span = simpim_obs::span!("mining.knn.cascade", k = k as u64, n = n as u64);

    if cascade.is_empty() {
        // Degenerate cascade: plain linear scan.
        for i in 0..n {
            let v = exact_eval(measure, dataset.row(i), query, &mut exact_counters)?;
            other.prune_test();
            top.offer(i, v);
        }
        simpim_obs::metrics::histogram_record("simpim.mining.knn.refinements", n as u64);
        query_span.record("refined", n as f64);
        report.profile.record(measure.name(), exact_counters);
        report.profile.record("other", other);
        return Ok(KnnResult {
            neighbors: top.into_sorted(),
            report,
        });
    }

    let prepared = cascade.prepare(query);
    let stages: Vec<&dyn simpim_bounds::BoundStage> = cascade.stages().collect();

    // First stage over every object, then best-bound-first refinement: the
    // pruning threshold tightens fastest this way, and once the sorted
    // first-stage bound crosses it, *every* remaining candidate is pruned.
    let filter_span = simpim_obs::span!("mining.knn.filter", stage = 0u64);
    let mut first_counters = OpCounters::new();
    charge_stage(&stages[0].eval_cost(), n as u64, &mut first_counters);
    let mut order: Vec<(f64, usize)> = (0..n).map(|i| (prepared[0].bound(i), i)).collect();
    report.profile.record(&stages[0].name(), first_counters);
    simpim_par::sort_by(&mut order, |a, b| {
        let ord = a.0.total_cmp(&b.0);
        if measure.smaller_is_closer() {
            ord.then(a.1.cmp(&b.1))
        } else {
            ord.reverse().then(a.1.cmp(&b.1))
        }
    });
    other.cmp += (n as f64 * (n as f64).log2().max(1.0)) as u64;
    drop(filter_span);

    // Parallel chunked refinement (see DESIGN.md §10). Chunk boundaries
    // come from `refine_chunk_schedule(n, k)` — a pure function of the
    // workload, never the thread count — and each chunk prunes against a
    // τ snapshot taken at its start. A stale (weaker) τ can only let extra
    // candidates through to exact evaluation, never drop a true neighbor,
    // and because workers return results merged in candidate order the
    // pool update sequence is identical at any `SIMPIM_THREADS`.
    let refine_span = simpim_obs::span!("mining.knn.refine");
    let mut stage_evals = vec![0u64; stages.len()];
    let mut stage_pruned = vec![0u64; stages.len()];
    let mut refined = 0u64;
    'walk: for chunk in crate::knn::refine_chunk_schedule(n, k) {
        other.prune_test();
        if top.prunable(order[chunk.start].0) {
            // Sorted first-stage bound: this chunk and everything after
            // is prunable too.
            stage_pruned[0] += (n - chunk.start) as u64;
            break 'walk;
        }
        let snap = &top.clone();
        let cands = &order[chunk];
        let prepared = &prepared;
        let chunks = simpim_par::map_chunks(cands.len(), crate::knn::REFINE_TASK, |r| {
            let mut refined = Vec::new();
            let mut exact = OpCounters::new();
            let mut other = OpCounters::new();
            let mut evals = vec![0u64; prepared.len()];
            let mut pruned = vec![0u64; prepared.len()];
            'cand: for &(bound1, i) in &cands[r] {
                other.prune_test();
                if snap.prunable(bound1) {
                    pruned[0] += 1;
                    continue 'cand;
                }
                for (si, prep) in prepared.iter().enumerate().skip(1) {
                    evals[si] += 1;
                    other.prune_test();
                    if snap.prunable(prep.bound(i)) {
                        pruned[si] += 1;
                        continue 'cand;
                    }
                }
                exact.random_fetches += 1;
                match exact_eval(measure, dataset.row(i), query, &mut exact) {
                    Ok(v) => refined.push((i, v)),
                    Err(e) => return Err(e),
                }
            }
            Ok((refined, exact, other, evals, pruned))
        });
        for res in chunks {
            let (hits, exact, task_other, evals, pruned) = res?;
            exact_counters.add(&exact);
            other.add(&task_other);
            for (si, (e, p)) in evals.iter().zip(&pruned).enumerate() {
                stage_evals[si] += e;
                stage_pruned[si] += p;
            }
            refined += hits.len() as u64;
            for (i, v) in hits {
                other.prune_test();
                top.offer(i, v);
            }
        }
    }
    drop(refine_span);
    for (si, stage) in stages.iter().enumerate().skip(1) {
        let mut c = OpCounters::new();
        charge_stage(&stage.eval_cost(), stage_evals[si], &mut c);
        report.profile.record(&stage.name(), c);
    }

    // Flush per-bound pruning observations (one registry touch per stage
    // per query, not per object): these counters are what
    // `simpim_core::Planner::candidates_from_metrics` consumes as the
    // measured pruning ratios of Eq. 13.
    for (si, stage) in stages.iter().enumerate() {
        let seen = if si == 0 { n as u64 } else { stage_evals[si] };
        let name = stage.name();
        simpim_obs::metrics::counter_add(&format!("simpim.bounds.{name}.seen"), seen);
        simpim_obs::metrics::counter_add(&format!("simpim.bounds.{name}.pruned"), stage_pruned[si]);
        simpim_obs::metrics::gauge_set(
            &format!("simpim.bounds.{name}.transfer_bytes"),
            stage.transfer_bytes_per_object() as f64,
        );
    }
    simpim_obs::metrics::histogram_record("simpim.mining.knn.refinements", refined);
    simpim_obs::metrics::histogram_record(
        "simpim.mining.knn.candidates",
        (n as u64).saturating_sub(stage_pruned[0]),
    );
    report.profile.record(measure.name(), exact_counters);
    report.profile.record("other", other);
    query_span.record("refined", refined as f64);
    query_span.record("ops", report.profile.total_counters().total_ops() as f64);
    Ok(KnnResult {
        neighbors: top.into_sorted(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::standard::knn_standard;
    use simpim_bounds::{FnnBound, OstBound, PartBound, SmBound};
    use simpim_datasets::{generate, sample_queries, SyntheticConfig};

    fn workload() -> (Dataset, Vec<Vec<f64>>) {
        let ds = generate(&SyntheticConfig {
            n: 300,
            d: 64,
            clusters: 6,
            cluster_std: 0.04,
            stat_uniformity: 0.0,
            seed: 21,
        });
        let qs = sample_queries(&ds, 5, 0.02, 77);
        (ds, qs)
    }

    #[test]
    fn every_ed_cascade_matches_linear_scan() {
        let (ds, qs) = workload();
        let cascades: Vec<(&str, BoundCascade)> = vec![
            (
                "OST",
                BoundCascade::new(vec![Box::new(OstBound::build(&ds, 16).unwrap())]),
            ),
            (
                "SM",
                BoundCascade::new(vec![Box::new(SmBound::build(&ds, 8).unwrap())]),
            ),
            (
                "FNN",
                BoundCascade::new(vec![
                    Box::new(FnnBound::build(&ds, 1).unwrap()),
                    Box::new(FnnBound::build(&ds, 4).unwrap()),
                    Box::new(FnnBound::build(&ds, 16).unwrap()),
                ]),
            ),
            ("empty", BoundCascade::empty()),
        ];
        for q in &qs {
            let truth = knn_standard(&ds, q, 10, Measure::EuclideanSq).unwrap();
            for (name, cascade) in &cascades {
                let got = knn_cascade(&ds, cascade, q, 10, Measure::EuclideanSq).unwrap();
                assert_eq!(got.indices(), truth.indices(), "{name} must be exact");
            }
        }
    }

    #[test]
    fn similarity_cascade_matches_scan() {
        let (ds, qs) = workload();
        for (measure, target) in [
            (Measure::Cosine, simpim_bounds::part::PartTarget::Cosine),
            (Measure::Pearson, simpim_bounds::part::PartTarget::Pearson),
        ] {
            let cascade =
                BoundCascade::new(vec![Box::new(PartBound::build(&ds, 16, target).unwrap())]);
            for q in &qs {
                let truth = knn_standard(&ds, q, 10, measure).unwrap();
                let got = knn_cascade(&ds, &cascade, q, 10, measure).unwrap();
                assert_eq!(got.indices(), truth.indices(), "{measure:?}");
            }
        }
    }

    #[test]
    fn filtering_reduces_exact_evaluations() {
        let (ds, qs) = workload();
        let cascade = BoundCascade::new(vec![Box::new(FnnBound::build(&ds, 16).unwrap())]);
        let scan = knn_standard(&ds, &qs[0], 10, Measure::EuclideanSq).unwrap();
        let filtered = knn_cascade(&ds, &cascade, &qs[0], 10, Measure::EuclideanSq).unwrap();
        let scan_ed = scan.report.profile.get("ED").unwrap().counters.mul;
        let filt_ed = filtered.report.profile.get("ED").unwrap().counters.mul;
        assert!(
            filt_ed < scan_ed / 2,
            "cascade must prune most exact work: {filt_ed} vs {scan_ed}"
        );
        assert!(filtered.report.profile.get("LB_FNN^16").is_some());
    }

    #[test]
    #[should_panic(expected = "direction")]
    fn direction_mismatch_rejected() {
        let (ds, qs) = workload();
        let cascade = BoundCascade::new(vec![Box::new(
            PartBound::build(&ds, 8, simpim_bounds::part::PartTarget::Cosine).unwrap(),
        )]);
        let _ = knn_cascade(&ds, &cascade, &qs[0], 5, Measure::EuclideanSq);
    }
}

//! kNN classification algorithms (Section II-C, VI-C).

pub mod algorithms;
pub mod cascade;
pub mod hamming;
pub mod pim;
pub mod resident;
pub mod standard;

use std::ops::Range;

use simpim_similarity::{measures, Measure};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::report::RunReport;

/// Candidates handled per worker task inside one refinement chunk.
pub(crate) const REFINE_TASK: usize = 8;

/// Deterministic chunk schedule for the parallel refinement walk, a pure
/// function of `(n, k)` — never of the thread count, so chunk boundaries
/// (and with them every τ snapshot and counter) are identical at any
/// `SIMPIM_THREADS`.
///
/// The first chunk holds the `k` best-bounded candidates (they seed the
/// pool; with an underfull pool nothing is prunable anyway), then chunks
/// grow geometrically from 16. Small early chunks keep the threshold
/// snapshots nearly as fresh as the serial walk's — staleness within a
/// chunk can only *add* exact refinements, never change the result — while
/// the geometric growth amortizes fork/join overhead over the long pruned
/// tail.
pub(crate) fn refine_chunk_schedule(n: usize, k: usize) -> Vec<Range<usize>> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut next = k.max(1);
    let mut grow = 16usize;
    while start < n {
        let end = (start + next).min(n);
        chunks.push(start..end);
        start = end;
        next = grow;
        grow = (grow * 2).min(4096);
    }
    chunks
}

/// The result of one kNN query: the exact k nearest objects (best first,
/// ties broken by index) and the run's instrumentation.
#[derive(Debug, Clone)]
pub struct KnnResult {
    /// `(object index, measure value)` pairs, best first.
    pub neighbors: Vec<(usize, f64)>,
    /// Function profile + PIM timing of the query.
    pub report: RunReport,
}

impl KnnResult {
    /// The neighbor indices only.
    pub fn indices(&self) -> Vec<usize> {
        self.neighbors.iter().map(|&(i, _)| i).collect()
    }
}

/// Ordered candidate pool of size k — a simple sorted vector, which for
/// the small `k` of kNN (1–100) beats a binary heap and keeps deterministic
/// tie-breaking (by index).
#[derive(Debug, Clone)]
pub struct TopK {
    entries: Vec<(usize, f64)>, // sorted best-first
    k: usize,
    smaller_is_closer: bool,
}

impl TopK {
    /// An empty pool of capacity `k`. `smaller_is_closer` selects the
    /// direction: `true` for distances (ED, HD), `false` for similarities
    /// (CS, PCC).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, smaller_is_closer: bool) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            entries: Vec::with_capacity(k + 1),
            k,
            smaller_is_closer,
        }
    }

    fn better(&self, a: f64, ai: usize, b: f64, bi: usize) -> bool {
        if a != b {
            if self.smaller_is_closer {
                a < b
            } else {
                a > b
            }
        } else {
            ai < bi
        }
    }

    /// Offers a candidate; returns `true` when it entered the pool.
    pub fn offer(&mut self, idx: usize, value: f64) -> bool {
        if self.entries.len() == self.k {
            let (wi, wv) = *self.entries.last().expect("non-empty at k");
            if !self.better(value, idx, wv, wi) {
                return false;
            }
        }
        let pos = self
            .entries
            .partition_point(|&(ei, ev)| self.better(ev, ei, value, idx));
        self.entries.insert(pos, (idx, value));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        true
    }

    /// Current pruning threshold: the k-th best value (or the worst
    /// possible value while the pool is underfull).
    pub fn threshold(&self) -> f64 {
        if self.entries.len() < self.k {
            if self.smaller_is_closer {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            }
        } else {
            self.entries.last().expect("non-empty").1
        }
    }

    /// `true` when a bound value proves an object cannot enter the pool.
    pub fn prunable(&self, bound: f64) -> bool {
        if self.smaller_is_closer {
            bound > self.threshold()
        } else {
            bound < self.threshold()
        }
    }

    /// The pool's `(index, value)` pairs, best first.
    pub fn into_sorted(self) -> Vec<(usize, f64)> {
        self.entries
    }
}

/// Evaluates a measure exactly and charges the per-object cost convention:
/// ED streams the candidate and runs the subtract-multiply-add kernel;
/// CS/PCC run the dot kernel plus the precomputed-statistics combination.
/// Hamming distance is defined on binary codes, not float rows, and yields
/// [`MiningError::UnsupportedMeasure`].
pub fn exact_eval(
    measure: Measure,
    p: &[f64],
    q: &[f64],
    counters: &mut OpCounters,
) -> Result<f64, MiningError> {
    let d = p.len() as u64;
    match measure {
        Measure::EuclideanSq => {
            counters.euclidean_kernel(d, d * 8);
            Ok(measures::euclidean_sq(p, q))
        }
        Measure::Cosine => {
            counters.dot_kernel(d, d * 8);
            counters.stream(8); // precomputed ‖p‖
            counters.div += 1;
            Ok(measures::cosine(p, q))
        }
        Measure::Pearson => {
            counters.dot_kernel(d, d * 8);
            counters.stream(16); // precomputed Φa(p), Φb(p)
            counters.arith += 2;
            counters.mul += 2;
            counters.div += 1;
            Ok(measures::pearson(p, q))
        }
        Measure::Hamming => Err(MiningError::UnsupportedMeasure { measure }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_k_best_distances() {
        let mut t = TopK::new(3, true);
        for (i, v) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.offer(i, *v);
        }
        let out = t.into_sorted();
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
    }

    #[test]
    fn topk_similarity_direction() {
        let mut t = TopK::new(2, false);
        for (i, v) in [0.1, 0.9, 0.5].iter().enumerate() {
            t.offer(i, *v);
        }
        assert_eq!(
            t.into_sorted().iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn topk_tie_breaks_by_index() {
        let mut t = TopK::new(2, true);
        t.offer(5, 1.0);
        t.offer(2, 1.0);
        t.offer(9, 1.0);
        assert_eq!(
            t.into_sorted().iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![2, 5]
        );
    }

    #[test]
    fn threshold_and_prunable() {
        let mut t = TopK::new(2, true);
        assert_eq!(t.threshold(), f64::INFINITY);
        assert!(!t.prunable(1e18));
        t.offer(0, 1.0);
        t.offer(1, 2.0);
        assert_eq!(t.threshold(), 2.0);
        assert!(t.prunable(2.5));
        assert!(!t.prunable(2.0)); // equal bound cannot prove exclusion
    }

    #[test]
    fn exact_eval_charges_costs() {
        let mut c = OpCounters::new();
        let v = exact_eval(Measure::EuclideanSq, &[0.0, 0.0], &[3.0, 4.0], &mut c).unwrap();
        assert_eq!(v, 25.0);
        assert_eq!(c.bytes_streamed, 16);
        assert_eq!(c.mul, 2);
        let mut c2 = OpCounters::new();
        exact_eval(Measure::Cosine, &[1.0, 0.0], &[1.0, 0.0], &mut c2).unwrap();
        assert_eq!(c2.div, 1);
    }

    #[test]
    fn refine_schedule_covers_every_candidate_exactly_once() {
        for (n, k) in [(0, 5), (1, 5), (7, 10), (300, 10), (5000, 1), (4097, 100)] {
            let chunks = refine_chunk_schedule(n, k);
            let mut expect = 0usize;
            for c in &chunks {
                assert_eq!(c.start, expect, "n={n} k={k}");
                assert!(c.end > c.start, "n={n} k={k}");
                expect = c.end;
            }
            assert_eq!(expect, n, "n={n} k={k}");
            if n > k {
                assert_eq!(chunks[0], 0..k, "warm-up chunk seeds the pool");
            }
        }
    }

    #[test]
    fn exact_eval_hamming_is_a_typed_error() {
        let mut c = OpCounters::new();
        let err = exact_eval(Measure::Hamming, &[1.0], &[1.0], &mut c).unwrap_err();
        assert_eq!(
            err,
            MiningError::UnsupportedMeasure {
                measure: Measure::Hamming
            }
        );
        assert_eq!(c.bytes_streamed, 0, "no cost charged for a rejected call");
    }
}

//! Named kNN algorithm constructors: the bound cascades of the paper's
//! baselines.
//!
//! * `OST` \[24\]: one `LB_OST` filter with split point `d/2`.
//! * `SM` \[25\]: one `LB_SM` filter at `d/4` segments.
//! * `FNN` \[26\]: the three-level `LB_FNN^{d/64} → LB_FNN^{d/16} →
//!   LB_FNN^{d/4}` pipeline of Fig. 12(a).
//!
//! Dimensionalities that are not exact multiples use the nearest divisor
//! (`simpim-similarity::segments::nearest_divisor`), matching how the
//! original implementations round their segment counts.

use simpim_bounds::part::PartTarget;
use simpim_bounds::{BoundCascade, FnnBound, OstBound, PartBound, SmBound};
use simpim_similarity::segments::nearest_divisor;
use simpim_similarity::{Dataset, Measure, SimilarityError};

/// The FNN cascade's segment counts for dimensionality `d`:
/// nearest divisors to `d/64`, `d/16`, `d/4`, deduplicated and ascending.
pub fn fnn_levels(d: usize) -> Vec<usize> {
    let mut levels: Vec<usize> = [64usize, 16, 4]
        .iter()
        .map(|&f| nearest_divisor(d, (d / f).max(1)))
        .collect();
    levels.sort_unstable();
    levels.dedup();
    levels
}

/// Builds the `OST` cascade (split at `d/2`).
pub fn ost_cascade(dataset: &Dataset) -> Result<BoundCascade, SimilarityError> {
    let d = dataset.dim();
    Ok(BoundCascade::new(vec![Box::new(OstBound::build(
        dataset,
        (d / 2).max(1),
    )?)]))
}

/// Builds the `SM` cascade (`d/4` segments).
pub fn sm_cascade(dataset: &Dataset) -> Result<BoundCascade, SimilarityError> {
    let d = dataset.dim();
    let segs = nearest_divisor(d, (d / 4).max(1));
    Ok(BoundCascade::new(vec![Box::new(SmBound::build(
        dataset, segs,
    )?)]))
}

/// Builds the `FNN` cascade (Fig. 12a).
pub fn fnn_cascade(dataset: &Dataset) -> Result<BoundCascade, SimilarityError> {
    let mut stages: Vec<Box<dyn simpim_bounds::BoundStage>> = Vec::new();
    for segs in fnn_levels(dataset.dim()) {
        stages.push(Box::new(FnnBound::build(dataset, segs)?));
    }
    Ok(BoundCascade::new(stages))
}

/// Builds the maximum-similarity cascade (`UB_part` at `d/2`) for CS/PCC
/// kNN.
pub fn part_cascade(dataset: &Dataset, measure: Measure) -> Result<BoundCascade, SimilarityError> {
    let target = match measure {
        Measure::Cosine => PartTarget::Cosine,
        Measure::Pearson => PartTarget::Pearson,
        _ => PartTarget::Dot,
    };
    let d = dataset.dim();
    Ok(BoundCascade::new(vec![Box::new(PartBound::build(
        dataset,
        (d / 2).max(1),
        target,
    )?)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnn_levels_match_paper_on_msd() {
        // d = 420: nearest divisors to 6, 26, 105 → 6, 28, 105; the paper
        // names these LB_FNN^7-ish levels (420/64 ≈ 6.6).
        assert_eq!(fnn_levels(420), vec![6, 28, 105]);
        // Power-of-two d is exact: 1024 → 16, 64, 256.
        assert_eq!(fnn_levels(1024), vec![16, 64, 256]);
        // Tiny d degenerates without duplicates.
        assert_eq!(fnn_levels(4), vec![1]);
    }

    #[test]
    fn cascades_build_on_awkward_dims() {
        let ds = Dataset::from_rows(&[vec![0.5; 150], vec![0.4; 150]]).unwrap();
        assert_eq!(fnn_cascade(&ds).unwrap().len(), fnn_levels(150).len());
        assert_eq!(ost_cascade(&ds).unwrap().len(), 1);
        assert_eq!(sm_cascade(&ds).unwrap().len(), 1);
        assert_eq!(part_cascade(&ds, Measure::Cosine).unwrap().len(), 1);
    }

    #[test]
    fn fnn_cascade_is_ordered_coarse_to_fine() {
        let ds = Dataset::from_rows(&[vec![0.5; 64], vec![0.4; 64]]).unwrap();
        let c = fnn_cascade(&ds).unwrap();
        let dps: Vec<usize> = c.stages().map(|s| s.d_prime()).collect();
        let mut sorted = dps.clone();
        sorted.sort_unstable();
        assert_eq!(dps, sorted);
    }
}

//! k-means clustering algorithms (Section II-C, VI-D).
//!
//! All four algorithms (Lloyd / Elkan / Drake / Yinyang) are exact
//! accelerations of the same iteration: given identical initial centers
//! they produce identical assignments every iteration — an invariant the
//! integration tests enforce. Each takes an optional
//! [`pim::PimAssist`]: when present, `LB_PIM-ED` (recomputed per iteration
//! for the current centers; the *data* stays programmed, so no crossbar
//! re-programming) is consulted before every exact ED of the assign step,
//! yielding the `-PIM` variant of the paper.

pub mod drake;
pub mod elkan;
pub mod lloyd;
pub mod pim;
pub mod yinyang;

use simpim_similarity::{measures, Dataset};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::report::RunReport;

/// Points handled per worker task in the parallel assign steps. A fixed
/// constant — chunk boundaries must never depend on the thread count, so
/// per-chunk counters merge in the same order at any `SIMPIM_THREADS`.
pub(crate) const ASSIGN_CHUNK: usize = 64;

/// Shared entry-point validation: `k` must be in `1..=N`.
pub(crate) fn check_k(k: usize, n: usize) -> Result<(), MiningError> {
    if k >= 1 && k <= n {
        Ok(())
    } else {
        Err(MiningError::InvalidArgument {
            what: format!("k = {k} must be in 1..={n}"),
        })
    }
}

/// Flushes one iteration's observations: a counter of iterations run per
/// algorithm and a histogram of how many points changed cluster
/// (`simpim.mining.kmeans.<algo>.*`).
pub(crate) fn record_iteration(algo: &str, reassigned: u64) {
    simpim_obs::metrics::counter_add(&format!("simpim.mining.kmeans.{algo}.iterations"), 1);
    simpim_obs::metrics::histogram_record(
        &format!("simpim.mining.kmeans.{algo}.reassignments"),
        reassigned,
    );
}

/// Configuration shared by every k-means variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for initial-center selection (the paper fixes the same initial
    /// centers across algorithms; so do we).
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 50,
            seed: 0xC1u64,
        }
    }
}

/// Result of one clustering run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Cluster index per object.
    pub assignments: Vec<usize>,
    /// Final centers (k × d).
    pub centers: Vec<Vec<f64>>,
    /// Iterations executed (assign+update pairs).
    pub iterations: usize,
    /// Sum of squared distances to assigned centers.
    pub inertia: f64,
    /// Function profile + PIM timing.
    pub report: RunReport,
}

/// Deterministic initial centers: `k` evenly strided rows (identical
/// across algorithms and architectures, per the paper's methodology).
pub fn init_centers(dataset: &Dataset, k: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(k >= 1 && k <= dataset.len(), "k must be in 1..=N");
    let n = dataset.len();
    let stride = (n / k).max(1);
    let offset = (seed as usize) % stride.max(1);
    (0..k)
        .map(|c| dataset.row((offset + c * stride) % n).to_vec())
        .collect()
}

/// Euclidean distance (not squared) between a point and a center, charged
/// to the `ED` convention: the kernel plus one square root.
pub(crate) fn exact_dist(p: &[f64], c: &[f64], counters: &mut OpCounters) -> f64 {
    let d = p.len() as u64;
    counters.euclidean_kernel(d, d * 8);
    counters.sqrt += 1;
    measures::euclidean_sq(p, c).sqrt()
}

/// The update step: new centers as assigned-point means; clusters left
/// empty keep their previous center. Charged to `other` (the update step
/// is never offloaded — it needs exact division).
pub(crate) fn update_centers(
    dataset: &Dataset,
    assignments: &[usize],
    old: &[Vec<f64>],
    counters: &mut OpCounters,
) -> Vec<Vec<f64>> {
    let k = old.len();
    let d = dataset.dim();
    let mut sums = vec![vec![0.0f64; d]; k];
    let mut counts = vec![0usize; k];
    for (row, &a) in dataset.rows().zip(assignments) {
        counts[a] += 1;
        for (s, &v) in sums[a].iter_mut().zip(row) {
            *s += v;
        }
    }
    counters.stream(dataset.len() as u64 * d as u64 * 8);
    counters.arith += dataset.len() as u64 * d as u64;
    counters.div += (k * d) as u64;
    counters.write((k * d) as u64 * 8);
    sums.into_iter()
        .zip(counts)
        .zip(old)
        .map(|((mut s, c), prev)| {
            if c == 0 {
                prev.clone()
            } else {
                for v in &mut s {
                    *v /= c as f64;
                }
                s
            }
        })
        .collect()
}

/// Per-center drift `δ(c) = dist(old_c, new_c)` after an update — the
/// quantity the triangle-inequality algorithms adjust their bounds by.
pub(crate) fn center_drifts(
    old: &[Vec<f64>],
    new: &[Vec<f64>],
    counters: &mut OpCounters,
) -> Vec<f64> {
    old.iter()
        .zip(new)
        .map(|(o, n)| exact_dist(o, n, counters))
        .collect()
}

/// Total within-cluster sum of squared distances.
pub fn inertia(dataset: &Dataset, centers: &[Vec<f64>], assignments: &[usize]) -> f64 {
    dataset
        .rows()
        .zip(assignments)
        .map(|(row, &a)| measures::euclidean_sq(row, &centers[a]))
        .sum()
}

/// Wraps up a finished run.
pub(crate) fn finish(
    dataset: &Dataset,
    assignments: Vec<usize>,
    centers: Vec<Vec<f64>>,
    iterations: usize,
    report: RunReport,
) -> KmeansResult {
    let inertia = inertia(dataset, &centers, &assignments);
    KmeansResult {
        assignments,
        centers,
        iterations,
        inertia,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(&[
            vec![0.1, 0.1],
            vec![0.2, 0.1],
            vec![0.8, 0.9],
            vec![0.9, 0.8],
            vec![0.15, 0.12],
            vec![0.85, 0.88],
        ])
        .unwrap()
    }

    #[test]
    fn init_is_deterministic_and_strided() {
        let c1 = init_centers(&ds(), 3, 7);
        let c2 = init_centers(&ds(), 3, 7);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 3);
        assert_ne!(init_centers(&ds(), 3, 8), c1);
    }

    #[test]
    fn update_takes_means_and_preserves_empty() {
        let mut c = OpCounters::new();
        let old = vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![0.3, 0.3]];
        // Cluster 2 receives no points.
        let assignments = vec![0, 0, 1, 1, 0, 1];
        let new = update_centers(&ds(), &assignments, &old, &mut c);
        assert!((new[0][0] - (0.1 + 0.2 + 0.15) / 3.0).abs() < 1e-12);
        assert_eq!(new[2], old[2], "empty cluster keeps its center");
        assert!(c.div > 0);
        assert!(c.bytes_written > 0);
    }

    #[test]
    fn drift_is_center_movement() {
        let mut c = OpCounters::new();
        let old = vec![vec![0.0, 0.0]];
        let new = vec![vec![3.0, 4.0]];
        let drifts = center_drifts(&old, &new, &mut c);
        assert!((drifts[0] - 5.0).abs() < 1e-12);
        assert_eq!(c.sqrt, 1);
    }

    #[test]
    fn inertia_of_perfect_assignment_is_small() {
        let data = ds();
        let centers = vec![vec![0.15, 0.11], vec![0.85, 0.8866]];
        let assignments = vec![0, 0, 1, 1, 0, 1];
        assert!(inertia(&data, &centers, &assignments) < 0.02);
    }
}

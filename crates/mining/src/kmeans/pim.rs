//! `LB_PIM-ED` assistance for the k-means assign step.
//!
//! The dataset's floor vectors stay programmed on the crossbars across all
//! iterations (no re-programming — Section V-C's endurance constraint);
//! each iteration the *centers* are the queries: one dot-product batch per
//! center yields `LB_PIM-ED(pᵢ, c)` for every point at `3·b` bits of host
//! traffic per pair, shrinking the assign step's transfer from `N·k·d·b`
//! to `N·k·3·b` (Section VI-D).
//!
//! Every algorithm consults [`PimAssist::lb_dist`] immediately before an
//! exact ED it is about to compute; a bound at or above the current
//! threshold skips the computation losslessly.

use simpim_core::{CoreError, PimExecutor};
use simpim_simkit::OpCounters;

use crate::report::RunReport;

/// Per-iteration PIM lower bounds for all (point, center) pairs.
pub struct PimAssist<'a> {
    executor: &'a mut PimExecutor,
    /// `lb_sq[c * n + i]` — lower bound on the **squared** distance.
    lb_sq: Vec<f64>,
    n: usize,
    k: usize,
}

impl<'a> PimAssist<'a> {
    /// Wraps a prepared executor (`prepare_euclidean` over the clustering
    /// dataset).
    pub fn new(executor: &'a mut PimExecutor) -> Self {
        Self {
            executor,
            lb_sq: Vec::new(),
            n: 0,
            k: 0,
        }
    }

    /// Recomputes the bound matrix for the current centers: one PIM batch
    /// per center. PIM latency lands in `report.pim`; the host-side `G`
    /// combination is charged per batch.
    pub fn refresh(
        &mut self,
        centers: &[Vec<f64>],
        report: &mut RunReport,
    ) -> Result<(), CoreError> {
        self.k = centers.len();
        self.lb_sq.clear();
        let mut g_counters = OpCounters::new();
        for center in centers {
            // Centers are convex combinations of normalized points, hence
            // themselves in [0, 1]^d; clamp defensively against rounding.
            let clamped: Vec<f64> = center.iter().map(|&v| v.clamp(0.0, 1.0)).collect();
            let batch = self.executor.lb_ed_batch(&clamped)?;
            report.pim.add(&batch.timing);
            self.n = batch.values.len();
            g_counters.stream(batch.values.len() as u64 * batch.host_bytes_per_object);
            g_counters.arith += 4 * batch.values.len() as u64;
            g_counters.mul += 2 * batch.values.len() as u64;
            self.lb_sq.extend_from_slice(&batch.values);
        }
        report
            .profile
            .record(&format!("G({})", self.executor.bound_name()), g_counters);
        Ok(())
    }

    /// Lower bound on the **squared** distance between point `i` and the
    /// `c`-th center of the last refresh.
    #[inline]
    pub fn lb_sq(&self, i: usize, c: usize) -> f64 {
        debug_assert!(i < self.n && c < self.k, "refresh() before querying bounds");
        self.lb_sq[c * self.n + i]
    }

    /// Lower bound on the plain Euclidean distance (monotone square root).
    #[inline]
    pub fn lb_dist(&self, i: usize, c: usize) -> f64 {
        self.lb_sq(i, c).sqrt()
    }

    /// Number of centers covered by the last refresh.
    pub fn num_centers(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Architecture;
    use simpim_core::executor::ExecutorConfig;
    use simpim_datasets::{generate, SyntheticConfig};
    use simpim_reram::{CrossbarConfig, PimConfig};
    use simpim_similarity::measures::euclidean_sq;
    use simpim_similarity::NormalizedDataset;

    #[test]
    fn bounds_hold_for_all_pairs() {
        let ds = generate(&SyntheticConfig {
            n: 60,
            d: 16,
            clusters: 3,
            cluster_std: 0.05,
            stat_uniformity: 0.0,
            seed: 9,
        });
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let cfg = ExecutorConfig {
            pim: PimConfig {
                crossbar: CrossbarConfig {
                    size: 32,
                    adc_bits: 11,
                    ..Default::default()
                },
                num_crossbars: 50_000,
                ..Default::default()
            },
            alpha: 1e6,
            operand_bits: 32,
            double_buffer: false,
            parallel_regions: true,
            faults: None,
            scrub_interval: 0,
        };
        let mut exec = PimExecutor::prepare_euclidean(cfg, &nds).unwrap();
        let mut assist = PimAssist::new(&mut exec);
        let centers = vec![vec![0.3; 16], vec![0.7; 16], vec![0.5; 16]];
        let mut report = RunReport::new(Architecture::ReRamPim);
        assist.refresh(&centers, &mut report).unwrap();
        assert_eq!(assist.num_centers(), 3);
        for (c, center) in centers.iter().enumerate() {
            for i in 0..60 {
                let exact = euclidean_sq(ds.row(i), center);
                assert!(assist.lb_sq(i, c) <= exact + 1e-9, "i={i} c={c}");
                assert!(assist.lb_dist(i, c) <= exact.sqrt() + 1e-9);
            }
        }
        assert!(report.pim.total_ns() > 0.0);
        assert!(report.profile.get("G(LB_PIM-ED)").is_some());
    }
}

//! Drake's k-means \[31\]: adaptive distance bounds.
//!
//! Instead of Elkan's `k` lower bounds per point, Drake tracks only the
//! `b < k` next-closest centers with individual (sorted) lower bounds plus
//! one aggregate lower bound for all remaining centers. Points whose upper
//! bound undercuts every tracked bound are settled without any distance
//! computation; a violated aggregate bound forces a full rescan that
//! rebuilds the tracked set. This implementation fixes `b = ⌈k/4⌉`
//! (Drake's starting value; the original paper adapts `b` downward —
//! noted as a simplification in DESIGN.md).
//!
//! ED dominates Drake's profile consistently (unlike Elkan), which is why
//! `Drake-PIM` achieves the paper's best k-means speedup (up to 8.5×).

use simpim_similarity::Dataset;
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::kmeans::pim::PimAssist;
use crate::kmeans::{
    center_drifts, check_k, exact_dist, finish, init_centers, record_iteration, update_centers,
    KmeansConfig, KmeansResult,
};
use crate::report::{Architecture, RunReport};

/// Per-point Drake state: assigned center, upper bound, the `b` tracked
/// `(center, lower bound)` pairs sorted by bound, and the aggregate bound
/// for the untracked rest.
#[derive(Debug, Clone)]
struct PointState {
    assigned: usize,
    ub: f64,
    tracked: Vec<(usize, f64)>,
    lb_rest: f64,
}

/// Fully rescans one point: exact distances (PIM-filtered when available)
/// to every center, rebuilding the tracked set.
#[allow(clippy::too_many_arguments)]
fn rescan(
    i: usize,
    row: &[f64],
    centers: &[Vec<f64>],
    b: usize,
    pim: Option<&PimAssist<'_>>,
    ed: &mut OpCounters,
    other: &mut OpCounters,
    state: &mut PointState,
) {
    let k = centers.len();
    // (bound-or-distance, center, is_exact): PIM-skipped centers carry
    // their lower bound, which is valid for tracked/rest bounds.
    let mut entries: Vec<(f64, usize)> = Vec::with_capacity(k);
    let mut best = f64::INFINITY;
    let mut best_c = usize::MAX;
    for (c, center) in centers.iter().enumerate() {
        let value = if let Some(assist) = pim {
            other.prune_test();
            let lb_pim = assist.lb_dist(i, c);
            if best_c != usize::MAX && lb_pim >= best {
                lb_pim
            } else {
                let dist = exact_dist(row, center, ed);
                other.prune_test();
                if dist < best {
                    best = dist;
                    best_c = c;
                }
                dist
            }
        } else {
            let dist = exact_dist(row, center, ed);
            other.prune_test();
            if dist < best {
                best = dist;
                best_c = c;
            }
            dist
        };
        entries.push((value, c));
    }
    // best_c's entry is its exact distance; order the rest by bound.
    entries.retain(|&(_, c)| c != best_c);
    entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    other.cmp += (k as f64 * (k as f64).log2().max(1.0)) as u64; // sort cost
    state.assigned = best_c;
    state.ub = best;
    state.tracked = entries
        .iter()
        .take(b)
        .copied()
        .map(|(v, c)| (c, v))
        .collect();
    state.lb_rest = entries.get(b).map(|&(v, _)| v).unwrap_or(f64::INFINITY);
}

/// One point's Drake assign step: settle on bounds when possible,
/// otherwise tighten / rescan. Mutates only `state` (plus the per-chunk
/// counters), which is what makes the chunked parallel assign safe.
#[allow(clippy::too_many_arguments)]
fn assign_point(
    i: usize,
    row: &[f64],
    centers: &[Vec<f64>],
    b: usize,
    pim: Option<&PimAssist<'_>>,
    ed: &mut OpCounters,
    other: &mut OpCounters,
    changed: &mut u64,
    st: &mut PointState,
) {
    let first_lb = st.tracked.first().map(|&(_, v)| v).unwrap_or(st.lb_rest);
    other.prune_test();
    if st.ub <= first_lb.min(st.lb_rest) {
        return; // settled without any distance
    }
    // Tighten the upper bound.
    st.ub = exact_dist(row, &centers[st.assigned], ed);
    other.prune_test();
    if st.ub <= first_lb.min(st.lb_rest) {
        return;
    }
    if st.lb_rest < st.ub {
        // Aggregate bound violated: rebuild from scratch.
        let old = st.assigned;
        rescan(i, row, centers, b, pim, ed, other, st);
        if st.assigned != old {
            *changed += 1;
        }
        return;
    }
    // Scan tracked centers in bound order.
    let old = st.assigned;
    for t in 0..st.tracked.len() {
        let (c, lbv) = st.tracked[t];
        other.prune_test();
        if lbv >= st.ub {
            break; // sorted: the rest cannot win either
        }
        if let Some(assist) = pim {
            other.prune_test();
            let lb_pim = assist.lb_dist(i, c);
            if lb_pim >= st.ub {
                st.tracked[t].1 = lbv.max(lb_pim);
                continue;
            }
        }
        let dist = exact_dist(row, &centers[c], ed);
        other.prune_test();
        if dist < st.ub {
            // Swap: the old assignment joins the tracked set.
            let (old_a, old_ub) = (st.assigned, st.ub);
            st.assigned = c;
            st.ub = dist;
            st.tracked[t] = (old_a, old_ub);
        } else {
            st.tracked[t].1 = dist;
        }
    }
    st.tracked
        .sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    if st.assigned != old {
        *changed += 1;
    }
}

/// Runs Drake's algorithm; pass a [`PimAssist`] for `Drake-PIM`.
pub fn kmeans_drake(
    dataset: &Dataset,
    cfg: &KmeansConfig,
    mut pim: Option<&mut PimAssist<'_>>,
) -> Result<KmeansResult, MiningError> {
    check_k(cfg.k, dataset.len())?;
    let arch = if pim.is_some() {
        Architecture::ReRamPim
    } else {
        Architecture::ConventionalDram
    };
    let mut report = RunReport::new(arch);
    let k = cfg.k;
    let n = dataset.len();
    let b = k.div_ceil(4).max(1).min(k.saturating_sub(1).max(1));
    let mut centers = init_centers(dataset, k, cfg.seed);

    // Initial full pass.
    let mut states: Vec<PointState> = Vec::with_capacity(n);
    {
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        for (i, row) in dataset.rows().enumerate() {
            let mut st = PointState {
                assigned: 0,
                ub: f64::INFINITY,
                tracked: Vec::new(),
                lb_rest: 0.0,
            };
            rescan(
                i,
                row,
                &centers,
                b,
                pim.as_deref(),
                &mut ed,
                &mut other,
                &mut st,
            );
            states.push(st);
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
    }

    let mut iterations = 1;
    for _ in 1..cfg.max_iters {
        let mut iter_span = simpim_obs::span!(
            "mining.kmeans.drake.iteration",
            iter = iterations as u64 + 1
        );
        let assignments: Vec<usize> = states.iter().map(|s| s.assigned).collect();
        let mut upd = OpCounters::new();
        let new_centers = update_centers(dataset, &assignments, &centers, &mut upd);
        report.profile.record("other", upd);

        // Bound maintenance under drift.
        let mut bound_upd = OpCounters::new();
        let drifts = center_drifts(&centers, &new_centers, &mut bound_upd);
        let max_drift = drifts.iter().cloned().fold(0.0f64, f64::max);
        for st in &mut states {
            st.ub += drifts[st.assigned];
            for (c, lbv) in &mut st.tracked {
                *lbv = (*lbv - drifts[*c]).max(0.0);
            }
            st.tracked
                .sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            st.lb_rest = (st.lb_rest - max_drift).max(0.0);
        }
        bound_upd.arith += (n * (b + 2)) as u64;
        bound_upd.stream((n * b) as u64 * 16);
        bound_upd.write((n * b) as u64 * 8);
        report.profile.record("bound update", bound_upd);
        centers = new_centers;

        if max_drift == 0.0 {
            break;
        }

        iterations += 1;
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }

        // Assign step, parallelized over fixed chunks of the per-point
        // states (each point touches only `states[i]`); chunk counters
        // merge in order — bit-identical at any `SIMPIM_THREADS`.
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        let mut changed = 0u64;
        let assist = pim.as_deref();
        let centers_ref = &centers;
        const CH: usize = crate::kmeans::ASSIGN_CHUNK;
        let jobs: Vec<simpim_par::Job<'_, (OpCounters, OpCounters, u64)>> = states
            .chunks_mut(CH)
            .enumerate()
            .map(|(ci, chunk)| {
                Box::new(move || {
                    let mut ed = OpCounters::new();
                    let mut other = OpCounters::new();
                    let mut changed = 0u64;
                    for (j, st) in chunk.iter_mut().enumerate() {
                        let i = ci * CH + j;
                        let row = dataset.row(i);
                        assign_point(
                            i,
                            row,
                            centers_ref,
                            b,
                            assist,
                            &mut ed,
                            &mut other,
                            &mut changed,
                            st,
                        );
                    }
                    (ed, other, changed)
                }) as simpim_par::Job<'_, _>
            })
            .collect();
        for (chunk_ed, chunk_other, chunk_changed) in simpim_par::join_all(jobs) {
            ed.add(&chunk_ed);
            other.add(&chunk_other);
            changed += chunk_changed;
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
        record_iteration("drake", changed);
        iter_span.record("reassigned", changed as f64);
        if changed == 0 {
            break;
        }
    }

    let assignments: Vec<usize> = states.iter().map(|s| s.assigned).collect();
    Ok(finish(dataset, assignments, centers, iterations, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::lloyd::kmeans_lloyd;
    use simpim_datasets::{generate, SyntheticConfig};

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n: 150,
            d: 12,
            clusters: 4,
            cluster_std: 0.02,
            stat_uniformity: 0.0,
            seed: 71,
        })
    }

    #[test]
    fn matches_lloyd_exactly() {
        let ds = data();
        for k in [2usize, 5, 8] {
            let cfg = KmeansConfig {
                k,
                max_iters: 40,
                seed: 3,
            };
            let lloyd = kmeans_lloyd(&ds, &cfg, None).unwrap();
            let drake = kmeans_drake(&ds, &cfg, None).unwrap();
            assert_eq!(drake.assignments, lloyd.assignments, "k={k}");
            assert!((drake.inertia - lloyd.inertia).abs() < 1e-9);
        }
    }

    #[test]
    fn fewer_exact_distances_than_lloyd() {
        let ds = data();
        let cfg = KmeansConfig {
            k: 8,
            max_iters: 40,
            seed: 3,
        };
        let lloyd = kmeans_lloyd(&ds, &cfg, None).unwrap();
        let drake = kmeans_drake(&ds, &cfg, None).unwrap();
        let l = lloyd.report.profile.get("ED").unwrap().counters.mul;
        let d = drake.report.profile.get("ED").unwrap().counters.mul;
        assert!(d < l, "{d} !< {l}");
    }

    #[test]
    fn tracks_fewer_bounds_than_elkan_memory() {
        // Structural check: Drake's bound-update traffic is below Elkan's
        // O(N·k) because only b = ⌈k/4⌉ bounds are maintained.
        use crate::kmeans::elkan::kmeans_elkan;
        let ds = data();
        let cfg = KmeansConfig {
            k: 8,
            max_iters: 40,
            seed: 3,
        };
        let elkan = kmeans_elkan(&ds, &cfg, None).unwrap();
        let drake = kmeans_drake(&ds, &cfg, None).unwrap();
        let e = elkan
            .report
            .profile
            .get("bound update")
            .unwrap()
            .counters
            .bytes_written;
        let d = drake
            .report
            .profile
            .get("bound update")
            .unwrap()
            .counters
            .bytes_written;
        assert!(d < e, "{d} !< {e}");
    }
}

//! Elkan's k-means \[30\]: the full triangle-inequality accelerator.
//!
//! Per point, Elkan maintains an upper bound `ub(i)` on the distance to
//! its assigned center and `k` lower bounds `lb(i,c)`; per center pair it
//! keeps exact distances. The filters:
//!
//! * point filter — `ub(i) ≤ ½·min_{c≠a} d(a,c)` proves the assignment;
//! * center filter — `ub(i) ≤ lb(i,c)` or `ub(i) ≤ ½·d(a,c)` skips `c`.
//!
//! After each update step every bound shifts by the center drift. Keeping
//! `k` lower bounds per point makes the *bound update* pass `O(N·k)` —
//! the overhead that caps Elkan's PIM-oracle at ~2.2× in the paper
//! (Fig. 7b): ED is not always Elkan's bottleneck.
//!
//! With a [`PimAssist`], `LB_PIM-ED` is consulted right before each exact
//! distance; a skipped computation still yields a valid `lb(i,c)` (the PIM
//! bound itself), so the algorithm stays exact (`Elkan-PIM`).

use simpim_similarity::Dataset;
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::kmeans::pim::PimAssist;
use crate::kmeans::{
    center_drifts, check_k, exact_dist, finish, init_centers, record_iteration, update_centers,
    KmeansConfig, KmeansResult,
};
use crate::report::{Architecture, RunReport};

/// Runs Elkan's algorithm; pass a [`PimAssist`] for `Elkan-PIM`.
pub fn kmeans_elkan(
    dataset: &Dataset,
    cfg: &KmeansConfig,
    mut pim: Option<&mut PimAssist<'_>>,
) -> Result<KmeansResult, MiningError> {
    check_k(cfg.k, dataset.len())?;
    let arch = if pim.is_some() {
        Architecture::ReRamPim
    } else {
        Architecture::ConventionalDram
    };
    let mut report = RunReport::new(arch);
    let k = cfg.k;
    let n = dataset.len();
    let mut centers = init_centers(dataset, k, cfg.seed);

    // Initial assignment pass: exact distances seed ub / lb (PIM-filtered
    // skips still leave valid lower bounds in lb).
    let mut assignments = vec![0usize; n];
    let mut ub = vec![0.0f64; n];
    let mut lb = vec![0.0f64; n * k];
    {
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        for (i, row) in dataset.rows().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_c = usize::MAX;
            for (c, center) in centers.iter().enumerate() {
                if let Some(assist) = pim.as_deref() {
                    other.prune_test();
                    let lb_pim = assist.lb_dist(i, c);
                    if best_c != usize::MAX && lb_pim >= best {
                        lb[i * k + c] = lb_pim;
                        continue;
                    }
                }
                let dist = exact_dist(row, center, &mut ed);
                lb[i * k + c] = dist;
                other.prune_test();
                if dist < best {
                    best = dist;
                    best_c = c;
                }
            }
            assignments[i] = best_c;
            ub[i] = best;
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
    }

    let mut iterations = 1;
    let mut cc = vec![0.0f64; k * k];
    for _ in 1..cfg.max_iters {
        let mut iter_span = simpim_obs::span!(
            "mining.kmeans.elkan.iteration",
            iter = iterations as u64 + 1
        );
        // Update step first (the initial pass was iteration 1's assign).
        let mut upd = OpCounters::new();
        let new_centers = update_centers(dataset, &assignments, &centers, &mut upd);
        report.profile.record("other", upd);

        // Drift-adjust every bound (the expensive O(N·k) pass).
        let mut bound_upd = OpCounters::new();
        let drifts = center_drifts(&centers, &new_centers, &mut bound_upd);
        for i in 0..n {
            ub[i] += drifts[assignments[i]];
            for c in 0..k {
                lb[i * k + c] = (lb[i * k + c] - drifts[c]).max(0.0);
            }
        }
        bound_upd.arith += (n * (k + 1)) as u64;
        bound_upd.stream((n * k) as u64 * 8);
        bound_upd.write((n * k) as u64 * 8);
        centers = new_centers;

        if drifts.iter().all(|&d| d == 0.0) {
            report.profile.record("bound update", bound_upd);
            break;
        }

        // Center-center distances and the ½-min separation s(c).
        let mut s = vec![f64::INFINITY; k];
        for a in 0..k {
            for b in (a + 1)..k {
                let dist = exact_dist(&centers[a], &centers[b], &mut bound_upd);
                cc[a * k + b] = dist;
                cc[b * k + a] = dist;
                s[a] = s[a].min(dist);
                s[b] = s[b].min(dist);
            }
        }
        for v in &mut s {
            *v *= 0.5;
        }
        report.profile.record("bound update", bound_upd);

        iterations += 1;
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }

        // Assign step with the Elkan filters, parallelized over fixed
        // point chunks. Every mutated slot (`assignments[i]`, `ub[i]`,
        // `lb[i·k..]`) is per-point, so workers take disjoint `&mut`
        // chunks; counters merge in chunk order — bit-identical at any
        // `SIMPIM_THREADS`.
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        let mut changed = 0u64;
        {
            let assist = pim.as_deref();
            let centers = &centers;
            let s = &s;
            let cc = &cc;
            const CH: usize = crate::kmeans::ASSIGN_CHUNK;
            let mut jobs: Vec<simpim_par::Job<'_, (OpCounters, OpCounters, u64)>> = Vec::new();
            for (ci, ((a_chunk, ub_chunk), lb_chunk)) in assignments
                .chunks_mut(CH)
                .zip(ub.chunks_mut(CH))
                .zip(lb.chunks_mut(CH * k))
                .enumerate()
            {
                jobs.push(Box::new(move || {
                    let mut ed = OpCounters::new();
                    let mut other = OpCounters::new();
                    let mut changed = 0u64;
                    for (j, (a_slot, ub_slot)) in
                        a_chunk.iter_mut().zip(ub_chunk.iter_mut()).enumerate()
                    {
                        let i = ci * CH + j;
                        let row = dataset.row(i);
                        let lb_row = &mut lb_chunk[j * k..(j + 1) * k];
                        let a = *a_slot;
                        other.prune_test();
                        if *ub_slot <= s[a] {
                            continue; // point filter
                        }
                        let mut ub_stale = true;
                        let mut cur = a;
                        for c in 0..k {
                            if c == cur {
                                continue;
                            }
                            other.prune_test();
                            other.prune_test();
                            if *ub_slot <= lb_row[c] || *ub_slot <= 0.5 * cc[cur * k + c] {
                                continue; // center filter
                            }
                            if ub_stale {
                                let dist = exact_dist(row, &centers[cur], &mut ed);
                                *ub_slot = dist;
                                lb_row[cur] = dist;
                                ub_stale = false;
                                other.prune_test();
                                other.prune_test();
                                if *ub_slot <= lb_row[c] || *ub_slot <= 0.5 * cc[cur * k + c] {
                                    continue;
                                }
                            }
                            if let Some(assist) = assist {
                                other.prune_test();
                                let lb_pim = assist.lb_dist(i, c);
                                if lb_pim >= *ub_slot {
                                    lb_row[c] = lb_row[c].max(lb_pim);
                                    continue; // PIM filter: exact ED avoided
                                }
                            }
                            let dist = exact_dist(row, &centers[c], &mut ed);
                            lb_row[c] = dist;
                            other.prune_test();
                            if dist < *ub_slot {
                                cur = c;
                                *ub_slot = dist;
                                ub_stale = false;
                            }
                        }
                        if cur != a {
                            *a_slot = cur;
                            changed += 1;
                        }
                    }
                    (ed, other, changed)
                }));
            }
            for (chunk_ed, chunk_other, chunk_changed) in simpim_par::join_all(jobs) {
                ed.add(&chunk_ed);
                other.add(&chunk_other);
                changed += chunk_changed;
            }
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
        record_iteration("elkan", changed);
        iter_span.record("reassigned", changed as f64);
        if changed == 0 {
            break;
        }
    }

    Ok(finish(dataset, assignments, centers, iterations, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::lloyd::kmeans_lloyd;
    use simpim_datasets::{generate, SyntheticConfig};

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n: 150,
            d: 12,
            clusters: 4,
            cluster_std: 0.02,
            stat_uniformity: 0.0,
            seed: 70,
        })
    }

    #[test]
    fn matches_lloyd_exactly() {
        let ds = data();
        for k in [2usize, 4, 7] {
            let cfg = KmeansConfig {
                k,
                max_iters: 40,
                seed: 3,
            };
            let lloyd = kmeans_lloyd(&ds, &cfg, None).unwrap();
            let elkan = kmeans_elkan(&ds, &cfg, None).unwrap();
            assert_eq!(elkan.assignments, lloyd.assignments, "k={k}");
            assert!((elkan.inertia - lloyd.inertia).abs() < 1e-9);
        }
    }

    #[test]
    fn computes_fewer_exact_distances_than_lloyd() {
        let ds = data();
        let cfg = KmeansConfig {
            k: 6,
            max_iters: 40,
            seed: 3,
        };
        let lloyd = kmeans_lloyd(&ds, &cfg, None).unwrap();
        let elkan = kmeans_elkan(&ds, &cfg, None).unwrap();
        let lloyd_ed = lloyd.report.profile.get("ED").unwrap().counters.mul;
        let elkan_ed = elkan.report.profile.get("ED").unwrap().counters.mul;
        assert!(elkan_ed < lloyd_ed, "{elkan_ed} !< {lloyd_ed}");
    }

    #[test]
    fn bound_update_shows_in_profile() {
        let ds = data();
        let cfg = KmeansConfig {
            k: 6,
            max_iters: 40,
            seed: 3,
        };
        let elkan = kmeans_elkan(&ds, &cfg, None).unwrap();
        assert!(elkan.report.profile.get("bound update").is_some());
    }
}

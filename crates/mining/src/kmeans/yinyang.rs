//! Yinyang k-means \[29\]: global + group filtering.
//!
//! Centers are partitioned once into `t = ⌈k/10⌉` groups (by clustering
//! the initial centers themselves); each point keeps one upper bound and
//! one lower bound **per group** instead of Elkan's per-center bounds.
//! The global filter skips a point when its upper bound undercuts every
//! group bound; surviving points only scan groups whose bound is violated.
//! Fewer bounds mean cheaper maintenance than Elkan, but on
//! high-dimensional data the surviving exact-ED work grows — exactly the
//! gap `Yinyang-PIM` closes (up to 4.9× in the paper).
//!
//! With a [`PimAssist`], `LB_PIM-ED` guards every exact distance inside a
//! group scan; a skipped center contributes its PIM bound to the group's
//! new lower bound, which keeps the filter sound.

use simpim_similarity::{measures, Dataset};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::kmeans::pim::PimAssist;
use crate::kmeans::{
    center_drifts, check_k, exact_dist, finish, init_centers, record_iteration, update_centers,
    KmeansConfig, KmeansResult,
};
use crate::report::{Architecture, RunReport};

/// Groups the initial centers into `t` clusters with a few Lloyd passes
/// over the centers themselves (the grouping the Yinyang paper prescribes).
fn group_centers(centers: &[Vec<f64>], t: usize, counters: &mut OpCounters) -> Vec<usize> {
    let k = centers.len();
    if t >= k {
        return (0..k).collect();
    }
    let mut seeds: Vec<Vec<f64>> = (0..t).map(|g| centers[g * k / t].clone()).collect();
    let mut groups = vec![0usize; k];
    for _ in 0..4 {
        for (c, center) in centers.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (g, seed) in seeds.iter().enumerate() {
                counters.euclidean_kernel(center.len() as u64, center.len() as u64 * 8);
                let dist = measures::euclidean_sq(center, seed);
                if dist < best {
                    best = dist;
                    groups[c] = g;
                }
            }
        }
        // Recompute seeds as group means.
        let d = centers[0].len();
        let mut sums = vec![vec![0.0f64; d]; t];
        let mut counts = vec![0usize; t];
        for (c, &g) in groups.iter().enumerate() {
            counts[g] += 1;
            for (s, &v) in sums[g].iter_mut().zip(&centers[c]) {
                *s += v;
            }
        }
        for g in 0..t {
            if counts[g] > 0 {
                for v in &mut sums[g] {
                    *v /= counts[g] as f64;
                }
                seeds[g] = sums[g].clone();
            }
        }
    }
    groups
}

/// Runs Yinyang k-means; pass a [`PimAssist`] for `Yinyang-PIM`.
pub fn kmeans_yinyang(
    dataset: &Dataset,
    cfg: &KmeansConfig,
    mut pim: Option<&mut PimAssist<'_>>,
) -> Result<KmeansResult, MiningError> {
    check_k(cfg.k, dataset.len())?;
    let arch = if pim.is_some() {
        Architecture::ReRamPim
    } else {
        Architecture::ConventionalDram
    };
    let mut report = RunReport::new(arch);
    let k = cfg.k;
    let n = dataset.len();
    let t = k.div_ceil(10).max(1);
    let mut centers = init_centers(dataset, k, cfg.seed);

    let mut grouping_counters = OpCounters::new();
    let group_of = group_centers(&centers, t, &mut grouping_counters);
    report.profile.record("other", grouping_counters);

    // Initial exact pass: assignments, ub, per-group lb.
    let mut assignments = vec![0usize; n];
    let mut ub = vec![0.0f64; n];
    let mut lb = vec![f64::INFINITY; n * t]; // min dist to non-assigned centers per group
    {
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        for (i, row) in dataset.rows().enumerate() {
            // Exact distances (or PIM bounds for clearly-far centers).
            let mut best = f64::INFINITY;
            let mut best_c = usize::MAX;
            let mut values = vec![0.0f64; k];
            for (c, center) in centers.iter().enumerate() {
                values[c] = if let Some(assist) = pim.as_deref() {
                    other.prune_test();
                    let lb_pim = assist.lb_dist(i, c);
                    if best_c != usize::MAX && lb_pim >= best {
                        lb_pim
                    } else {
                        let dist = exact_dist(row, center, &mut ed);
                        other.prune_test();
                        if dist < best {
                            best = dist;
                            best_c = c;
                        }
                        dist
                    }
                } else {
                    let dist = exact_dist(row, center, &mut ed);
                    other.prune_test();
                    if dist < best {
                        best = dist;
                        best_c = c;
                    }
                    dist
                };
            }
            assignments[i] = best_c;
            ub[i] = best;
            for c in 0..k {
                if c != best_c {
                    let g = group_of[c];
                    lb[i * t + g] = lb[i * t + g].min(values[c]);
                }
            }
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
    }

    let mut iterations = 1;
    for _ in 1..cfg.max_iters {
        let mut iter_span = simpim_obs::span!(
            "mining.kmeans.yinyang.iteration",
            iter = iterations as u64 + 1
        );
        let mut upd = OpCounters::new();
        let new_centers = update_centers(dataset, &assignments, &centers, &mut upd);
        report.profile.record("other", upd);

        let mut bound_upd = OpCounters::new();
        let drifts = center_drifts(&centers, &new_centers, &mut bound_upd);
        let mut group_drift = vec![0.0f64; t];
        for (c, &dr) in drifts.iter().enumerate() {
            group_drift[group_of[c]] = group_drift[group_of[c]].max(dr);
        }
        for i in 0..n {
            ub[i] += drifts[assignments[i]];
            for g in 0..t {
                lb[i * t + g] = (lb[i * t + g] - group_drift[g]).max(0.0);
            }
        }
        bound_upd.arith += (n * (t + 1)) as u64;
        bound_upd.stream((n * t) as u64 * 8);
        bound_upd.write((n * t) as u64 * 8);
        report.profile.record("bound update", bound_upd);
        centers = new_centers;

        if drifts.iter().all(|&d| d == 0.0) {
            break;
        }

        iterations += 1;
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }

        // Assign step, parallelized over fixed point chunks: each point
        // mutates only its own `assignments[i]` / `ub[i]` / `lb[i·t..]`
        // slots, handed to workers as disjoint `&mut` chunks; counters
        // merge in chunk order — bit-identical at any `SIMPIM_THREADS`.
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        let mut changed = 0u64;
        {
            let assist = pim.as_deref();
            let centers = &centers;
            let group_of = &group_of;
            const CH: usize = crate::kmeans::ASSIGN_CHUNK;
            let jobs: Vec<simpim_par::Job<'_, (OpCounters, OpCounters, u64)>> = assignments
                .chunks_mut(CH)
                .zip(ub.chunks_mut(CH))
                .zip(lb.chunks_mut(CH * t))
                .enumerate()
                .map(|(ci, ((a_chunk, ub_chunk), lb_chunk))| {
                    Box::new(move || {
                        let mut ed = OpCounters::new();
                        let mut other = OpCounters::new();
                        let mut changed = 0u64;
                        for (j, (a_slot, ub_slot)) in
                            a_chunk.iter_mut().zip(ub_chunk.iter_mut()).enumerate()
                        {
                            let i = ci * CH + j;
                            let row = dataset.row(i);
                            let lb_row = &mut lb_chunk[j * t..(j + 1) * t];
                            let min_lb = lb_row.iter().copied().fold(f64::INFINITY, f64::min);
                            other.prune_test();
                            if *ub_slot <= min_lb {
                                continue; // global filter
                            }
                            *ub_slot = exact_dist(row, &centers[*a_slot], &mut ed);
                            other.prune_test();
                            if *ub_slot <= min_lb {
                                continue;
                            }
                            let old = *a_slot;
                            for g in 0..t {
                                other.prune_test();
                                if lb_row[g] >= *ub_slot {
                                    continue; // group filter (bound stays valid)
                                }
                                let mut new_lb = f64::INFINITY;
                                for (c, center) in centers.iter().enumerate() {
                                    if group_of[c] != g || c == *a_slot {
                                        continue;
                                    }
                                    if let Some(assist) = assist {
                                        other.prune_test();
                                        let lb_pim = assist.lb_dist(i, c);
                                        if lb_pim >= *ub_slot {
                                            new_lb = new_lb.min(lb_pim);
                                            continue; // PIM filter
                                        }
                                    }
                                    let dist = exact_dist(row, center, &mut ed);
                                    other.prune_test();
                                    if dist < *ub_slot {
                                        // The displaced assignment feeds its
                                        // group's bound.
                                        let (old_a, old_ub) = (*a_slot, *ub_slot);
                                        *a_slot = c;
                                        *ub_slot = dist;
                                        if group_of[old_a] == g {
                                            new_lb = new_lb.min(old_ub);
                                        } else {
                                            let og = group_of[old_a];
                                            lb_row[og] = lb_row[og].min(old_ub);
                                        }
                                    } else {
                                        new_lb = new_lb.min(dist);
                                    }
                                }
                                lb_row[g] = new_lb;
                            }
                            if *a_slot != old {
                                changed += 1;
                            }
                        }
                        (ed, other, changed)
                    }) as simpim_par::Job<'_, _>
                })
                .collect();
            for (chunk_ed, chunk_other, chunk_changed) in simpim_par::join_all(jobs) {
                ed.add(&chunk_ed);
                other.add(&chunk_other);
                changed += chunk_changed;
            }
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
        record_iteration("yinyang", changed);
        iter_span.record("reassigned", changed as f64);
        if changed == 0 {
            break;
        }
    }

    Ok(finish(dataset, assignments, centers, iterations, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::lloyd::kmeans_lloyd;
    use simpim_datasets::{generate, SyntheticConfig};

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n: 160,
            d: 12,
            clusters: 4,
            cluster_std: 0.02,
            stat_uniformity: 0.0,
            seed: 72,
        })
    }

    #[test]
    fn matches_lloyd_exactly() {
        let ds = data();
        for k in [3usize, 6, 12] {
            let cfg = KmeansConfig {
                k,
                max_iters: 40,
                seed: 5,
            };
            let lloyd = kmeans_lloyd(&ds, &cfg, None).unwrap();
            let yy = kmeans_yinyang(&ds, &cfg, None).unwrap();
            assert_eq!(yy.assignments, lloyd.assignments, "k={k}");
            assert!((yy.inertia - lloyd.inertia).abs() < 1e-9);
        }
    }

    #[test]
    fn fewer_exact_distances_than_lloyd() {
        let ds = data();
        let cfg = KmeansConfig {
            k: 12,
            max_iters: 40,
            seed: 5,
        };
        let lloyd = kmeans_lloyd(&ds, &cfg, None).unwrap();
        let yy = kmeans_yinyang(&ds, &cfg, None).unwrap();
        let l = lloyd.report.profile.get("ED").unwrap().counters.mul;
        let y = yy.report.profile.get("ED").unwrap().counters.mul;
        assert!(y < l, "{y} !< {l}");
    }

    #[test]
    fn lighter_bound_maintenance_than_elkan() {
        use crate::kmeans::elkan::kmeans_elkan;
        let ds = data();
        let cfg = KmeansConfig {
            k: 12,
            max_iters: 40,
            seed: 5,
        };
        let elkan = kmeans_elkan(&ds, &cfg, None).unwrap();
        let yy = kmeans_yinyang(&ds, &cfg, None).unwrap();
        let e = elkan
            .report
            .profile
            .get("bound update")
            .unwrap()
            .counters
            .bytes_written;
        let y = yy
            .report
            .profile
            .get("bound update")
            .unwrap()
            .counters
            .bytes_written;
        assert!(y < e, "t = ⌈k/10⌉ bounds vs k bounds: {y} !< {e}");
    }

    #[test]
    fn grouping_covers_all_centers() {
        let centers: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0; 4]).collect();
        let mut c = OpCounters::new();
        let groups = group_centers(&centers, 2, &mut c);
        assert_eq!(groups.len(), 20);
        assert!(groups.iter().all(|&g| g < 2));
        // Both groups used on spread-out centers.
        assert!(groups.contains(&0) && groups.contains(&1));
    }
}

//! `Standard` k-means: Lloyd's algorithm \[48\].
//!
//! Assign each point to its nearest center (the full `N × k` distance
//! table — the transfer of `N·k·d·b` bits the paper profiles), then move
//! each center to its cluster mean; repeat until assignments stabilize.
//!
//! With a [`PimAssist`], the assign step consults `LB_PIM-ED` before every
//! exact distance (`Standard-PIM`): centers are processed in index order
//! and skipped when the bound proves they cannot strictly beat the current
//! best, which preserves Lloyd's exact assignments including lowest-index
//! tie-breaking.

use simpim_similarity::{measures, Dataset};
use simpim_simkit::OpCounters;

use crate::error::MiningError;
use crate::kmeans::pim::PimAssist;
use crate::kmeans::{
    check_k, finish, init_centers, record_iteration, update_centers, KmeansConfig, KmeansResult,
};
use crate::report::{Architecture, RunReport};

/// Runs Lloyd's algorithm; pass a [`PimAssist`] for the `-PIM` variant.
pub fn kmeans_lloyd(
    dataset: &Dataset,
    cfg: &KmeansConfig,
    mut pim: Option<&mut PimAssist<'_>>,
) -> Result<KmeansResult, MiningError> {
    check_k(cfg.k, dataset.len())?;
    let arch = if pim.is_some() {
        Architecture::ReRamPim
    } else {
        Architecture::ConventionalDram
    };
    let mut report = RunReport::new(arch);
    let mut centers = init_centers(dataset, cfg.k, cfg.seed);
    let mut assignments = vec![usize::MAX; dataset.len()];
    let d = dataset.dim() as u64;

    let mut iterations = 0;
    for _ in 0..cfg.max_iters {
        iterations += 1;
        let mut iter_span =
            simpim_obs::span!("mining.kmeans.lloyd.iteration", iter = iterations as u64);
        if let Some(assist) = pim.as_deref_mut() {
            assist.refresh(&centers, &mut report)?;
        }

        // Assign step, parallelized over fixed point chunks (per-point
        // state is disjoint); workers return each chunk's assignments and
        // counters, merged in chunk order — bit-identical at any
        // `SIMPIM_THREADS`.
        let mut ed = OpCounters::new();
        let mut other = OpCounters::new();
        let mut changed = 0u64;
        let assist = pim.as_deref();
        let centers_ref = &centers;
        let chunks = simpim_par::map_chunks(dataset.len(), crate::kmeans::ASSIGN_CHUNK, |points| {
            let mut ed = OpCounters::new();
            let mut other = OpCounters::new();
            let mut best = Vec::with_capacity(points.len());
            for i in points {
                let row = dataset.row(i);
                let mut best_sq = f64::INFINITY;
                let mut best_c = usize::MAX;
                for (c, center) in centers_ref.iter().enumerate() {
                    if let Some(assist) = assist {
                        other.prune_test();
                        if best_c != usize::MAX && assist.lb_sq(i, c) >= best_sq {
                            continue; // cannot strictly beat the incumbent
                        }
                    }
                    ed.euclidean_kernel(d, d * 8);
                    let dist_sq = measures::euclidean_sq(row, center);
                    other.prune_test();
                    if dist_sq < best_sq {
                        best_sq = dist_sq;
                        best_c = c;
                    }
                }
                best.push(best_c);
            }
            (best, ed, other)
        });
        let mut next = 0usize;
        for (best, chunk_ed, chunk_other) in chunks {
            ed.add(&chunk_ed);
            other.add(&chunk_other);
            for best_c in best {
                if assignments[next] != best_c {
                    assignments[next] = best_c;
                    changed += 1;
                }
                next += 1;
            }
        }
        report.profile.record("ED", ed);
        report.profile.record("other", other);
        record_iteration("lloyd", changed);
        iter_span.record("reassigned", changed as f64);
        if changed == 0 {
            break;
        }

        // Update step.
        let mut upd = OpCounters::new();
        centers = update_centers(dataset, &assignments, &centers, &mut upd);
        report.profile.record("other", upd);
    }

    Ok(finish(dataset, assignments, centers, iterations, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_datasets::{generate, SyntheticConfig};

    fn data() -> Dataset {
        generate(&SyntheticConfig {
            n: 120,
            d: 8,
            clusters: 3,
            cluster_std: 0.02,
            stat_uniformity: 0.0,
            seed: 55,
        })
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let ds = data();
        let res = kmeans_lloyd(
            &ds,
            &KmeansConfig {
                k: 3,
                max_iters: 30,
                seed: 1,
            },
            None,
        )
        .unwrap();
        assert!(res.iterations >= 2);
        // Points assigned to the same center must be mutually near.
        assert!(
            res.inertia / (ds.len() as f64) < 0.01,
            "inertia {}",
            res.inertia
        );
        assert_eq!(res.assignments.len(), 120);
        assert_eq!(res.centers.len(), 3);
    }

    #[test]
    fn converges_and_stops_early() {
        let ds = data();
        let res = kmeans_lloyd(
            &ds,
            &KmeansConfig {
                k: 3,
                max_iters: 100,
                seed: 1,
            },
            None,
        )
        .unwrap();
        assert!(
            res.iterations < 100,
            "well-separated data converges quickly"
        );
    }

    #[test]
    fn profile_is_ed_dominated() {
        let ds = data();
        let res = kmeans_lloyd(
            &ds,
            &KmeansConfig {
                k: 8,
                max_iters: 10,
                seed: 1,
            },
            None,
        )
        .unwrap();
        let params = simpim_simkit::HostParams::default();
        let (name, frac) = res.report.profile.bottleneck(&params).unwrap();
        assert_eq!(name, "ED");
        assert!(frac > 0.5, "ED fraction {frac} (paper: 52–96%)");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = data();
        let cfg = KmeansConfig {
            k: 4,
            max_iters: 20,
            seed: 9,
        };
        let a = kmeans_lloyd(&ds, &cfg, None).unwrap();
        let b = kmeans_lloyd(&ds, &cfg, None).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.iterations, b.iterations);
    }
}

#![warn(missing_docs)]
//! # simpim-mining
//!
//! The similarity-based mining algorithms of Section II-C, instrumented
//! with `simpim-profiling` counters, plus the PIM-optimized variant of
//! every algorithm (Section VI-B naming: `X` → `X-PIM`):
//!
//! **kNN classification** (Section VI-C)
//! * [`knn::standard`] — linear scan (`Standard`).
//! * [`knn::cascade`] — the shared filter-and-refinement engine; with the
//!   appropriate bound cascade it realizes `OST` \[24\], `SM` \[25\] and
//!   `FNN` \[26\] (three-level `LB_FNN^{d/64→d/16→d/4}` pipeline,
//!   Fig. 12a).
//! * [`knn::hamming`] — linear scan on binary codes (kNN on HD; no better
//!   technique than scanning is known \[28\]).
//! * [`knn::pim`] — `Standard-PIM`, `OST/SM/FNN-PIM` and
//!   `FNN-PIM-optimize`: the PIM-aware bound batch runs first (or per the
//!   optimized plan of Section V-D), then surviving candidates refine
//!   exactly on the host. Results are **identical** to the baselines.
//!
//! **k-means clustering** (Section VI-D)
//! * [`kmeans::lloyd`] — `Standard` Lloyd iteration \[48\].
//! * [`kmeans::elkan`] — Elkan's triangle-inequality filter \[30\]
//!   (k lower bounds per point).
//! * [`kmeans::drake`] — Drake's adaptive-bound variant \[31\] (b < k
//!   sorted bounds).
//! * [`kmeans::yinyang`] — Yinyang's global/group filtering \[29\].
//! * [`kmeans::pim`] — each algorithm with `LB_PIM-ED` filtering inserted
//!   before every exact ED it would compute in the assign step.
//!
//! **Further similarity-based tasks** (Section II-C's wider list)
//! * [`outlier`] — distance-based outlier detection (top-m by k-NN
//!   distance, ORCA-style cutoff) with lossless `LB_PIM` filtering.
//! * [`dbscan`] — density-based clustering whose ε-range queries are
//!   bound-filtered on PIM.
//! * [`motif`] — time-series motif discovery and discord (anomaly)
//!   detection over sliding windows.
//!
//! Every run returns a [`report::RunReport`] carrying the function-level
//! profile, the Eq. 1 hardware breakdown for both DRAM and ReRAM main
//! memory, and the PIM-side latency — the raw material of every figure in
//! the evaluation.

pub mod dbscan;
pub mod error;
pub mod kmeans;
pub mod knn;
pub mod motif;
pub mod outlier;
pub mod report;

pub use error::MiningError;
pub use report::{Architecture, RunReport};

//! Distance-based outlier detection — one of the similarity-based mining
//! tasks the paper's Section II-C targets ("distance-based outlier
//! detection, etc").
//!
//! Definition (Ramaswamy-style): the top-`m` objects by *outlier score*,
//! the squared distance to their `k`-th nearest neighbor. The classic
//! accelerated algorithm (ORCA) processes objects with a global cutoff
//! `c` — the `m`-th best score so far — and abandons an object as soon as
//! its running `k`-NN distance drops below `c`.
//!
//! The PIM variant adds `LB_PIM` filtering inside each object's neighbor
//! scan: candidates whose bound exceeds the object's current `k`-th
//! distance cannot shrink it and are skipped without an exact ED — the
//! same lossless filter-and-refinement as kNN, so results are identical
//! to the baseline.

use simpim_core::{CoreError, PimExecutor};
use simpim_similarity::{measures, Dataset};
use simpim_simkit::OpCounters;

use crate::knn::TopK;
use crate::report::{Architecture, RunReport};

/// Result of an outlier search: the top-`m` `(object, score)` pairs,
/// highest score first, plus instrumentation.
#[derive(Debug, Clone)]
pub struct OutlierResult {
    /// `(object index, squared k-NN distance)`, strongest outlier first.
    pub outliers: Vec<(usize, f64)>,
    /// Function profile + PIM timing.
    pub report: RunReport,
}

impl OutlierResult {
    /// The outlier indices only.
    pub fn indices(&self) -> Vec<usize> {
        self.outliers.iter().map(|&(i, _)| i).collect()
    }
}

/// Exhaustive baseline: every object's exact `k`-NN distance (O(N²·d)).
pub fn outliers_standard(dataset: &Dataset, k: usize, m: usize) -> OutlierResult {
    assert!(k >= 1 && k < dataset.len(), "k must be in 1..N");
    assert!(m >= 1 && m <= dataset.len(), "m must be in 1..=N");
    let mut report = RunReport::new(Architecture::ConventionalDram);
    let mut ed = OpCounters::new();
    let mut other = OpCounters::new();
    let d = dataset.dim() as u64;

    let mut top = TopK::new(m, false); // larger score = stronger outlier
    for (i, row) in dataset.rows().enumerate() {
        let mut knn = TopK::new(k, true);
        for (j, cand) in dataset.rows().enumerate() {
            if i == j {
                continue;
            }
            ed.euclidean_kernel(d, d * 8);
            other.prune_test();
            knn.offer(j, measures::euclidean_sq(row, cand));
        }
        let score = knn.threshold();
        other.prune_test();
        top.offer(i, score);
    }
    report.profile.record("ED", ed);
    report.profile.record("other", other);
    OutlierResult {
        outliers: top.into_sorted(),
        report,
    }
}

/// ORCA-style cutoff pruning with `LB_PIM` candidate filtering: the PIM
/// bound batch for object `i` orders and prunes its neighbor scan, and the
/// global cutoff abandons inliers early. Returns exactly the
/// [`outliers_standard`] result.
pub fn outliers_pim(
    executor: &mut PimExecutor,
    dataset: &Dataset,
    k: usize,
    m: usize,
) -> Result<OutlierResult, CoreError> {
    assert!(k >= 1 && k < dataset.len(), "k must be in 1..N");
    assert!(m >= 1 && m <= dataset.len(), "m must be in 1..=N");
    let mut report = RunReport::new(Architecture::ReRamPim);
    let mut ed = OpCounters::new();
    let mut g_counters = OpCounters::new();
    let mut other = OpCounters::new();
    let d = dataset.dim() as u64;
    let n = dataset.len();

    let mut top = TopK::new(m, false);
    let mut bound_name = String::new();
    for (i, row) in dataset.rows().enumerate() {
        // One PIM batch per object: LB_PIM(i, ·) for every candidate.
        let batch = executor.lb_ed_batch(row)?;
        bound_name = executor.bound_name();
        report.pim.add(&batch.timing);
        g_counters.stream(n as u64 * batch.host_bytes_per_object);
        g_counters.arith += 4 * n as u64;
        g_counters.mul += 2 * n as u64;

        // Ascending-bound neighbor scan with two prunes: per-candidate
        // (bound ≥ current k-th) and per-object (k-th < global cutoff `c`
        // once the k-NN pool is full ⇒ i cannot be a top-m outlier).
        let mut order: Vec<(f64, usize)> = batch
            .values
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, v)| (v, j))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        other.cmp += (n as f64 * (n as f64).log2().max(1.0)) as u64;

        let cutoff = if top.threshold().is_finite() {
            top.threshold()
        } else {
            f64::NEG_INFINITY
        };
        let mut knn = TopK::new(k, true);
        let mut pruned_as_inlier = false;
        for &(lb, j) in &order {
            other.prune_test();
            if knn.prunable(lb) {
                break; // sorted bounds: k-NN distance is final
            }
            ed.euclidean_kernel(d, d * 8);
            ed.random_fetches += 1;
            knn.offer(j, measures::euclidean_sq(row, dataset.row(j)));
            other.prune_test();
            if knn.threshold() < cutoff {
                pruned_as_inlier = true; // score can only shrink further
                break;
            }
        }
        if !pruned_as_inlier {
            other.prune_test();
            top.offer(i, knn.threshold());
        }
    }
    report
        .profile
        .record(&format!("G({bound_name})"), g_counters);
    report.profile.record("ED", ed);
    report.profile.record("other", other);
    Ok(OutlierResult {
        outliers: top.into_sorted(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_core::executor::ExecutorConfig;
    use simpim_datasets::{generate, SyntheticConfig};
    use simpim_similarity::NormalizedDataset;

    /// Clustered data plus a few planted outliers far from every cluster.
    fn data_with_outliers() -> (Dataset, Vec<usize>) {
        let mut ds = generate(&SyntheticConfig {
            n: 200,
            d: 16,
            clusters: 4,
            cluster_std: 0.02,
            stat_uniformity: 0.0,
            seed: 88,
        });
        let planted = vec![ds.len(), ds.len() + 1, ds.len() + 2];
        ds.push(&[0.999; 16]).unwrap();
        ds.push(&[0.001; 16]).unwrap();
        let mut alt = [0.999; 16];
        for v in alt.iter_mut().step_by(2) {
            *v = 0.001;
        }
        ds.push(&alt).unwrap();
        (ds, planted)
    }

    #[test]
    fn standard_finds_planted_outliers() {
        let (ds, planted) = data_with_outliers();
        let res = outliers_standard(&ds, 5, 3);
        let mut found = res.indices();
        found.sort_unstable();
        assert_eq!(found, planted);
        assert!(res.outliers[0].1 > res.outliers[2].1);
    }

    #[test]
    fn pim_matches_standard_exactly() {
        let (ds, _) = data_with_outliers();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        for (k, m) in [(3usize, 3usize), (5, 5), (10, 8)] {
            let truth = outliers_standard(&ds, k, m);
            let got = outliers_pim(&mut exec, &ds, k, m).unwrap();
            assert_eq!(got.indices(), truth.indices(), "k={k} m={m}");
            for (a, b) in truth.outliers.iter().zip(&got.outliers) {
                assert!((a.1 - b.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pim_computes_far_fewer_exact_distances() {
        let (ds, _) = data_with_outliers();
        let nds = NormalizedDataset::assert_normalized(ds.clone());
        let mut exec = PimExecutor::prepare_euclidean(ExecutorConfig::default(), &nds).unwrap();
        let base = outliers_standard(&ds, 5, 3);
        let pim = outliers_pim(&mut exec, &ds, 5, 3).unwrap();
        let b = base.report.profile.get("ED").unwrap().counters.mul;
        let p = pim.report.profile.get("ED").unwrap().counters.mul;
        assert!(
            p * 4 < b,
            "bounds + cutoff must prune most of O(N²): {p} vs {b}"
        );
        assert!(pim.report.pim.total_ns() > 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_degenerate_k() {
        let (ds, _) = data_with_outliers();
        outliers_standard(&ds, ds.len(), 1);
    }
}

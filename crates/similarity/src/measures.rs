//! The similarity measures of Table 2.
//!
//! Following the paper's Table 2, `ED` denotes the **squared** Euclidean
//! distance `Σ (pᵢ − qᵢ)²` (the square root is monotone and omitted by every
//! bound in Table 3, so the whole stack works on squared distances).
//!
//! Cosine similarity and Pearson correlation are *similarities* (larger is
//! closer); kNN on them is a maximum-similarity search, so the relevant
//! bounds are upper bounds (`UB_part`, and the PIM-aware upper bounds in
//! `simpim-core`).

use crate::error::SimilarityError;
use crate::stats;

/// Identifies one of the paper's four similarity measures. Carried through
/// the mining algorithms and the execution planner so that cost estimation
/// and bound selection know which function is being accelerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Measure {
    /// Squared Euclidean distance (smaller = closer).
    EuclideanSq,
    /// Cosine similarity (larger = closer).
    Cosine,
    /// Pearson correlation coefficient (larger = closer).
    Pearson,
    /// Hamming distance on binary codes (smaller = closer).
    Hamming,
}

impl Measure {
    /// `true` when smaller values mean more similar objects.
    pub fn smaller_is_closer(self) -> bool {
        matches!(self, Measure::EuclideanSq | Measure::Hamming)
    }

    /// Short name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Measure::EuclideanSq => "ED",
            Measure::Cosine => "CS",
            Measure::Pearson => "PCC",
            Measure::Hamming => "HD",
        }
    }
}

/// Squared Euclidean distance `Σ (pᵢ − qᵢ)²` (Table 2, row ED) —
/// dispatched chunked kernel. Delegates to the active `simpim-kern`
/// backend: four independent accumulator lanes over 4-element blocks,
/// per-lane `sub`/`mul`/`add`, lanes and tail folded in a fixed order
/// (see [`stats::dot`]) — a pure function of the inputs, so results
/// never depend on thread count or backend. Validated ULP-close to the
/// sequential [`euclidean_sq_scalar`] reference in the equivalence tests.
#[inline]
pub fn euclidean_sq(p: &[f64], q: &[f64]) -> f64 {
    simpim_kern::euclidean_sq(p, q)
}

/// Sequential reference form of [`euclidean_sq`]: one running sum in
/// element order, kept as the equivalence-test ground truth.
#[inline]
pub fn euclidean_sq_scalar(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter().zip(q).map(|(&a, &b)| (a - b) * (a - b)).sum()
}

/// Cosine similarity `p·q / (‖p‖‖q‖)` (Table 2, row CS).
///
/// Returns `0.0` when either vector has zero norm (the convention used by
/// the mining algorithms: a zero vector is equally dissimilar to everything).
#[inline]
pub fn cosine(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    // Fused kernel: one pass over `p` yields dot(p, q) and ‖p‖² with
    // bit-identical results to the unfused calls.
    let (pq, np_sq) = simpim_kern::dot_norm_sq(p, q);
    let np = np_sq.sqrt();
    let nq = stats::norm(q);
    if np == 0.0 || nq == 0.0 {
        return 0.0;
    }
    pq / (np * nq)
}

/// Pearson correlation coefficient (Table 2, row PCC):
/// `Σ (pᵢ−µ(p))(qᵢ−µ(q)) / (d·σ(p)σ(q))`.
///
/// Matches the PIM-aware decomposition of Table 4:
/// `PCC = (d·p·q − Φb(p)Φb(q)) / (Φa(p)Φa(q))` with
/// `Φa(x) = sqrt(d·Σxᵢ² − (Σxᵢ)²)` and `Φb(x) = Σxᵢ`.
/// Returns `0.0` when either vector is constant (zero σ).
#[inline]
pub fn pearson(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let d = p.len() as f64;
    let sp = stats::sum(p);
    let sq = stats::sum(q);
    let phi_a_p = (d * stats::norm_sq(p) - sp * sp).max(0.0).sqrt();
    let phi_a_q = (d * stats::norm_sq(q) - sq * sq).max(0.0).sqrt();
    if phi_a_p == 0.0 || phi_a_q == 0.0 {
        return 0.0;
    }
    (d * stats::dot(p, q) - sp * sq) / (phi_a_p * phi_a_q)
}

/// Evaluates a floating-point measure by enum. Hamming distance operates on
/// binary codes and is exposed on [`crate::BinaryVecRef`] instead; requesting
/// it here returns [`SimilarityError::UnsupportedMeasure`].
pub fn evaluate(measure: Measure, p: &[f64], q: &[f64]) -> Result<f64, SimilarityError> {
    match measure {
        Measure::EuclideanSq => Ok(euclidean_sq(p, q)),
        Measure::Cosine => Ok(cosine(p, q)),
        Measure::Pearson => Ok(pearson(p, q)),
        Measure::Hamming => Err(SimilarityError::UnsupportedMeasure {
            measure,
            context: "Hamming distance is defined on binary codes, not floats",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_squared() {
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_sq(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn pearson_of_linear_relation() {
        let p = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0]; // positively correlated
        let down = [4.0, 3.0, 2.0, 1.0]; // negatively correlated
        assert!((pearson(&p, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&p, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_vector_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_matches_textbook_formula() {
        let p = [0.2, 0.8, 0.4, 0.9, 0.1];
        let q = [0.3, 0.6, 0.5, 0.8, 0.2];
        let d = p.len() as f64;
        let mp = crate::stats::mean(&p);
        let mq = crate::stats::mean(&q);
        let sp = crate::stats::std_dev(&p);
        let sq = crate::stats::std_dev(&q);
        let expect = p
            .iter()
            .zip(&q)
            .map(|(&a, &b)| (a - mp) * (b - mq))
            .sum::<f64>()
            / (d * sp * sq);
        assert!((pearson(&p, &q) - expect).abs() < 1e-10);
    }

    #[test]
    fn measure_metadata() {
        assert!(Measure::EuclideanSq.smaller_is_closer());
        assert!(Measure::Hamming.smaller_is_closer());
        assert!(!Measure::Cosine.smaller_is_closer());
        assert!(!Measure::Pearson.smaller_is_closer());
        assert_eq!(Measure::Pearson.name(), "PCC");
    }

    #[test]
    fn evaluate_dispatches() {
        let p = [1.0, 2.0];
        let q = [2.0, 1.0];
        assert_eq!(
            evaluate(Measure::EuclideanSq, &p, &q),
            Ok(euclidean_sq(&p, &q))
        );
        assert_eq!(evaluate(Measure::Cosine, &p, &q), Ok(cosine(&p, &q)));
        assert_eq!(evaluate(Measure::Pearson, &p, &q), Ok(pearson(&p, &q)));
    }

    #[test]
    fn chunked_euclidean_exactly_matches_scalar_on_dyadic_inputs() {
        // Quarter-integer coordinates make every squared difference and
        // partial sum exactly representable: reassociation is a no-op, so
        // the chunked kernel must equal the sequential reference bit for
        // bit at every length through several lane blocks plus tails.
        for len in 0usize..=67 {
            let p: Vec<f64> = (0..len)
                .map(|i| ((i * 11 + 2) % 19) as f64 * 0.25)
                .collect();
            let q: Vec<f64> = (0..len).map(|i| ((i * 3 + 5) % 23) as f64 * 0.25).collect();
            assert_eq!(
                euclidean_sq(&p, &q),
                euclidean_sq_scalar(&p, &q),
                "len={len}"
            );
        }
    }

    #[test]
    fn chunked_euclidean_is_ulp_close_to_scalar_on_general_inputs() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut prng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for len in 0usize..=130 {
            let p: Vec<f64> = (0..len).map(|_| prng()).collect();
            let q: Vec<f64> = (0..len).map(|_| prng()).collect();
            let magnitude = euclidean_sq_scalar(&p, &q);
            let diff = (euclidean_sq(&p, &q) - magnitude).abs();
            assert!(
                diff <= 1e-12 * (1.0 + magnitude),
                "len={len}: diff {diff} too large"
            );
        }
    }

    #[test]
    fn evaluate_hamming_is_a_typed_error() {
        let err = evaluate(Measure::Hamming, &[1.0], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            SimilarityError::UnsupportedMeasure {
                measure: Measure::Hamming,
                context: "Hamming distance is defined on binary codes, not floats",
            }
        );
        assert!(err.to_string().contains("binary codes"));
    }
}

//! Dense row-major dataset container.

use crate::error::SimilarityError;

/// A dense collection of `n` vectors, each with `d` dimensions, stored
/// row-major in one contiguous allocation.
///
/// This mirrors the `D` of the paper: `N` vectors `p ∈ R^d`. Row-major
/// storage keeps each vector contiguous so that a linear scan touches memory
/// sequentially — the same access pattern whose transfer cost the paper's
/// profiling attributes to `T_cache`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f64>,
    n: usize,
    d: usize,
}

impl Dataset {
    /// Builds a dataset from a flat row-major buffer.
    pub fn from_flat(data: Vec<f64>, d: usize) -> Result<Self, SimilarityError> {
        if d == 0 {
            return Err(SimilarityError::EmptyDimension);
        }
        if !data.len().is_multiple_of(d) {
            return Err(SimilarityError::RaggedBuffer {
                len: data.len(),
                dim: d,
            });
        }
        let n = data.len() / d;
        Ok(Self { data, n, d })
    }

    /// Builds a dataset from per-row vectors. All rows must share one length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, SimilarityError> {
        let d = rows.first().map(|r| r.len()).unwrap_or(0);
        if d == 0 {
            return Err(SimilarityError::EmptyDimension);
        }
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            if r.len() != d {
                return Err(SimilarityError::DimensionMismatch {
                    left: d,
                    right: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            data,
            n: rows.len(),
            d,
        })
    }

    /// An empty dataset of dimension `d` to be filled with [`Dataset::push`].
    pub fn with_dim(d: usize) -> Result<Self, SimilarityError> {
        if d == 0 {
            return Err(SimilarityError::EmptyDimension);
        }
        Ok(Self {
            data: Vec::new(),
            n: 0,
            d,
        })
    }

    /// Appends one vector.
    pub fn push(&mut self, row: &[f64]) -> Result<(), SimilarityError> {
        if row.len() != self.d {
            return Err(SimilarityError::DimensionMismatch {
                left: self.d,
                right: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.n += 1;
        Ok(())
    }

    /// Appends one vector and returns its new row index. The online
    /// mutation twin of [`Dataset::push`]: validation mirrors
    /// [`SimilarityError::RaggedBuffer`] — the flat buffer must stay an
    /// exact multiple of `d`, so a wrong-length row is rejected before it
    /// can shear the layout.
    pub fn append_row(&mut self, row: &[f64]) -> Result<usize, SimilarityError> {
        if row.len() != self.d {
            return Err(SimilarityError::RaggedBuffer {
                len: self.data.len() + row.len(),
                dim: self.d,
            });
        }
        self.data.extend_from_slice(row);
        self.n += 1;
        Ok(self.n - 1)
    }

    /// Removes row `i` in O(d) by moving the last row into its slot,
    /// returning the removed vector. Row order past `i` changes (the last
    /// row takes index `i`) — callers that need stable identities must
    /// track their own id map, which is exactly what the serving layer's
    /// shard manager does.
    pub fn swap_remove_row(&mut self, i: usize) -> Result<Vec<f64>, SimilarityError> {
        if i >= self.n {
            return Err(SimilarityError::IndexOutOfRange {
                index: i,
                len: self.n,
            });
        }
        let removed = self.row(i).to_vec();
        let last = self.n - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.d);
            head[i * self.d..(i + 1) * self.d].copy_from_slice(tail);
        }
        self.data.truncate(last * self.d);
        self.n = last;
        Ok(removed)
    }

    /// Number of vectors (`N` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the dataset holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality (`d` in the paper).
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Borrow the `i`-th vector.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Mutably borrow the `i`-th vector.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.d..(i + 1) * self.d]
    }

    /// Iterate over all vectors in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.d)
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Global `(min, max)` over every stored value. Returns `None` when
    /// empty. Used by the quantizer's normalization step.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.data.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// A new dataset restricted to the first `s` dimensions of each row.
    /// Used to emulate the truncation side of dimensionality reduction.
    pub fn truncate_dims(&self, s: usize) -> Result<Self, SimilarityError> {
        if s == 0 || s > self.d {
            return Err(SimilarityError::InvalidSegmentation {
                dim: self.d,
                segments: s,
            });
        }
        let mut data = Vec::with_capacity(self.n * s);
        for row in self.rows() {
            data.extend_from_slice(&row[..s]);
        }
        Ok(Self {
            data,
            n: self.n,
            d: s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_flat_rejects_ragged() {
        assert!(matches!(
            Dataset::from_flat(vec![1.0, 2.0, 3.0], 2),
            Err(SimilarityError::RaggedBuffer { .. })
        ));
    }

    #[test]
    fn from_flat_rejects_zero_dim() {
        assert!(matches!(
            Dataset::from_flat(vec![], 0),
            Err(SimilarityError::EmptyDimension)
        ));
    }

    #[test]
    fn from_rows_rejects_mismatch() {
        assert!(Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn row_access_round_trips() {
        let ds = sample();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn push_extends() {
        let mut ds = Dataset::with_dim(2).unwrap();
        assert!(ds.is_empty());
        ds.push(&[1.0, 2.0]).unwrap();
        ds.push(&[3.0, 4.0]).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(ds.push(&[1.0]).is_err());
    }

    #[test]
    fn append_row_extends_and_validates() {
        let mut ds = sample();
        assert_eq!(ds.append_row(&[7.0, 8.0, 9.0]).unwrap(), 2);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.row(2), &[7.0, 8.0, 9.0]);
        assert!(matches!(
            ds.append_row(&[1.0, 2.0]),
            Err(SimilarityError::RaggedBuffer { len: 11, dim: 3 })
        ));
        assert_eq!(ds.len(), 3, "rejected append must not mutate");
    }

    #[test]
    fn swap_remove_row_moves_last_into_slot() {
        let mut ds = Dataset::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        assert_eq!(ds.swap_remove_row(0).unwrap(), vec![1.0, 1.0]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[3.0, 3.0]);
        assert_eq!(ds.row(1), &[2.0, 2.0]);
        // Removing the last row is a plain truncation.
        assert_eq!(ds.swap_remove_row(1).unwrap(), vec![2.0, 2.0]);
        assert_eq!(ds.len(), 1);
        assert!(matches!(
            ds.swap_remove_row(1),
            Err(SimilarityError::IndexOutOfRange { index: 1, len: 1 })
        ));
        assert_eq!(ds.swap_remove_row(0).unwrap(), vec![3.0, 3.0]);
        assert!(ds.is_empty());
    }

    #[test]
    fn value_range_spans_all_rows() {
        let ds = sample();
        assert_eq!(ds.value_range(), Some((1.0, 6.0)));
        assert_eq!(Dataset::with_dim(3).unwrap().value_range(), None);
    }

    #[test]
    fn rows_iterator_matches_row() {
        let ds = sample();
        let collected: Vec<&[f64]> = ds.rows().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1], ds.row(1));
    }

    #[test]
    fn truncate_dims_keeps_prefix() {
        let ds = sample();
        let t = ds.truncate_dims(2).unwrap();
        assert_eq!(t.dim(), 2);
        assert_eq!(t.row(1), &[4.0, 5.0]);
        assert!(ds.truncate_dims(0).is_err());
        assert!(ds.truncate_dims(4).is_err());
    }
}

//! Per-segment statistics (mean / standard deviation) used by the segmented
//! bounds LB_SM \[25\] and LB_FNN \[26\], and by the dimensionality reduction of
//! Section V-C.
//!
//! A `d`-dimensional vector is split into `d′` segments of equal length
//! `l = d / d′`; `µ(p̂ᵢ)` and `σ(p̂ᵢ)` denote the mean and population
//! standard deviation of segment `i`. The pair of `d′`-dimensional vectors
//! `(µ(p̂), σ(p̂))` is the compressed representation programmed onto
//! crossbars for `LB_PIM-FNN` (Fig. 10).

use crate::dataset::Dataset;
use crate::error::SimilarityError;
use crate::stats;

/// Segment means and standard deviations of one vector at one segmentation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SegmentStats {
    /// `µ(p̂ᵢ)` for each of the `d′` segments.
    pub means: Vec<f64>,
    /// `σ(p̂ᵢ)` for each of the `d′` segments.
    pub stds: Vec<f64>,
    /// Segment length `l`.
    pub segment_len: usize,
}

impl SegmentStats {
    /// Computes segment statistics for `vector` with `num_segments` equal
    /// segments. `num_segments` must evenly divide the dimensionality.
    pub fn compute(vector: &[f64], num_segments: usize) -> Result<Self, SimilarityError> {
        let d = vector.len();
        if num_segments == 0 || d == 0 || !d.is_multiple_of(num_segments) {
            return Err(SimilarityError::InvalidSegmentation {
                dim: d,
                segments: num_segments,
            });
        }
        let l = d / num_segments;
        let mut means = Vec::with_capacity(num_segments);
        let mut stds = Vec::with_capacity(num_segments);
        for seg in vector.chunks_exact(l) {
            means.push(stats::mean(seg));
            stds.push(stats::std_dev(seg));
        }
        Ok(Self {
            means,
            stds,
            segment_len: l,
        })
    }

    /// Number of segments `d′`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.means.len()
    }
}

/// Segment statistics for every row of a dataset at a fixed segmentation —
/// the offline precomputation the segmented bounds rely on. Means and stds
/// are stored row-major (`n × d′` each) for cache-friendly scanning.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentProfile {
    means: Vec<f64>,
    stds: Vec<f64>,
    n: usize,
    num_segments: usize,
    segment_len: usize,
}

impl SegmentProfile {
    /// Precomputes statistics for all rows of `dataset`.
    pub fn compute(dataset: &Dataset, num_segments: usize) -> Result<Self, SimilarityError> {
        let d = dataset.dim();
        if num_segments == 0 || !d.is_multiple_of(num_segments) {
            return Err(SimilarityError::InvalidSegmentation {
                dim: d,
                segments: num_segments,
            });
        }
        let l = d / num_segments;
        let n = dataset.len();
        let mut means = Vec::with_capacity(n * num_segments);
        let mut stds = Vec::with_capacity(n * num_segments);
        for row in dataset.rows() {
            for seg in row.chunks_exact(l) {
                means.push(stats::mean(seg));
                stds.push(stats::std_dev(seg));
            }
        }
        Ok(Self {
            means,
            stds,
            n,
            num_segments,
            segment_len: l,
        })
    }

    /// Number of profiled rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no rows were profiled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of segments `d′`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Segment length `l`.
    #[inline]
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Segment means of row `i`.
    #[inline]
    pub fn means(&self, i: usize) -> &[f64] {
        &self.means[i * self.num_segments..(i + 1) * self.num_segments]
    }

    /// Segment standard deviations of row `i`.
    #[inline]
    pub fn stds(&self, i: usize) -> &[f64] {
        &self.stds[i * self.num_segments..(i + 1) * self.num_segments]
    }

    /// Statistics of row `i` as an owned [`SegmentStats`].
    pub fn row(&self, i: usize) -> SegmentStats {
        SegmentStats {
            means: self.means(i).to_vec(),
            stds: self.stds(i).to_vec(),
            segment_len: self.segment_len,
        }
    }
}

/// The divisor of `d` closest to `want` (and ≥ 1) — used to realize the
/// paper's `d/64 → d/16 → d/4` FNN cascade on dimensionalities that are not
/// exact multiples of 64. Ties resolve to the smaller divisor (cheaper
/// bound first).
pub fn nearest_divisor(d: usize, want: usize) -> usize {
    assert!(d > 0, "dimension must be non-zero");
    let want = want.max(1);
    let mut best = 1usize;
    let mut best_gap = usize::MAX;
    let mut i = 1usize;
    while i * i <= d {
        if d.is_multiple_of(i) {
            for cand in [i, d / i] {
                let gap = cand.abs_diff(want);
                if gap < best_gap || (gap == best_gap && cand < best) {
                    best = cand;
                    best_gap = gap;
                }
            }
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_stats_basic() {
        let v = [1.0, 3.0, 10.0, 10.0];
        let s = SegmentStats::compute(&v, 2).unwrap();
        assert_eq!(s.num_segments(), 2);
        assert_eq!(s.segment_len, 2);
        assert_eq!(s.means, vec![2.0, 10.0]);
        assert_eq!(s.stds[0], 1.0);
        assert_eq!(s.stds[1], 0.0);
    }

    #[test]
    fn segment_stats_rejects_bad_split() {
        assert!(SegmentStats::compute(&[1.0, 2.0, 3.0], 2).is_err());
        assert!(SegmentStats::compute(&[1.0, 2.0], 0).is_err());
        assert!(SegmentStats::compute(&[], 1).is_err());
    }

    #[test]
    fn profile_matches_per_row_stats() {
        let ds = Dataset::from_rows(&[vec![1.0, 3.0, 5.0, 7.0], vec![2.0, 2.0, 8.0, 0.0]]).unwrap();
        let prof = SegmentProfile::compute(&ds, 2).unwrap();
        assert_eq!(prof.len(), 2);
        for i in 0..2 {
            let direct = SegmentStats::compute(ds.row(i), 2).unwrap();
            assert_eq!(prof.means(i), direct.means.as_slice());
            assert_eq!(prof.stds(i), direct.stds.as_slice());
            assert_eq!(prof.row(i), direct);
        }
    }

    #[test]
    fn one_segment_is_whole_vector() {
        let v = [1.0, 2.0, 3.0];
        let s = SegmentStats::compute(&v, 1).unwrap();
        assert_eq!(s.means, vec![2.0]);
        assert_eq!(s.segment_len, 3);
    }

    #[test]
    fn d_segments_are_identity() {
        let v = [4.0, 5.0];
        let s = SegmentStats::compute(&v, 2).unwrap();
        assert_eq!(s.means, vec![4.0, 5.0]);
        assert_eq!(s.stds, vec![0.0, 0.0]);
    }

    #[test]
    fn nearest_divisor_picks_closest() {
        assert_eq!(nearest_divisor(420, 420 / 64), 6); // 420/64 = 6.56 → want 6
        assert_eq!(nearest_divisor(420, 420 / 16), 28); // want 26 → divisors 21, 28 → 28? gap(21)=5, gap(28)=2
        assert_eq!(nearest_divisor(128, 2), 2);
        assert_eq!(nearest_divisor(128, 3), 2); // tie between 2 and 4 → smaller
        assert_eq!(nearest_divisor(7, 3), 1); // divisors of 7: 1, 7 → gap 2 vs 4
        assert_eq!(nearest_divisor(960, 960 / 4), 240);
    }
}

//! Packed binary codes and Hamming distance.
//!
//! The paper's kNN-on-HD workload (Fig. 14) operates on LSH codes of
//! 128–1024 bits. On the host, Hamming distance is XOR + popcount over
//! 64-bit words. On PIM, the decomposition of Table 4 applies:
//! `HD(p,q) = d − p·q − p̃·q̃` where `p̃` is the bitwise complement, so two
//! crossbar dot products on 0/1 vectors compute HD *exactly* — no bound is
//! required.

use crate::error::SimilarityError;

/// Number of 64-bit words needed to hold `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// A dataset of `n` binary codes, each `bits` wide, bit-packed into `u64`
/// words (little-endian bit order within a word: bit `i` of the code is bit
/// `i % 64` of word `i / 64`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryDataset {
    words: Vec<u64>,
    n: usize,
    bits: usize,
    words_per_row: usize,
}

/// Borrowed view of one binary code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryVecRef<'a> {
    words: &'a [u64],
    bits: usize,
}

impl BinaryDataset {
    /// An empty dataset of `bits`-wide codes.
    pub fn with_bits(bits: usize) -> Result<Self, SimilarityError> {
        if bits == 0 {
            return Err(SimilarityError::EmptyDimension);
        }
        Ok(Self {
            words: Vec::new(),
            n: 0,
            bits,
            words_per_row: words_for(bits),
        })
    }

    /// Appends a code given as individual bits (`true` = 1).
    pub fn push_bits(&mut self, code: &[bool]) -> Result<(), SimilarityError> {
        if code.len() != self.bits {
            return Err(SimilarityError::DimensionMismatch {
                left: self.bits,
                right: code.len(),
            });
        }
        let start = self.words.len();
        self.words.resize(start + self.words_per_row, 0);
        for (i, &b) in code.iter().enumerate() {
            if b {
                self.words[start + i / 64] |= 1u64 << (i % 64);
            }
        }
        self.n += 1;
        Ok(())
    }

    /// Appends a pre-packed code. Bits beyond `bits` in the last word must
    /// be zero (enforced).
    pub fn push_words(&mut self, words: &[u64]) -> Result<(), SimilarityError> {
        if words.len() != self.words_per_row {
            return Err(SimilarityError::DimensionMismatch {
                left: self.words_per_row,
                right: words.len(),
            });
        }
        let tail_bits = self.bits % 64;
        if tail_bits != 0 {
            let mask = !0u64 << tail_bits;
            if words[self.words_per_row - 1] & mask != 0 {
                return Err(SimilarityError::InvalidValue {
                    context: "binary code has set bits beyond its declared width",
                });
            }
        }
        self.words.extend_from_slice(words);
        self.n += 1;
        Ok(())
    }

    /// Number of stored codes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no codes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code width in bits (`d` for the HD workload).
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Borrow the `i`-th code.
    #[inline]
    pub fn row(&self, i: usize) -> BinaryVecRef<'_> {
        let w = self.words_per_row;
        BinaryVecRef {
            words: &self.words[i * w..(i + 1) * w],
            bits: self.bits,
        }
    }

    /// Iterate over all codes.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = BinaryVecRef<'_>> + '_ {
        self.words
            .chunks_exact(self.words_per_row)
            .map(|w| BinaryVecRef {
                words: w,
                bits: self.bits,
            })
    }
}

impl<'a> BinaryVecRef<'a> {
    /// Wraps a word slice as a code of `bits` bits.
    pub fn new(words: &'a [u64], bits: usize) -> Result<Self, SimilarityError> {
        if bits == 0 {
            return Err(SimilarityError::EmptyDimension);
        }
        if words.len() != words_for(bits) {
            return Err(SimilarityError::RaggedBuffer {
                len: words.len() * 64,
                dim: bits,
            });
        }
        Ok(Self { words, bits })
    }

    /// Code width in bits.
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The packed words.
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Value of bit `i`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance `Σ Δ(pᵢ − qᵢ)` (Table 2, row HD): XOR + popcount,
    /// dispatched through the active `simpim-kern` popcount-MAC backend
    /// (AVX2 `pshufb` nibble LUT / hardware `popcnt` / NEON `cnt`).
    /// Integer counting is exact, so every backend returns the same bits.
    ///
    /// # Panics
    /// Panics in debug builds when widths differ.
    #[inline]
    pub fn hamming(&self, other: &BinaryVecRef<'_>) -> u32 {
        debug_assert_eq!(self.bits, other.bits);
        simpim_kern::xor_popcount(self.words, other.words) as u32
    }

    /// Expands the code to a 0/1 integer vector — the representation
    /// programmed onto crossbars for the PIM HD path.
    pub fn to_unsigned(&self) -> Vec<u32> {
        (0..self.bits).map(|i| self.bit(i) as u32).collect()
    }

    /// Expands the *complement* code `p̃` (Table 4, row HD) to a 0/1 vector.
    pub fn complement_to_unsigned(&self) -> Vec<u32> {
        (0..self.bits).map(|i| !self.bit(i) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds_from(codes: &[&[bool]]) -> BinaryDataset {
        let mut ds = BinaryDataset::with_bits(codes[0].len()).unwrap();
        for c in codes {
            ds.push_bits(c).unwrap();
        }
        ds
    }

    #[test]
    fn hamming_small_cases() {
        let t = true;
        let f = false;
        let ds = ds_from(&[&[t, f, t, f], &[t, t, t, t], &[f, f, f, f]]);
        assert_eq!(ds.row(0).hamming(&ds.row(1)), 2);
        assert_eq!(ds.row(0).hamming(&ds.row(2)), 2);
        assert_eq!(ds.row(1).hamming(&ds.row(2)), 4);
        assert_eq!(ds.row(0).hamming(&ds.row(0)), 0);
    }

    #[test]
    fn multiword_codes() {
        let bits = 130;
        let mut a = vec![false; bits];
        let mut b = vec![false; bits];
        a[0] = true;
        a[64] = true;
        a[129] = true;
        b[129] = true;
        let ds = ds_from(&[&a, &b]);
        assert_eq!(ds.row(0).count_ones(), 3);
        assert_eq!(ds.row(0).hamming(&ds.row(1)), 2);
        assert!(ds.row(0).bit(64));
        assert!(!ds.row(1).bit(0));
    }

    #[test]
    fn push_words_validates_tail() {
        let mut ds = BinaryDataset::with_bits(4).unwrap();
        assert!(ds.push_words(&[0b1111]).is_ok());
        assert!(ds.push_words(&[0b1_0000]).is_err()); // bit 4 set beyond width
        assert!(ds.push_words(&[0, 0]).is_err()); // wrong word count
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn hd_equals_table4_decomposition() {
        // HD(p,q) = d − p·q − p̃·q̃ — the PIM formulation must agree with
        // XOR+popcount for arbitrary codes.
        let t = true;
        let f = false;
        let ds = ds_from(&[&[t, f, t, t, f, f, t, f], &[f, f, t, f, t, f, t, t]]);
        let p = ds.row(0);
        let q = ds.row(1);
        let d = p.bits() as u32;
        let pu = p.to_unsigned();
        let qu = q.to_unsigned();
        let pc = p.complement_to_unsigned();
        let qc = q.complement_to_unsigned();
        let dot = |a: &[u32], b: &[u32]| a.iter().zip(b).map(|(&x, &y)| x * y).sum::<u32>();
        assert_eq!(p.hamming(&q), d - dot(&pu, &qu) - dot(&pc, &qc));
    }

    #[test]
    fn unsigned_expansion_round_trips() {
        let t = true;
        let f = false;
        let ds = ds_from(&[&[t, f, f, t, t]]);
        let u = ds.row(0).to_unsigned();
        assert_eq!(u, vec![1, 0, 0, 1, 1]);
        let c = ds.row(0).complement_to_unsigned();
        assert_eq!(c, vec![0, 1, 1, 0, 0]);
    }

    #[test]
    fn binary_vec_ref_constructor_validates() {
        let words = [0u64; 2];
        assert!(BinaryVecRef::new(&words, 128).is_ok());
        assert!(BinaryVecRef::new(&words, 0).is_err());
        assert!(BinaryVecRef::new(&words, 64).is_err());
    }
}

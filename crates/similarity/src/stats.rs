//! Small statistical helpers (mean, population standard deviation, dot
//! products, norms) shared by the measures and the segment profiles.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (`σ`, divisor `n`), matching the segment
/// statistics used by LB_FNN \[26\].
#[inline]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.max(0.0).sqrt()
}

/// Dot product of two equal-length slices — dispatched chunked kernel.
///
/// Delegates to the active `simpim-kern` backend (AVX2/SSE2/NEON or the
/// portable chunked reference). Every backend accumulates into
/// [`simpim_kern::LANES`] (4) independent lanes over 4-element blocks and
/// folds the lanes (then the ragged tail) in a fixed order, so the result
/// is a pure function of the inputs: identical bits on every call, every
/// thread count, every backend, every machine running the same float
/// ops. It differs from the sequential [`dot_scalar`] reference only by
/// float reassociation, bounded by a few ULPs per element (see the
/// equivalence tests).
///
/// # Panics
/// Panics in debug builds when the lengths differ; callers validate
/// dimensionality at container boundaries.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    simpim_kern::dot(a, b)
}

/// Sequential reference form of [`dot`]: one running sum in element
/// order. Kept for the equivalence tests and as the ground truth the
/// chunked kernel is validated against.
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared L2 norm `Σ xᵢ²` — dispatched chunked kernel (see [`dot`]).
/// The kern backend shares one implementation (and one tail helper)
/// between `dot` and `norm_sq`, so the two can never drift.
#[inline]
pub fn norm_sq(xs: &[f64]) -> f64 {
    simpim_kern::norm_sq(xs)
}

/// L2 norm.
#[inline]
pub fn norm(xs: &[f64]) -> f64 {
    norm_sq(xs).sqrt()
}

/// Sum of all elements.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_constants() {
        let xs = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(mean(&xs), 2.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn mean_and_std_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        // population variance of 1..4 is 1.25
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(norm_sq(&[]), 0.0);
    }

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(norm_sq(&a), 14.0);
        assert!((norm(&a) - 14.0f64.sqrt()).abs() < 1e-12);
    }

    /// Deterministic pseudo-random f64 in [-1, 1).
    fn prng(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn chunked_dot_exactly_matches_scalar_on_dyadic_inputs() {
        // Quarter-integer inputs: every product and every partial sum is
        // exactly representable, so reassociation cannot change the
        // result — chunked and scalar must agree bit for bit. Exhaustive
        // over every length through several 4-lane blocks plus tails.
        for len in 0usize..=67 {
            let a: Vec<f64> = (0..len)
                .map(|i| ((i * 7 + 3) % 17) as f64 * 0.25 - 2.0)
                .collect();
            let b: Vec<f64> = (0..len)
                .map(|i| ((i * 5 + 1) % 13) as f64 * 0.25 - 1.5)
                .collect();
            assert_eq!(dot(&a, &b), dot_scalar(&a, &b), "len={len}");
            assert_eq!(
                norm_sq(&a),
                a.iter().map(|&x| x * x).sum::<f64>(),
                "len={len}"
            );
        }
    }

    #[test]
    fn chunked_dot_is_ulp_close_to_scalar_on_general_inputs() {
        let mut state = 0x2545f4914f6cdd1du64;
        for len in 0usize..=130 {
            let a: Vec<f64> = (0..len).map(|_| prng(&mut state)).collect();
            let b: Vec<f64> = (0..len).map(|_| prng(&mut state)).collect();
            let magnitude: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
            let diff = (dot(&a, &b) - dot_scalar(&a, &b)).abs();
            assert!(
                diff <= 1e-12 * (1.0 + magnitude),
                "len={len}: diff {diff} too large"
            );
        }
    }
}

//! Small statistical helpers (mean, population standard deviation, dot
//! products, norms) shared by the measures and the segment profiles.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (`σ`, divisor `n`), matching the segment
/// statistics used by LB_FNN \[26\].
#[inline]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.max(0.0).sqrt()
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds when the lengths differ; callers validate
/// dimensionality at container boundaries.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared L2 norm `Σ xᵢ²`.
#[inline]
pub fn norm_sq(xs: &[f64]) -> f64 {
    xs.iter().map(|&x| x * x).sum()
}

/// L2 norm.
#[inline]
pub fn norm(xs: &[f64]) -> f64 {
    norm_sq(xs).sqrt()
}

/// Sum of all elements.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_constants() {
        let xs = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(mean(&xs), 2.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn mean_and_std_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        // population variance of 1..4 is 1.25
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(norm_sq(&[]), 0.0);
    }

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(norm_sq(&a), 14.0);
        assert!((norm(&a) - 14.0f64.sqrt()).abs() < 1e-12);
    }
}

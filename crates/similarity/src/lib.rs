#![warn(missing_docs)]
//! # simpim-similarity
//!
//! Vector containers and similarity measures used throughout the `simpim`
//! workspace, reproducing Section II-B of the paper:
//!
//! * [`Dataset`] — dense row-major `N × d` floating-point data,
//! * [`BinaryDataset`] — packed binary codes for Hamming-distance workloads,
//! * the four similarity measures of Table 2: squared Euclidean distance
//!   ([`measures::euclidean_sq`]), cosine similarity ([`measures::cosine`]),
//!   Pearson correlation coefficient ([`measures::pearson`]) and Hamming
//!   distance ([`BinaryVecRef::hamming`]),
//! * the α-quantization of Section V-B (Eq. 5–6): [`quantize`],
//! * per-segment mean/standard-deviation statistics used by the segmented
//!   bounds (LB_SM, LB_FNN) and by dimensionality reduction: [`segments`].
//!
//! Everything here is plain host-side math; the ReRAM functional model lives
//! in `simpim-reram` and the PIM-aware reformulations in `simpim-core`.

pub mod binary;
pub mod dataset;
pub mod error;
pub mod measures;
pub mod quantize;
pub mod segments;
pub mod stats;

pub use binary::{BinaryDataset, BinaryVecRef};
pub use dataset::Dataset;
pub use error::SimilarityError;
pub use measures::Measure;
pub use quantize::{NormalizedDataset, QuantizedDataset, QuantizedVec, Quantizer, RowStats};
pub use segments::{SegmentProfile, SegmentStats};

//! Error type shared by the similarity primitives.

use std::fmt;

use crate::measures::Measure;

/// Errors raised while constructing or combining vector containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimilarityError {
    /// Two operands had different dimensionality.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A container was constructed from a buffer whose length is not a
    /// multiple of the declared dimensionality.
    RaggedBuffer {
        /// Buffer length.
        len: usize,
        /// Declared dimensionality.
        dim: usize,
    },
    /// Dimensionality must be non-zero.
    EmptyDimension,
    /// Segment length must evenly divide the dimensionality.
    InvalidSegmentation {
        /// Vector dimensionality.
        dim: usize,
        /// Requested segment count.
        segments: usize,
    },
    /// A row index beyond the container's current length.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of rows actually stored.
        len: usize,
    },
    /// A value outside the domain expected by an operation (e.g. a
    /// non-finite float fed to the quantizer).
    InvalidValue {
        /// What was invalid.
        context: &'static str,
    },
    /// The requested measure is not defined for this operand kind (e.g.
    /// Hamming distance over floating-point vectors).
    UnsupportedMeasure {
        /// The measure that was requested.
        measure: Measure,
        /// Why it is unsupported here.
        context: &'static str,
    },
}

impl fmt::Display for SimilarityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            Self::RaggedBuffer { len, dim } => {
                write!(
                    f,
                    "buffer of length {len} is not a multiple of dimension {dim}"
                )
            }
            Self::EmptyDimension => write!(f, "dimensionality must be non-zero"),
            Self::InvalidSegmentation { dim, segments } => {
                write!(
                    f,
                    "cannot split {dim} dimensions into {segments} equal segments"
                )
            }
            Self::IndexOutOfRange { index, len } => {
                write!(f, "row index {index} out of range (len = {len})")
            }
            Self::InvalidValue { context } => write!(f, "invalid value: {context}"),
            Self::UnsupportedMeasure { measure, context } => {
                write!(f, "unsupported measure {}: {context}", measure.name())
            }
        }
    }
}

impl std::error::Error for SimilarityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimilarityError::DimensionMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains("3 vs 4"));
        let e = SimilarityError::RaggedBuffer { len: 10, dim: 3 };
        assert!(e.to_string().contains("10"));
        let e = SimilarityError::InvalidSegmentation {
            dim: 10,
            segments: 3,
        };
        assert!(e.to_string().contains("segments"));
    }
}

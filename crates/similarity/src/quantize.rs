//! Normalization and α-quantization (Section V-B, Eq. 5–6).
//!
//! ReRAM crossbars operate on non-negative limited-precision integers, so
//! the paper maps a floating-point dataset onto the crossbars in two steps:
//!
//! 1. **Normalize** every value into `[0, 1]` (min–max over the dataset).
//!    Both the baseline algorithms and the PIM variants run on this
//!    normalized data, so results are directly comparable.
//! 2. **Scale and truncate**: `p̄ᵢ = pᵢ · α` and `⌊p̄ᵢ⌋` keeps the integer
//!    part (Eq. 5–6). The paper uses `α = 10⁶`.
//!
//! [`Quantizer`] captures the fitted range and α; [`QuantizedDataset`] holds
//! the integer vectors together with the per-row scalar statistics
//! (`Σ p̄ᵢ²`, `Σ p̄ᵢ`, `Σ ⌊p̄ᵢ⌋`) that the PIM-aware Φ functions of
//! `simpim-core` are assembled from.

use crate::dataset::Dataset;
use crate::error::SimilarityError;

/// The paper's default scaling factor (Section VI-B).
pub const DEFAULT_ALPHA: f64 = 1e6;

/// Min–max normalization plus α-scaling fitted on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quantizer {
    lo: f64,
    hi: f64,
    alpha: f64,
}

/// Per-vector scalar statistics of the scaled representation, computed once
/// (offline for dataset rows, once per query online) and reused by every
/// PIM-aware bound.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct RowStats {
    /// `Σ p̄ᵢ²` over the scaled (not truncated) values.
    pub sum_sq_scaled: f64,
    /// `Σ p̄ᵢ` over the scaled values (used by CS/PCC decompositions).
    pub sum_scaled: f64,
    /// `Σ ⌊p̄ᵢ⌋` over the truncated integers.
    pub sum_floor: u64,
    /// `Σ ⌊p̄ᵢ⌋²` (used by PCC's quantized Φa).
    pub sum_floor_sq: u64,
}

/// One quantized vector: the integer parts `⌊p̄⌋` plus its [`RowStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVec {
    /// `⌊p̄ᵢ⌋` for every dimension, each in `[0, α]`.
    pub floors: Vec<u32>,
    /// Scalar statistics of the scaled vector.
    pub stats: RowStats,
}

/// A dataset after min–max normalization into `[0, 1]`.
///
/// Thin wrapper distinguishing "already normalized" data in APIs; the PIM
/// pipeline (and the paper's baselines) always run on normalized data.
/// `repr(transparent)` so a `&Dataset` can be re-viewed as a
/// `&NormalizedDataset` without copying the rows
/// ([`NormalizedDataset::assert_normalized_ref`]).
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct NormalizedDataset {
    inner: Dataset,
}

/// The α-quantized form of an entire dataset: `N × d` integer parts stored
/// row-major plus per-row [`RowStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDataset {
    floors: Vec<u32>,
    stats: Vec<RowStats>,
    n: usize,
    d: usize,
    quantizer: Quantizer,
}

impl Quantizer {
    /// Fits the normalization range from a dataset and fixes α.
    pub fn fit(dataset: &Dataset, alpha: f64) -> Result<Self, SimilarityError> {
        if !(alpha.is_finite() && alpha >= 1.0) {
            return Err(SimilarityError::InvalidValue {
                context: "alpha must be finite and ≥ 1",
            });
        }
        let (lo, hi) = dataset.value_range().ok_or(SimilarityError::InvalidValue {
            context: "cannot fit quantizer on empty dataset",
        })?;
        if !lo.is_finite() || !hi.is_finite() {
            return Err(SimilarityError::InvalidValue {
                context: "dataset contains non-finite values",
            });
        }
        Ok(Self { lo, hi, alpha })
    }

    /// A quantizer over data already in `[0, 1]`.
    pub fn identity(alpha: f64) -> Result<Self, SimilarityError> {
        if !(alpha.is_finite() && alpha >= 1.0) {
            return Err(SimilarityError::InvalidValue {
                context: "alpha must be finite and ≥ 1",
            });
        }
        Ok(Self {
            lo: 0.0,
            hi: 1.0,
            alpha,
        })
    }

    /// The scaling factor α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Normalizes one raw value into `[0, 1]`. Values outside the fitted
    /// range are clamped (can occur for queries unseen during fitting).
    #[inline]
    pub fn normalize(&self, v: f64) -> f64 {
        if self.hi <= self.lo {
            return 0.0;
        }
        ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    /// Scaled value `p̄ᵢ = normalize(v) · α` (Eq. 5).
    #[inline]
    pub fn scale(&self, v: f64) -> f64 {
        self.normalize(v) * self.alpha
    }

    /// Integer part `⌊p̄ᵢ⌋` (Eq. 6), guaranteed within `[0, α]`.
    #[inline]
    pub fn floor(&self, v: f64) -> u32 {
        self.scale(v) as u32
    }

    /// Quantizes one vector of raw values, producing integer parts and the
    /// scalar statistics required by the PIM-aware Φ functions.
    pub fn quantize_vec(&self, raw: &[f64]) -> Result<QuantizedVec, SimilarityError> {
        let mut floors = Vec::with_capacity(raw.len());
        let mut stats = RowStats::default();
        for &v in raw {
            if !v.is_finite() {
                return Err(SimilarityError::InvalidValue {
                    context: "non-finite input value",
                });
            }
            let scaled = self.scale(v);
            let fl = scaled as u32;
            stats.sum_sq_scaled += scaled * scaled;
            stats.sum_scaled += scaled;
            stats.sum_floor += u64::from(fl);
            stats.sum_floor_sq += u64::from(fl) * u64::from(fl);
            floors.push(fl);
        }
        Ok(QuantizedVec { floors, stats })
    }

    /// Normalizes a whole dataset into `[0, 1]`.
    pub fn normalize_dataset(&self, dataset: &Dataset) -> NormalizedDataset {
        let mut flat = Vec::with_capacity(dataset.len() * dataset.dim());
        for row in dataset.rows() {
            flat.extend(row.iter().map(|&v| self.normalize(v)));
        }
        NormalizedDataset {
            inner: Dataset::from_flat(flat, dataset.dim()).expect("shape preserved"),
        }
    }

    /// Quantizes a whole dataset.
    pub fn quantize_dataset(&self, dataset: &Dataset) -> Result<QuantizedDataset, SimilarityError> {
        let n = dataset.len();
        let d = dataset.dim();
        let mut floors = Vec::with_capacity(n * d);
        let mut stats = Vec::with_capacity(n);
        for row in dataset.rows() {
            let qv = self.quantize_vec(row)?;
            floors.extend_from_slice(&qv.floors);
            stats.push(qv.stats);
        }
        Ok(QuantizedDataset {
            floors,
            stats,
            n,
            d,
            quantizer: *self,
        })
    }
}

impl NormalizedDataset {
    /// The normalized data as a plain dataset.
    #[inline]
    pub fn dataset(&self) -> &Dataset {
        &self.inner
    }

    /// Consumes the wrapper.
    pub fn into_dataset(self) -> Dataset {
        self.inner
    }

    /// Wraps a dataset the caller guarantees to be within `[0, 1]`.
    /// Verified in debug builds.
    pub fn assert_normalized(dataset: Dataset) -> Self {
        debug_assert!(
            dataset.as_flat().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "values outside [0,1]"
        );
        Self { inner: dataset }
    }

    /// Borrows a dataset the caller guarantees to be within `[0, 1]`,
    /// without cloning the rows. Verified in debug builds.
    pub fn assert_normalized_ref(dataset: &Dataset) -> &Self {
        debug_assert!(
            dataset.as_flat().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "values outside [0,1]"
        );
        // SAFETY: `NormalizedDataset` is `repr(transparent)` over
        // `Dataset`, so the reference layouts are identical.
        unsafe { &*(dataset as *const Dataset as *const Self) }
    }
}

impl QuantizedDataset {
    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The quantizer that produced this dataset.
    #[inline]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Integer parts of the `i`-th vector.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.floors[i * self.d..(i + 1) * self.d]
    }

    /// Scalar statistics of the `i`-th vector.
    #[inline]
    pub fn stats(&self, i: usize) -> &RowStats {
        &self.stats[i]
    }

    /// Iterate over `(floors, stats)` pairs.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = (&[u32], &RowStats)> + '_ {
        self.floors.chunks_exact(self.d).zip(self.stats.iter())
    }

    /// The flat row-major integer buffer (what gets programmed on PIM).
    #[inline]
    pub fn as_flat(&self) -> &[u32] {
        &self.floors
    }

    /// Maximum operand bit-width actually required by the stored integers
    /// (`b` in the paper's crossbar space formulas). At least 1.
    pub fn operand_bits(&self) -> u32 {
        let max = self.floors.iter().copied().max().unwrap_or(0);
        (32 - max.leading_zeros()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Dataset {
        Dataset::from_rows(&[vec![-2.0, 0.0, 2.0], vec![0.0, 1.0, 2.0]]).unwrap()
    }

    #[test]
    fn fit_captures_range() {
        let q = Quantizer::fit(&raw(), 100.0).unwrap();
        assert_eq!(q.normalize(-2.0), 0.0);
        assert_eq!(q.normalize(2.0), 1.0);
        assert_eq!(q.normalize(0.0), 0.5);
        // clamping for out-of-range queries
        assert_eq!(q.normalize(-10.0), 0.0);
        assert_eq!(q.normalize(10.0), 1.0);
    }

    #[test]
    fn fit_rejects_bad_alpha_and_empty() {
        assert!(Quantizer::fit(&raw(), 0.5).is_err());
        assert!(Quantizer::fit(&raw(), f64::NAN).is_err());
        let empty = Dataset::with_dim(3).unwrap();
        assert!(Quantizer::fit(&empty, 10.0).is_err());
    }

    #[test]
    fn constant_dataset_normalizes_to_zero() {
        let ds = Dataset::from_rows(&[vec![5.0, 5.0]]).unwrap();
        let q = Quantizer::fit(&ds, 10.0).unwrap();
        assert_eq!(q.normalize(5.0), 0.0);
        assert_eq!(q.floor(5.0), 0);
    }

    #[test]
    fn floor_matches_paper_example() {
        // Fig. 9: p = 0.5532 with α = 1000 → p̄ = 553.2 → ⌊p̄⌋ = 553.
        let q = Quantizer::identity(1000.0).unwrap();
        assert_eq!(q.floor(0.5532), 553);
        assert_eq!(q.floor(0.9742), 974);
        assert_eq!(q.floor(0.0), 0);
        assert_eq!(q.floor(1.0), 1000);
    }

    #[test]
    fn quantize_vec_stats_are_consistent() {
        let q = Quantizer::identity(1000.0).unwrap();
        let v = [0.25, 0.5, 0.9991];
        let qv = q.quantize_vec(&v).unwrap();
        assert_eq!(qv.floors, vec![250, 500, 999]);
        assert_eq!(qv.stats.sum_floor, 1749);
        assert_eq!(qv.stats.sum_floor_sq, 250 * 250 + 500 * 500 + 999 * 999);
        let expect_sq = 250.0f64 * 250.0 + 500.0 * 500.0 + 999.1f64 * 999.1;
        assert!((qv.stats.sum_sq_scaled - expect_sq).abs() < 1e-6);
        assert!((qv.stats.sum_scaled - 1749.1).abs() < 1e-9);
    }

    #[test]
    fn quantize_vec_rejects_non_finite() {
        let q = Quantizer::identity(10.0).unwrap();
        assert!(q.quantize_vec(&[f64::NAN]).is_err());
        assert!(q.quantize_vec(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn dataset_quantization_round_trips() {
        let ds = raw();
        let q = Quantizer::fit(&ds, 100.0).unwrap();
        let qd = q.quantize_dataset(&ds).unwrap();
        assert_eq!(qd.len(), 2);
        assert_eq!(qd.dim(), 3);
        assert_eq!(qd.row(0), &[0, 50, 100]);
        assert_eq!(qd.row(1), &[50, 75, 100]);
        assert_eq!(qd.stats(0).sum_floor, 150);
        assert!(qd.operand_bits() >= 7); // 100 needs 7 bits
    }

    #[test]
    fn normalize_dataset_bounds() {
        let ds = raw();
        let q = Quantizer::fit(&ds, 100.0).unwrap();
        let nd = q.normalize_dataset(&ds);
        assert!(nd
            .dataset()
            .as_flat()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(nd.dataset().dim(), 3);
    }

    #[test]
    fn operand_bits_of_zero_dataset() {
        let ds = Dataset::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let q = Quantizer::fit(&ds, 100.0).unwrap(); // constant → all zeros
        let qd = q.quantize_dataset(&ds).unwrap();
        assert_eq!(qd.operand_bits(), 1);
    }
}

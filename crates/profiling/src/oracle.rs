//! PIM-oracle estimation (Section IV-C, Eq. 2).
//!
//! `T_PIM-oracle = T_total − Σ_{fᵢ ∈ F} T_fᵢ`: the runtime if every
//! offloadable function cost nothing — a lower bound on any PIM
//! implementation and the yardstick of Figs. 7, 13(b), 16 and 18.

use crate::functions::FunctionProfiler;
use simpim_simkit::HostParams;

/// Oracle estimate for one algorithm profile.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OracleReport {
    /// Full model time (`T_total`), ns.
    pub total_ns: f64,
    /// Time attributed to the offloadable set `F`, ns.
    pub offloadable_ns: f64,
    /// `T_PIM-oracle` (Eq. 2), ns.
    pub oracle_ns: f64,
    /// `T_total / T_PIM-oracle` (∞ when fully offloadable).
    pub speedup_ceiling: f64,
    /// Which functions were counted into `F`.
    pub offloaded: Vec<String>,
}

/// Computes Eq. 2 over a function profile. `offloadable` names the set `F`
/// (e.g. `["ED", "LB_FNN^7"]`); names missing from the profile are
/// ignored.
pub fn oracle_report(
    profile: &FunctionProfiler,
    params: &HostParams,
    offloadable: &[&str],
) -> OracleReport {
    let total_ns = profile.total_time(params).total_ns();
    let mut offloadable_ns = 0.0;
    let mut offloaded = Vec::new();
    for name in offloadable {
        let t = profile.function_time(name, params).total_ns();
        if t > 0.0 {
            offloadable_ns += t;
            offloaded.push((*name).to_string());
        }
    }
    let oracle_ns = (total_ns - offloadable_ns).max(0.0);
    let speedup_ceiling = if oracle_ns > 0.0 {
        total_ns / oracle_ns
    } else {
        f64::INFINITY
    };
    OracleReport {
        total_ns,
        offloadable_ns,
        oracle_ns,
        speedup_ceiling,
        offloaded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simpim_simkit::OpCounters;

    fn profile() -> FunctionProfiler {
        let mut p = FunctionProfiler::new();
        let mut ed = OpCounters::new();
        for _ in 0..10_000 {
            ed.euclidean_kernel(420, 420 * 8);
        }
        p.record("ED", ed);
        let mut other = OpCounters::new();
        other.cmp = 10_000;
        other.branch = 10_000;
        p.record("other", other);
        p
    }

    #[test]
    fn oracle_subtracts_offloadable_time() {
        let p = profile();
        let params = HostParams::default();
        let r = oracle_report(&p, &params, &["ED"]);
        assert!(
            r.speedup_ceiling > 50.0,
            "ED dominates a Standard profile: {r:?}"
        );
        assert!((r.total_ns - (r.offloadable_ns + r.oracle_ns)).abs() < 1e-6);
        assert_eq!(r.offloaded, vec!["ED"]);
    }

    #[test]
    fn unknown_functions_are_ignored() {
        let p = profile();
        let r = oracle_report(&p, &HostParams::default(), &["ED", "LB_MISSING"]);
        assert_eq!(r.offloaded, vec!["ED"]);
    }

    #[test]
    fn empty_offload_set_keeps_total() {
        let p = profile();
        let r = oracle_report(&p, &HostParams::default(), &[]);
        assert_eq!(r.oracle_ns, r.total_ns);
        assert!((r.speedup_ceiling - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_offload_is_infinite_ceiling() {
        let mut p = FunctionProfiler::new();
        let mut c = OpCounters::new();
        c.arith = 100;
        p.record("ED", c);
        let r = oracle_report(&p, &HostParams::default(), &["ED"]);
        assert!(r.speedup_ceiling.is_infinite());
        assert_eq!(r.oracle_ns, 0.0);
    }
}

//! Function-level profiling (Section IV-B).
//!
//! The paper decomposes an algorithm's runtime into the time spent in each
//! function (`T_total = Σ T_fᵢ + T_other`) using `clock_gettime` scopes.
//! Here every instrumented algorithm attributes deterministic operation
//! counters to named functions; model time per function follows from the
//! `simpim-simkit` cost model, so profiles are exactly reproducible.

use std::collections::BTreeMap;

use simpim_simkit::{HostParams, OpCounters, TimeBreakdown};

/// Accumulated counters for one named function.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FunctionRecord {
    /// Operation counters attributed to this function.
    pub counters: OpCounters,
    /// Number of recorded invocations (batch-level, not per-object).
    pub calls: u64,
}

/// The per-function profile of one algorithm run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FunctionProfiler {
    entries: BTreeMap<String, FunctionRecord>,
}

/// The conventional name for un-attributed work (`T_other`).
pub const OTHER: &str = "other";

impl FunctionProfiler {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes `counters` to `name`.
    pub fn record(&mut self, name: &str, counters: OpCounters) {
        let e = self.entries.entry(name.to_string()).or_default();
        e.counters.add(&counters);
        e.calls += 1;
    }

    /// The record for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&FunctionRecord> {
        self.entries.get(name)
    }

    /// All function names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Counters summed over every function.
    pub fn total_counters(&self) -> OpCounters {
        let mut t = OpCounters::new();
        for e in self.entries.values() {
            t.add(&e.counters);
        }
        t
    }

    /// Model time of one function under `params`.
    pub fn function_time(&self, name: &str, params: &HostParams) -> TimeBreakdown {
        self.entries
            .get(name)
            .map(|e| params.evaluate(&e.counters))
            .unwrap_or_default()
    }

    /// Model time of the whole profile.
    pub fn total_time(&self, params: &HostParams) -> TimeBreakdown {
        params.evaluate(&self.total_counters())
    }

    /// The Fig. 6 view: `(name, fraction of total model time)`, sorted by
    /// descending fraction. Fractions sum to 1 for a non-empty profile.
    pub fn fractions(&self, params: &HostParams) -> Vec<(String, f64)> {
        let total = self.total_time(params).total_ns();
        let mut out: Vec<(String, f64)> = self
            .entries
            .iter()
            .map(|(name, e)| {
                let t = params.evaluate(&e.counters).total_ns();
                (name.clone(), if total == 0.0 { 0.0 } else { t / total })
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// The function with the largest model time — the bottleneck the
    /// framework decides to offload (Section III-B).
    pub fn bottleneck(&self, params: &HostParams) -> Option<(String, f64)> {
        self.fractions(params).into_iter().next()
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &FunctionProfiler) {
        for (name, rec) in &other.entries {
            let e = self.entries.entry(name.clone()).or_default();
            e.counters.add(&rec.counters);
            e.calls += rec.calls;
        }
    }

    /// Iterates `(name, record)` pairs in name order (artifact assembly).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FunctionRecord)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl simpim_obs::ToJson for FunctionRecord {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("counters", self.counters.to_json()),
            ("calls", self.calls.to_json()),
        ])
    }
}

impl simpim_obs::ToJson for FunctionProfiler {
    fn to_json(&self) -> simpim_obs::Json {
        simpim_obs::Json::Obj(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HostParams {
        HostParams::default()
    }

    fn scan_counters(objects: u64, d: u64) -> OpCounters {
        let mut c = OpCounters::new();
        for _ in 0..objects {
            c.euclidean_kernel(d, d * 8);
        }
        c
    }

    #[test]
    fn record_and_fractions() {
        let mut p = FunctionProfiler::new();
        p.record("ED", scan_counters(1000, 400));
        p.record("LB_FNN", scan_counters(1000, 25));
        p.record(
            OTHER,
            OpCounters {
                cmp: 1000,
                branch: 1000,
                ..OpCounters::new()
            },
        );
        let fr = p.fractions(&params());
        assert_eq!(fr.len(), 3);
        assert_eq!(fr[0].0, "ED", "ED dominates a Standard-style profile");
        assert!(fr[0].1 > 0.9);
        let sum: f64 = fr.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(p.bottleneck(&params()).unwrap().0, "ED");
    }

    #[test]
    fn totals_equal_sum_of_parts() {
        let mut p = FunctionProfiler::new();
        p.record("a", scan_counters(10, 10));
        p.record("b", scan_counters(20, 10));
        let total = p.total_time(&params()).total_ns();
        let parts =
            p.function_time("a", &params()).total_ns() + p.function_time("b", &params()).total_ns();
        assert!((total - parts).abs() < 1e-9);
    }

    #[test]
    fn repeated_records_accumulate() {
        let mut p = FunctionProfiler::new();
        p.record("f", scan_counters(5, 8));
        p.record("f", scan_counters(5, 8));
        let r = p.get("f").unwrap();
        assert_eq!(r.calls, 2);
        assert_eq!(r.counters.mul, 2 * 5 * 8);
        assert!(p.get("missing").is_none());
        assert_eq!(
            p.function_time("missing", &params()),
            TimeBreakdown::default()
        );
    }

    #[test]
    fn merge_combines_profiles() {
        let mut a = FunctionProfiler::new();
        a.record("f", scan_counters(5, 8));
        let mut b = FunctionProfiler::new();
        b.record("f", scan_counters(5, 8));
        b.record("g", scan_counters(1, 8));
        a.merge(&b);
        assert_eq!(a.get("f").unwrap().calls, 2);
        assert_eq!(a.names(), vec!["f", "g"]);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = FunctionProfiler::new();
        assert!(p.fractions(&params()).is_empty());
        assert!(p.bottleneck(&params()).is_none());
        assert_eq!(p.total_time(&params()).total_ns(), 0.0);
    }
}

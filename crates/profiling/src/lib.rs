#![warn(missing_docs)]
//! # simpim-profiling
//!
//! The algorithm-profiling layer of Section IV:
//!
//! * [`functions`] — performance breakdown **by function** (Section IV-B):
//!   every mining algorithm records deterministic operation counters per
//!   named function (`ED`, `LB_FNN`, `bound update`, `other`), the
//!   substitute for `clock_gettime` scopes.
//! * [`hardware`] — performance breakdown **by hardware component**
//!   (Section IV-A): counters → the five Eq. 1 stall classes via the
//!   `simpim-simkit` cost model, the substitute for PAPI; includes the
//!   trace-driven cache-simulator cross-check.
//! * [`oracle`] — the potential gain of PIM (Section IV-C, Eq. 2):
//!   `T_PIM-oracle = T_total − Σ_{f ∈ F} T_f`, a lower bound on any PIM
//!   implementation of the algorithm.

pub mod functions;
pub mod hardware;
pub mod oracle;

pub use functions::{FunctionProfiler, FunctionRecord};
pub use hardware::hardware_breakdown;
pub use oracle::{oracle_report, OracleReport};

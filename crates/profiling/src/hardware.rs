//! Hardware-component profiling (Section IV-A) — the PAPI substitute.
//!
//! Converts an algorithm's accumulated counters into the five Eq. 1 stall
//! classes, and cross-checks the analytical memory-stall assumption with
//! the trace-driven cache simulator on a sampled access pattern.

use simpim_simkit::{CacheConfig, Hierarchy, HostParams, OpCounters, TimeBreakdown};

/// The Fig. 5 view: Eq. 1 components of a whole algorithm run.
pub fn hardware_breakdown(counters: &OpCounters, params: &HostParams) -> TimeBreakdown {
    params.evaluate(counters)
}

/// Result of the trace-driven cross-check.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceCheck {
    /// Fraction of line fetches serviced by memory in the cache simulator.
    pub simulated_memory_fraction: f64,
    /// Average simulated access latency (ns).
    pub simulated_avg_latency_ns: f64,
}

/// Replays a Standard-scan access pattern (one sequential pass over
/// `bytes_per_object × objects`, repeated `passes` times) through the paper
/// machine's cache hierarchy. The analytical model assumes one-pass scans
/// of data far larger than L3 miss essentially every line — this check
/// quantifies that on a down-scaled trace.
pub fn scan_trace_check(objects: u64, bytes_per_object: u64, passes: u32) -> TraceCheck {
    let mut h = Hierarchy::paper_machine();
    let total = objects * bytes_per_object;
    for _ in 0..passes {
        h.stream_range(0, total, 8);
    }
    let s = *h.stats();
    let line = CacheConfig::l1().line_bytes as u64;
    let lines = total / line * u64::from(passes);
    TraceCheck {
        simulated_memory_fraction: if lines == 0 {
            0.0
        } else {
            s.memory as f64 / lines as f64
        },
        simulated_avg_latency_ns: s.avg_latency_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_delegates_to_model() {
        let mut c = OpCounters::new();
        c.euclidean_kernel(420, 420 * 8);
        let b = hardware_breakdown(&c, &HostParams::default());
        assert!(b.total_ns() > 0.0);
        assert!(b.tcache_ns > b.talu_ns);
    }

    #[test]
    fn large_scan_misses_every_line() {
        // 64 MB of data: far beyond the 20 MB L3 — every line refetched on
        // every pass, confirming the analytical "streams pay full
        // bandwidth cost" assumption.
        let check = scan_trace_check(1 << 20, 64, 2);
        assert!(check.simulated_memory_fraction > 0.99, "{check:?}");
    }

    #[test]
    fn small_working_set_stays_cached() {
        // 16 KB working set: second pass hits L1, so across two passes at
        // most half the line fetches reach memory.
        let check = scan_trace_check(256, 64, 2);
        assert!(check.simulated_memory_fraction <= 0.5 + 1e-9, "{check:?}");
        assert!(check.simulated_avg_latency_ns < 10.0);
    }
}

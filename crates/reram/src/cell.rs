//! A single ReRAM cell.
//!
//! A cell switches among `2^h` resistance levels, representing an `h`-bit
//! non-negative integer (Section II-A). Programming (writing) a cell wears
//! it out; Table 1 bounds ReRAM endurance at 10⁸–10¹¹ writes, which is why
//! Section V-C compresses datasets instead of re-programming crossbars.

use crate::error::ReRamError;

/// One ReRAM cell: an `h`-bit conductance level plus its write counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    level: u8,
    writes: u32,
}

impl Cell {
    /// A fresh cell at level 0 with zero wear.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs the cell to `level`. Fails when the level does not fit the
    /// cell's `h`-bit precision. Always counts as one write, even when the
    /// level is unchanged (the device still receives a programming pulse).
    pub fn program(&mut self, level: u8, cell_bits: u32) -> Result<(), ReRamError> {
        if u32::from(level) >= (1u32 << cell_bits) {
            return Err(ReRamError::OperandOverflow {
                value: u64::from(level),
                bits: cell_bits,
            });
        }
        self.level = level;
        self.writes = self.writes.saturating_add(1);
        Ok(())
    }

    /// The stored conductance level. Reading does not wear the cell.
    #[inline]
    pub fn read(&self) -> u8 {
        self.level
    }

    /// Number of programming pulses this cell has received.
    #[inline]
    pub fn writes(&self) -> u32 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_and_read() {
        let mut c = Cell::new();
        assert_eq!(c.read(), 0);
        c.program(3, 2).unwrap();
        assert_eq!(c.read(), 3);
        assert_eq!(c.writes(), 1);
    }

    #[test]
    fn program_rejects_out_of_range() {
        let mut c = Cell::new();
        assert!(c.program(4, 2).is_err()); // 2-bit cell holds 0..=3
        assert_eq!(c.read(), 0);
        assert_eq!(c.writes(), 0);
        assert!(c.program(255, 8).is_ok());
    }

    #[test]
    fn rewrite_counts_wear() {
        let mut c = Cell::new();
        for _ in 0..5 {
            c.program(1, 1).unwrap();
        }
        assert_eq!(c.writes(), 5);
    }

    #[test]
    fn reads_do_not_wear() {
        let mut c = Cell::new();
        c.program(2, 2).unwrap();
        for _ in 0..100 {
            let _ = c.read();
        }
        assert_eq!(c.writes(), 1);
    }
}

//! High-dimensional decomposition and the gather-crossbar reduction tree
//! (Fig. 3, Fig. 11, Eq. 11–12).
//!
//! A crossbar holds at most `m` dimensions, so an `s`-dimensional vector is
//! split over `⌈s/m⌉` *data crossbars*. Their partial sums are reduced by a
//! tree of *gather crossbars* programmed with the all-ones vector: level `i`
//! of the tree holds `⌈s/mⁱ⌉` crossbars, each summing up to `m` partials,
//! until one value remains.
//!
//! [`crossbar_cost_per_pair`] reproduces Eq. 11 (cost of one vector pair)
//! and [`dataset_crossbar_cost`] reproduces Eq. 12 (cost of a whole dataset,
//! with `m·h/b` objects packed per data-crossbar group) — the quantities
//! Theorem 4's memory manager optimizes over in `simpim-core`.

use crate::config::CrossbarConfig;
use crate::error::ReRamError;

/// Crossbar budget required by a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CrossbarCost {
    /// Data crossbars (`n_data` in Theorem 4).
    pub data: usize,
    /// Gather crossbars (`n_gather` in Theorem 4); zero when `s ≤ m`.
    pub gather: usize,
    /// Depth of the gather tree in levels (0 when no gathering is needed).
    pub gather_depth: usize,
    /// Vector chunks per object (`⌈s/m⌉`).
    pub chunks_per_object: usize,
    /// Objects sharing one data-crossbar group (`⌊m·h/b⌋`).
    pub group_size: usize,
    /// Number of object groups (`⌈N / group_size⌉`).
    pub groups: usize,
    /// Vector slots stacked vertically per crossbar (`⌊m/s⌋`, only when
    /// `s ≤ m`; 1 otherwise). Queries drive one slot per pass.
    pub slots_per_crossbar: usize,
}

impl CrossbarCost {
    /// Total crossbars consumed.
    #[inline]
    pub fn total(&self) -> usize {
        self.data + self.gather
    }
}

/// Sizes of the gather-tree levels for reducing `partials` values by factor
/// `m` per level: `[⌈p/m⌉, ⌈p/m²⌉, …, 1]`. Empty when `partials ≤ 1`.
pub fn gather_levels(partials: usize, m: usize) -> Vec<usize> {
    assert!(m >= 2, "gather tree requires m >= 2");
    let mut levels = Vec::new();
    let mut p = partials;
    while p > 1 {
        p = p.div_ceil(m);
        levels.push(p);
    }
    levels
}

/// Eq. 11 — crossbars consumed by the dot product of **one** vector pair of
/// dimensionality `s` on `m×m` crossbars, in fractional crossbar units for
/// `s ≤ m` (a vector occupies `s/m` of one crossbar).
pub fn crossbar_cost_per_pair(s: usize, m: usize) -> f64 {
    assert!(s > 0 && m > 0);
    if s <= m {
        return s as f64 / m as f64;
    }
    let data = s.div_ceil(m);
    let gather: usize = gather_levels(data, m).iter().sum();
    (data + gather) as f64
}

/// Eq. 12 — integer-exact crossbar budget for programming `n` vectors of
/// dimensionality `s` with `b`-bit operands.
///
/// Layout mechanics (Theorem 4's proof):
/// * one operand spans `⌈b/h⌉` adjacent bitlines, so a data-crossbar group
///   serves `g = ⌊m·h/b⌋` objects concurrently;
/// * for `s ≤ m`, `⌊m/s⌋` vector slots stack vertically in one crossbar
///   (queried one slot per pass);
/// * for `s > m`, each group needs `⌈s/m⌉` data crossbars plus a gather
///   tree with `⌈s/mⁱ⌉` crossbars at level `i`.
pub fn dataset_crossbar_cost(
    n: usize,
    s: usize,
    operand_bits: u32,
    cfg: &CrossbarConfig,
) -> Result<CrossbarCost, ReRamError> {
    cfg.validate()?;
    if n == 0 || s == 0 {
        return Err(ReRamError::InvalidConfig {
            what: "n and s must be non-zero",
        });
    }
    let m = cfg.size;
    let group_size = cfg.operands_per_row(operand_bits);
    if group_size == 0 {
        return Err(ReRamError::GeometryViolation {
            what: "operand width (cells)",
            got: cfg.cells_per_operand(operand_bits),
            limit: m,
        });
    }
    let groups = n.div_ceil(group_size);
    if s <= m {
        let slots = m / s;
        let data = groups.div_ceil(slots);
        Ok(CrossbarCost {
            data,
            gather: 0,
            gather_depth: 0,
            chunks_per_object: 1,
            group_size,
            groups,
            slots_per_crossbar: slots,
        })
    } else {
        let chunks = s.div_ceil(m);
        let levels = gather_levels(chunks, m);
        let gather_per_group: usize = levels.iter().sum();
        Ok(CrossbarCost {
            data: groups * chunks,
            gather: groups * gather_per_group,
            gather_depth: levels.len(),
            chunks_per_object: chunks,
            group_size,
            groups,
            slots_per_crossbar: 1,
        })
    }
}

/// The paper's closed-form `n_data = N·b·s / (m²·h)` (Theorem 4), kept for
/// documentation and cross-checked against the integer-exact layout in
/// tests. Returns a fractional crossbar count.
pub fn paper_ndata_closed_form(n: usize, s: usize, operand_bits: u32, cfg: &CrossbarConfig) -> f64 {
    (n as f64) * f64::from(operand_bits) * (s as f64)
        / ((cfg.size * cfg.size) as f64 * f64::from(cfg.cell_bits))
}

/// Functional gather-tree reduction used by the unit-level model and its
/// tests: reduces `partials` through simulated all-ones crossbars, `m`
/// values per crossbar per level, returning the final sum. Accumulation is
/// full-precision; callers wrap to the accumulator width.
pub fn reduce_through_tree(partials: &[u128], m: usize) -> u128 {
    assert!(m >= 2);
    let mut layer: Vec<u128> = partials.to_vec();
    while layer.len() > 1 {
        layer = layer.chunks(m).map(|c| c.iter().sum()).collect();
    }
    layer.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: usize, h: u32) -> CrossbarConfig {
        CrossbarConfig {
            size: m,
            cell_bits: h,
            dac_bits: 2,
            adc_bits: 32,
            ..Default::default()
        }
    }

    #[test]
    fn gather_levels_match_fig11() {
        // Fig. 11: s = 8, m = 2 → data 4, then levels 2, 1.
        assert_eq!(gather_levels(4, 2), vec![2, 1]);
        // s ≤ m ⇒ no gathering.
        assert_eq!(gather_levels(1, 4), Vec::<usize>::new());
        assert_eq!(gather_levels(16, 4), vec![4, 1]);
        assert_eq!(gather_levels(17, 4), vec![5, 2, 1]);
    }

    #[test]
    fn per_pair_cost_matches_eq11() {
        // s ≤ m: fractional s/m.
        assert!((crossbar_cost_per_pair(8, 256) - 8.0 / 256.0).abs() < 1e-12);
        // Fig. 11 example: s = 8, m = 2 → 4 data + 2 + 1 gather = 7.
        assert_eq!(crossbar_cost_per_pair(8, 2), 7.0);
    }

    #[test]
    fn dataset_cost_small_s_packs_slots() {
        // m = 256, h = 2, b = 32 → group 16 objects; s = 64 → 4 slots.
        let c = dataset_crossbar_cost(1000, 64, 32, &cfg(256, 2)).unwrap();
        assert_eq!(c.group_size, 16);
        assert_eq!(c.groups, 63); // ceil(1000/16)
        assert_eq!(c.slots_per_crossbar, 4);
        assert_eq!(c.data, 16); // ceil(63/4)
        assert_eq!(c.gather, 0);
        assert_eq!(c.total(), 16);
    }

    #[test]
    fn dataset_cost_large_s_needs_gather() {
        // s = 1024 on m = 256 → 4 chunks per object; gather levels: [1].
        let c = dataset_crossbar_cost(100, 1024, 32, &cfg(256, 2)).unwrap();
        assert_eq!(c.chunks_per_object, 4);
        assert_eq!(c.gather_depth, 1);
        assert_eq!(c.groups, 7); // ceil(100/16)
        assert_eq!(c.data, 28);
        assert_eq!(c.gather, 7);
    }

    #[test]
    fn integer_cost_tracks_paper_closed_form() {
        // On exact multiples the integer layout matches N·b·s/(m²·h).
        let xb = cfg(256, 2);
        let (n, s, b) = (4096usize, 128usize, 32u32);
        let c = dataset_crossbar_cost(n, s, b, &xb).unwrap();
        let closed = paper_ndata_closed_form(n, s, b, &xb);
        assert_eq!(c.data as f64, closed);
    }

    #[test]
    fn wide_operand_rejected() {
        // b = 32 on h = 1, m = 16 → 32 cells per operand > 16 columns.
        let xb = cfg(16, 1);
        assert!(dataset_crossbar_cost(10, 8, 32, &xb).is_err());
    }

    #[test]
    fn zero_inputs_rejected() {
        let xb = cfg(256, 2);
        assert!(dataset_crossbar_cost(0, 8, 32, &xb).is_err());
        assert!(dataset_crossbar_cost(8, 0, 32, &xb).is_err());
    }

    #[test]
    fn tree_reduction_is_exact_sum() {
        let partials: Vec<u128> = (1..=100u128).collect();
        assert_eq!(reduce_through_tree(&partials, 4), 5050);
        assert_eq!(reduce_through_tree(&partials, 2), 5050);
        assert_eq!(reduce_through_tree(&[], 2), 0);
        assert_eq!(reduce_through_tree(&[42], 2), 42);
    }
}

//! The materialized `m×m` crossbar — the unit-level functional model.
//!
//! Wordlines run horizontally (one per vector dimension), bitlines
//! vertically. Injecting DAC-converted voltages on the wordlines produces,
//! on every bitline, the analog sum `Σ_row input[row] · cell[row][col]`
//! (Fig. 1). Multi-bit operands span `⌈b/h⌉` adjacent bitlines (Fig. 2);
//! [`Crossbar::dot_products`] runs the full streamed pipeline and
//! recombines partials with shift-and-add.

use crate::bitslice::{slice_operand, SlicedQuery};
use crate::cell::Cell;
use crate::config::CrossbarConfig;
use crate::error::ReRamError;

/// A fully materialized crossbar of `m×m` cells.
///
/// Alongside the row-major cell array, the crossbar maintains *column
/// bit-planes*: for every bitline `col` and cell-bit position `s`, a
/// row-packed `u64` bitmap of which rows store a 1 in bit `s` of their
/// level. The planes are kept in sync by [`Crossbar::program_cell`] and
/// let the ideal analog cycle run word-wide (one AND+popcount covers 64
/// rows of a bit-plane) instead of cell-by-cell — see
/// [`Crossbar::packed_cycle`].
#[derive(Debug, Clone)]
pub struct Crossbar {
    cfg: CrossbarConfig,
    cells: Vec<Cell>, // row-major m×m
    /// `planes[(col·h + s)·words + w]` — bit `r` of word `w` set iff bit
    /// `s` of the level at `(row 64·w + r, col)` is 1.
    planes: Vec<u64>,
    /// `⌈m/64⌉` — row words per (column, bit) plane.
    words: usize,
}

impl Crossbar {
    /// A blank crossbar with all cells at level 0.
    pub fn new(cfg: CrossbarConfig) -> Result<Self, ReRamError> {
        cfg.validate()?;
        let words = cfg.size.div_ceil(64);
        Ok(Self {
            cfg,
            cells: vec![Cell::new(); cfg.cells()],
            planes: vec![0u64; cfg.size * cfg.cell_bits as usize * words],
            words,
        })
    }

    /// Geometry of this crossbar.
    #[inline]
    pub fn config(&self) -> &CrossbarConfig {
        &self.cfg
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.cfg.size + col
    }

    /// Programs one cell to `level`.
    pub fn program_cell(&mut self, row: usize, col: usize, level: u8) -> Result<(), ReRamError> {
        let m = self.cfg.size;
        if row >= m {
            return Err(ReRamError::GeometryViolation {
                what: "row",
                got: row,
                limit: m,
            });
        }
        if col >= m {
            return Err(ReRamError::GeometryViolation {
                what: "col",
                got: col,
                limit: m,
            });
        }
        let i = self.idx(row, col);
        self.cells[i].program(level, self.cfg.cell_bits)?;
        // Mirror the new level into the column bit-planes.
        let word = row / 64;
        let mask = 1u64 << (row % 64);
        for s in 0..self.cfg.cell_bits {
            let p = &mut self.planes
                [(col * self.cfg.cell_bits as usize + s as usize) * self.words + word];
            if (level >> s) & 1 == 1 {
                *p |= mask;
            } else {
                *p &= !mask;
            }
        }
        Ok(())
    }

    /// Reads one cell's level.
    pub fn read_cell(&self, row: usize, col: usize) -> u8 {
        self.cells[self.idx(row, col)].read()
    }

    /// Programs a column of stored operands: `column[i]` is the `b`-bit
    /// operand for dimension (row) `start_row + i`, occupying the
    /// `⌈b/h⌉` bitlines starting at `start_col`. Returns the number of cell
    /// writes performed.
    pub fn program_operand_column(
        &mut self,
        start_row: usize,
        start_col: usize,
        column: &[u64],
        operand_bits: u32,
    ) -> Result<u64, ReRamError> {
        let w = self.cfg.cells_per_operand(operand_bits);
        let m = self.cfg.size;
        if start_row + column.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "rows",
                got: start_row + column.len(),
                limit: m,
            });
        }
        if start_col + w > m {
            return Err(ReRamError::GeometryViolation {
                what: "cols",
                got: start_col + w,
                limit: m,
            });
        }
        let mut writes = 0u64;
        for (i, &v) in column.iter().enumerate() {
            let slices = slice_operand(v, operand_bits, self.cfg.cell_bits)?;
            for (j, &level) in slices.iter().enumerate() {
                self.program_cell(start_row + i, start_col + j, level)?;
                writes += 1;
            }
        }
        Ok(writes)
    }

    /// Programs every cell to level 1 — the all-ones *gather crossbar* used
    /// to sum partial results (Fig. 3). Returns cell writes performed.
    pub fn program_all_ones(&mut self) -> Result<u64, ReRamError> {
        let m = self.cfg.size;
        for row in 0..m {
            for col in 0..m {
                self.program_cell(row, col, 1)?;
            }
        }
        Ok((m * m) as u64)
    }

    /// One analog cycle: `inputs[row]` is the DAC level driven on wordline
    /// `row` (must fit `dac_bits`); missing trailing rows are not driven.
    /// Returns the per-bitline current sums, checked against the ADC
    /// resolution.
    pub fn analog_cycle(&self, inputs: &[u16]) -> Result<Vec<u64>, ReRamError> {
        let m = self.cfg.size;
        if inputs.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "inputs",
                got: inputs.len(),
                limit: m,
            });
        }
        let dac_max = 1u16 << self.cfg.dac_bits;
        let mut sums = vec![0u64; m];
        for (row, &u) in inputs.iter().enumerate() {
            if u >= dac_max {
                return Err(ReRamError::OperandOverflow {
                    value: u64::from(u),
                    bits: self.cfg.dac_bits,
                });
            }
            if u == 0 {
                continue;
            }
            let base = row * m;
            for (col, sum) in sums.iter_mut().enumerate() {
                *sum += u64::from(u) * u64::from(self.cells[base + col].read());
            }
        }
        let adc_limit = 1u64 << self.cfg.adc_bits;
        for &s in &sums {
            if s >= adc_limit {
                return Err(ReRamError::AdcOverflow {
                    value: s,
                    adc_bits: self.cfg.adc_bits,
                });
            }
        }
        Ok(sums)
    }

    /// Word-wide (packed) variant of [`Crossbar::analog_cycle`] —
    /// bit-identical results, computed from the column bit-planes.
    ///
    /// The analog sum decomposes over input bits `t` and cell bits `s`:
    ///
    /// ```text
    /// Σ_row u[row]·level[row][col]
    ///   = Σ_t Σ_s 2^(t+s) · |{row : bit_t(u[row]) ∧ bit_s(level[row][col])}|
    /// ```
    ///
    /// so after packing each input bit `t` into a row bitmap, one
    /// AND+popcount per 64 rows replaces 64 multiply-accumulates. All
    /// arithmetic is exact integer counting, so the result equals the
    /// scalar cycle bit for bit (asserted exhaustively in the tests).
    pub fn packed_cycle(&self, inputs: &[u16]) -> Result<Vec<u64>, ReRamError> {
        let m = self.cfg.size;
        if inputs.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "inputs",
                got: inputs.len(),
                limit: m,
            });
        }
        let dac_max = 1u16 << self.cfg.dac_bits;
        let dac_bits = self.cfg.dac_bits as usize;
        let cell_bits = self.cfg.cell_bits as usize;
        let words = self.words;
        // Pack input bit `t` across rows: in_planes[t·words + row/64].
        let mut in_planes = vec![0u64; dac_bits * words];
        let mut any = false;
        for (row, &u) in inputs.iter().enumerate() {
            if u >= dac_max {
                return Err(ReRamError::OperandOverflow {
                    value: u64::from(u),
                    bits: self.cfg.dac_bits,
                });
            }
            if u == 0 {
                continue;
            }
            any = true;
            let mask = 1u64 << (row % 64);
            for (t, chunk) in in_planes.chunks_exact_mut(words).enumerate() {
                if (u >> t) & 1 == 1 {
                    chunk[row / 64] |= mask;
                }
            }
        }
        let mut sums = vec![0u64; m];
        if any {
            for (col, sum) in sums.iter_mut().enumerate() {
                let mut acc = 0u64;
                let col_planes = &self.planes[col * cell_bits * words..];
                for s in 0..cell_bits {
                    let plane = &col_planes[s * words..(s + 1) * words];
                    for (t, in_plane) in in_planes.chunks_exact(words).enumerate() {
                        // One crossbar cycle's row/column coincidence
                        // count: AND + popcount, dispatched through the
                        // active simpim-kern backend (exact integer
                        // counting — identical on every backend).
                        let count = simpim_kern::and_popcount(plane, in_plane);
                        acc += count << (s + t);
                    }
                }
                *sum = acc;
            }
        }
        let adc_limit = 1u64 << self.cfg.adc_bits;
        for &s in &sums {
            if s >= adc_limit {
                return Err(ReRamError::AdcOverflow {
                    value: s,
                    adc_bits: self.cfg.adc_bits,
                });
            }
        }
        Ok(sums)
    }

    /// The shared streamed pipeline behind every `dot_products*` variant:
    /// drive the cached query slices cycle by cycle through `cycle_fn`
    /// (ideal/noisy/faulty analog model) and recombine the per-bitline
    /// sums with shift-and-add. Keeping the slicing, drive staging, and
    /// S&A in one place means kernel changes (like the packed cycle) land
    /// exactly once.
    fn streamed_pipeline<F>(
        &self,
        start_row: usize,
        sliced: &SlicedQuery,
        operand_bits: u32,
        mut cycle_fn: F,
    ) -> Result<Vec<u128>, ReRamError>
    where
        F: FnMut(&[u16]) -> Result<Vec<u64>, ReRamError>,
    {
        let m = self.cfg.size;
        if start_row + sliced.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "query rows",
                got: start_row + sliced.len(),
                limit: m,
            });
        }
        if sliced.dac_bits() != self.cfg.dac_bits {
            return Err(ReRamError::InvalidConfig {
                what: "query sliced for a different DAC resolution",
            });
        }
        let w = self.cfg.cells_per_operand(operand_bits);
        let n_ops = m / w;
        let cycles = sliced.cycles();
        let mut results = vec![0u128; n_ops];
        let mut drive = vec![0u16; start_row + sliced.len()];
        for k in 0..cycles {
            for (i, d) in drive[start_row..].iter_mut().enumerate() {
                *d = sliced.level(i, k);
            }
            let sums = cycle_fn(&drive)?;
            // Shift-and-add: bitline c·w + j carries operand slice j.
            for (c, result) in results.iter_mut().enumerate() {
                for j in 0..w {
                    let p = sums[c * w + j];
                    let shift = (j as u32) * self.cfg.cell_bits + (k as u32) * self.cfg.dac_bits;
                    *result = result.wrapping_add(u128::from(p) << shift);
                }
            }
        }
        Ok(results)
    }

    /// The full streamed dot-product pipeline of Fig. 2 for one query.
    ///
    /// `query[i]` multiplies the operands stored on rows
    /// `start_row..start_row+query.len()`; stored operands are `b`-bit wide
    /// and packed from bitline 0 (as laid out by
    /// [`Crossbar::program_operand_column`] with `start_col = c·⌈b/h⌉`).
    /// Returns one full-precision product-sum per stored operand column.
    ///
    /// The cycle count equals `⌈input_bits/dac⌉` — the quantity the timing
    /// model charges for.
    pub fn dot_products(
        &self,
        start_row: usize,
        query: &[u64],
        input_bits: u32,
        operand_bits: u32,
    ) -> Result<Vec<u128>, ReRamError> {
        let sliced = SlicedQuery::new(query, input_bits, self.cfg.dac_bits)?;
        self.dot_products_sliced(start_row, &sliced, operand_bits)
    }

    /// [`Crossbar::dot_products`] over a pre-sliced query — the hot entry
    /// point when the same query streams to many crossbars (the caller
    /// slices once per dispatch). Runs the word-wide packed cycle.
    pub fn dot_products_sliced(
        &self,
        start_row: usize,
        sliced: &SlicedQuery,
        operand_bits: u32,
    ) -> Result<Vec<u128>, ReRamError> {
        self.streamed_pipeline(start_row, sliced, operand_bits, |drive| {
            self.packed_cycle(drive)
        })
    }

    /// One analog cycle under bounded conductance variation: each cell
    /// contributes `input · level · (1 + δ)`; the ADC rounds to the
    /// nearest integer. Deterministic given the model's seed.
    pub fn analog_cycle_noisy(
        &self,
        inputs: &[u16],
        variation: &crate::variation::VariationModel,
    ) -> Result<Vec<u64>, ReRamError> {
        let m = self.cfg.size;
        if inputs.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "inputs",
                got: inputs.len(),
                limit: m,
            });
        }
        let dac_max = 1u16 << self.cfg.dac_bits;
        let mut sums = vec![0.0f64; m];
        for (row, &u) in inputs.iter().enumerate() {
            if u >= dac_max {
                return Err(ReRamError::OperandOverflow {
                    value: u64::from(u),
                    bits: self.cfg.dac_bits,
                });
            }
            if u == 0 {
                continue;
            }
            let base = row * m;
            for (col, sum) in sums.iter_mut().enumerate() {
                let level = f64::from(self.cells[base + col].read());
                *sum += f64::from(u) * level * (1.0 + variation.delta(row, col));
            }
        }
        let adc_limit = 1u64 << self.cfg.adc_bits;
        let mut out = Vec::with_capacity(m);
        for s in sums {
            let q = s.round().max(0.0) as u64;
            if q >= adc_limit {
                return Err(ReRamError::AdcOverflow {
                    value: q,
                    adc_bits: self.cfg.adc_bits,
                });
            }
            out.push(q);
        }
        Ok(out)
    }

    /// The streamed dot-product pipeline under bounded conductance
    /// variation. Same layout semantics as [`Crossbar::dot_products`]; the
    /// result deviates from the exact dot product by at most
    /// `max_relative · exact + rounding`, where `rounding` sums the ½-LSB
    /// ADC rounding across shifts (see
    /// [`crate::variation::VariationModel::dot_error_bound`] and the
    /// guard-banded bounds in `simpim-core`).
    pub fn dot_products_noisy(
        &self,
        start_row: usize,
        query: &[u64],
        input_bits: u32,
        operand_bits: u32,
        variation: &crate::variation::VariationModel,
    ) -> Result<Vec<u128>, ReRamError> {
        let sliced = SlicedQuery::new(query, input_bits, self.cfg.dac_bits)?;
        self.streamed_pipeline(start_row, &sliced, operand_bits, |drive| {
            self.analog_cycle_noisy(drive, variation)
        })
    }

    /// One analog cycle under an attached fault model (`crossbar_id` keys
    /// the deterministic fault map): stuck cells read their fault level,
    /// dead wordlines never see their input, dead bitlines read 0. Wear-out
    /// is derived from this crossbar's own write counters.
    pub fn analog_cycle_faulty(
        &self,
        inputs: &[u16],
        faults: &crate::faults::FaultConfig,
        crossbar_id: usize,
    ) -> Result<Vec<u64>, ReRamError> {
        let m = self.cfg.size;
        if inputs.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "inputs",
                got: inputs.len(),
                limit: m,
            });
        }
        let dac_max = 1u16 << self.cfg.dac_bits;
        let worn = faults.worn_out(self.max_cell_writes());
        let mut sums = vec![0u64; m];
        for (row, &u) in inputs.iter().enumerate() {
            if u >= dac_max {
                return Err(ReRamError::OperandOverflow {
                    value: u64::from(u),
                    bits: self.cfg.dac_bits,
                });
            }
            if u == 0 || faults.dead_wordline(crossbar_id, row) {
                continue;
            }
            let base = row * m;
            for (col, sum) in sums.iter_mut().enumerate() {
                let level = faults.effective_level(
                    crossbar_id,
                    row,
                    col,
                    self.cells[base + col].read(),
                    self.cfg.cell_bits,
                    worn,
                );
                *sum += u64::from(u) * u64::from(level);
            }
        }
        let adc_limit = 1u64 << self.cfg.adc_bits;
        for (col, s) in sums.iter_mut().enumerate() {
            if faults.dead_bitline(crossbar_id, col) {
                *s = 0;
                continue;
            }
            if *s >= adc_limit {
                return Err(ReRamError::AdcOverflow {
                    value: *s,
                    adc_bits: self.cfg.adc_bits,
                });
            }
        }
        Ok(sums)
    }

    /// The streamed dot-product pipeline under an attached fault model.
    /// Same layout semantics as [`Crossbar::dot_products`]; also walks the
    /// ADC's bounded glitch-retry chain once per call and returns the
    /// retries spent alongside the (possibly corrupted) results. Fails with
    /// [`ReRamError::AdcRetryExhausted`] when the ADC never reads clean.
    pub fn dot_products_faulty(
        &self,
        start_row: usize,
        query: &[u64],
        input_bits: u32,
        operand_bits: u32,
        faults: &crate::faults::FaultConfig,
        crossbar_id: usize,
    ) -> Result<(Vec<u128>, u32), ReRamError> {
        let m = self.cfg.size;
        if start_row + query.len() > m {
            return Err(ReRamError::GeometryViolation {
                what: "query rows",
                got: start_row + query.len(),
                limit: m,
            });
        }
        let retries = faults.glitch_retries(crossbar_id)?;
        let sliced = SlicedQuery::new(query, input_bits, self.cfg.dac_bits)?;
        let results = self.streamed_pipeline(start_row, &sliced, operand_bits, |drive| {
            self.analog_cycle_faulty(drive, faults, crossbar_id)
        })?;
        Ok((results, retries))
    }

    /// Upper bound on the ADC-rounding contribution of one noisy pipeline
    /// run: ½ LSB per bitline per cycle, scaled by each partial's shift.
    pub fn rounding_error_bound(&self, input_bits: u32, operand_bits: u32) -> f64 {
        let w = self.cfg.cells_per_operand(operand_bits) as u32;
        let cycles = input_bits.div_ceil(self.cfg.dac_bits);
        let mut total = 0.0;
        for k in 0..cycles {
            for j in 0..w {
                let shift = j * self.cfg.cell_bits + k * self.cfg.dac_bits;
                total += 0.5 * (shift as f64).exp2();
            }
        }
        total
    }

    /// Total programming pulses received by all cells (endurance metric).
    pub fn total_writes(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.writes())).sum()
    }

    /// The highest write count of any single cell (worst-case wear).
    pub fn max_cell_writes(&self) -> u32 {
        self.cells.iter().map(Cell::writes).max().unwrap_or(0)
    }
}

/// Reference check used in tests and docs: exact integer dot product.
pub fn exact_dot(a: &[u64], b: &[u64]) -> u128 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| u128::from(x) * u128::from(y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CrossbarConfig {
        CrossbarConfig {
            size: 8,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 10,
            ..Default::default()
        }
    }

    #[test]
    fn fig1_example_single_bit_layout() {
        // Fig. 1: multipliers [3,1,0], [1,2,3], [2,0,1] programmed along
        // bitlines; multiplicand [3,1,2] injected; expect [10, 11, 8].
        let cfg = CrossbarConfig {
            size: 3,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 8,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        xb.program_operand_column(0, 0, &[3, 1, 0], 2).unwrap();
        xb.program_operand_column(0, 1, &[1, 2, 3], 2).unwrap();
        xb.program_operand_column(0, 2, &[2, 0, 1], 2).unwrap();
        let out = xb.dot_products(0, &[3, 1, 2], 2, 2).unwrap();
        assert_eq!(out, vec![10, 11, 8]);
    }

    #[test]
    fn multi_bit_operands_match_exact_dot() {
        let cfg = tiny_cfg();
        let mut xb = Crossbar::new(cfg).unwrap();
        // 6-bit operands on 2-bit cells → 3 cells each → 2 operands per row.
        let col_a = [25u64, 14, 63, 0];
        let col_b = [9u64, 20, 1, 33];
        xb.program_operand_column(0, 0, &col_a, 6).unwrap();
        xb.program_operand_column(0, 3, &col_b, 6).unwrap();
        let q = [9u64, 20, 7, 63];
        let out = xb.dot_products(0, &q, 6, 6).unwrap();
        assert_eq!(out[0], exact_dot(&col_a, &q));
        assert_eq!(out[1], exact_dot(&col_b, &q));
    }

    #[test]
    fn start_row_offsets_queries_stacked_slots() {
        // Two vector slots stacked vertically; driving only one slot's rows
        // isolates its dot product.
        let cfg = tiny_cfg();
        let mut xb = Crossbar::new(cfg).unwrap();
        xb.program_operand_column(0, 0, &[3, 2], 4).unwrap(); // slot 0 rows 0..2
        xb.program_operand_column(2, 0, &[7, 1], 4).unwrap(); // slot 1 rows 2..4
        let q = [2u64, 5];
        let out0 = xb.dot_products(0, &q, 4, 4).unwrap();
        let out1 = xb.dot_products(2, &q, 4, 4).unwrap();
        assert_eq!(out0[0], exact_dot(&[3, 2], &q));
        assert_eq!(out1[0], exact_dot(&[7, 1], &q));
    }

    #[test]
    fn geometry_violations_are_rejected() {
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        assert!(xb.program_cell(8, 0, 1).is_err());
        assert!(xb.program_cell(0, 8, 1).is_err());
        assert!(xb.program_operand_column(6, 0, &[1, 2, 3], 2).is_err());
        assert!(xb.program_operand_column(0, 7, &[1], 4).is_err()); // needs 2 cells at col 7
        assert!(xb.dot_products(7, &[1, 1], 2, 2).is_err());
        let too_many = vec![0u16; 9];
        assert!(xb.analog_cycle(&too_many).is_err());
    }

    #[test]
    fn adc_overflow_detected() {
        let cfg = CrossbarConfig {
            size: 4,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 4,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        for r in 0..4 {
            xb.program_operand_column(r, 0, &[3], 2).unwrap();
            xb.program_operand_column(r, 1, &[3], 2).unwrap();
            xb.program_operand_column(r, 2, &[3], 2).unwrap();
            xb.program_operand_column(r, 3, &[3], 2).unwrap();
        }
        // 4 rows · 3 · 3 = 36 ≥ 2^4 → overflow.
        assert!(matches!(
            xb.analog_cycle(&[3, 3, 3, 3]),
            Err(ReRamError::AdcOverflow { .. })
        ));
    }

    #[test]
    fn dac_level_out_of_range_rejected() {
        let xb = Crossbar::new(tiny_cfg()).unwrap();
        assert!(xb.analog_cycle(&[4]).is_err()); // 2-bit DAC holds 0..=3
    }

    #[test]
    fn all_ones_gather_sums_partials() {
        // A gather crossbar sums the values injected on its wordlines
        // (column of ones ⇒ output = Σ inputs), exercised bit-sliced.
        let cfg = CrossbarConfig {
            size: 4,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 6,
            ..Default::default()
        };
        let mut gather = Crossbar::new(cfg).unwrap();
        gather.program_all_ones().unwrap();
        let partials = [13u64, 7, 2, 9];
        let out = gather.dot_products(0, &partials, 4, 1).unwrap();
        assert_eq!(out[0], 31);
    }

    #[test]
    fn endurance_accounting() {
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        assert_eq!(xb.total_writes(), 0);
        let w = xb.program_operand_column(0, 0, &[25, 14], 6).unwrap();
        assert_eq!(w, 6); // 2 operands × 3 cells
        assert_eq!(xb.total_writes(), 6);
        assert_eq!(xb.max_cell_writes(), 1);
        // Reads must not wear cells.
        xb.dot_products(0, &[1, 1], 6, 6).unwrap();
        assert_eq!(xb.total_writes(), 6);
    }

    #[test]
    fn noisy_pipeline_stays_within_envelope() {
        use crate::variation::VariationModel;
        let cfg = CrossbarConfig {
            size: 8,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 12,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        let col = [25u64, 14, 63, 40];
        xb.program_operand_column(0, 0, &col, 6).unwrap();
        let q = [9u64, 20, 7, 63];
        let exact = exact_dot(&col, &q);
        for seed in 0..20 {
            let v = VariationModel::new(0.05, seed);
            let noisy = xb.dot_products_noisy(0, &q, 6, 6, &v).unwrap()[0];
            let envelope = v.dot_error_bound(exact, xb.rounding_error_bound(6, 6));
            let err = (noisy as f64 - exact as f64).abs();
            assert!(
                err <= envelope + 1e-9,
                "seed={seed}: err {err} > envelope {envelope}"
            );
        }
    }

    #[test]
    fn zero_variation_matches_ideal_pipeline() {
        use crate::variation::VariationModel;
        let cfg = tiny_cfg();
        let mut xb = Crossbar::new(cfg).unwrap();
        xb.program_operand_column(0, 0, &[25, 14, 63, 0], 6)
            .unwrap();
        let q = [9u64, 20, 7, 63];
        let ideal = xb.dot_products(0, &q, 6, 6).unwrap();
        let v = VariationModel::new(0.0, 99);
        let noisy = xb.dot_products_noisy(0, &q, 6, 6, &v).unwrap();
        assert_eq!(ideal[0], noisy[0]);
    }

    #[test]
    fn rounding_bound_formula() {
        let cfg = tiny_cfg();
        let xb = Crossbar::new(cfg).unwrap();
        // 6-bit operands, 2-bit cells/DAC: shifts {0,2,4}×{0,2,4} → Σ ½·2^s
        // over the 9 combinations.
        let mut expect = 0.0;
        for k in [0u32, 2, 4] {
            for j in [0u32, 2, 4] {
                expect += 0.5 * ((k + j) as f64).exp2();
            }
        }
        assert!((xb.rounding_error_bound(6, 6) - expect).abs() < 1e-12);
    }

    #[test]
    fn inert_fault_model_matches_ideal_pipeline() {
        use crate::faults::FaultConfig;
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        let col = [25u64, 14, 63, 0];
        xb.program_operand_column(0, 0, &col, 6).unwrap();
        let q = [9u64, 20, 7, 63];
        let ideal = xb.dot_products(0, &q, 6, 6).unwrap();
        let (faulty, retries) = xb
            .dot_products_faulty(0, &q, 6, 6, &FaultConfig::default(), 0)
            .unwrap();
        assert_eq!(ideal[0], faulty[0]);
        assert_eq!(retries, 0);
    }

    #[test]
    fn stuck_cells_corrupt_within_known_bound() {
        use crate::faults::{CellFault, FaultConfig};
        let faults = FaultConfig {
            stuck_low_rate: 0.15,
            stuck_high_rate: 0.15,
            seed: 21,
            ..Default::default()
        };
        let cfg = tiny_cfg();
        let mut xb = Crossbar::new(cfg).unwrap();
        let col = [25u64, 14, 63, 40];
        xb.program_operand_column(0, 0, &col, 6).unwrap();
        let q = [3u64, 2, 1, 3];
        let exact = exact_dot(&col, &q);
        let (faulty, _) = xb.dot_products_faulty(0, &q, 6, 6, &faults, 0).unwrap();
        // Recompute the worst-case deviation from the known fault map:
        // each stuck cell shifts slice j of row r by |Δlevel|·2^(j·h),
        // weighted by that row's query value.
        let mut bound = 0u128;
        let w = cfg.cells_per_operand(6);
        for (r, &qv) in q.iter().enumerate() {
            for j in 0..w {
                let programmed = xb.read_cell(r, j);
                let effective = match faults.cell_fault(0, r, j) {
                    CellFault::None => programmed,
                    CellFault::StuckLow => 0,
                    CellFault::StuckHigh => 3,
                };
                let delta = u128::from(programmed.abs_diff(effective));
                bound += u128::from(qv) * (delta << (j as u32 * cfg.cell_bits));
            }
        }
        assert!(bound > 0, "seed 21 must actually inject a fault here");
        let err = faulty[0].abs_diff(exact);
        assert!(err <= bound, "err {err} > bound {bound}");
    }

    #[test]
    fn dead_wordline_drops_a_dimension() {
        use crate::faults::FaultConfig;
        // Rate 1.0 kills every wordline: all contributions vanish.
        let faults = FaultConfig {
            dead_wordline_rate: 1.0,
            ..Default::default()
        };
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        xb.program_operand_column(0, 0, &[25, 14], 6).unwrap();
        let (out, _) = xb
            .dot_products_faulty(0, &[3, 3], 6, 6, &faults, 0)
            .unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn dead_bitline_zeroes_its_slice() {
        use crate::faults::FaultConfig;
        let faults = FaultConfig {
            dead_bitline_rate: 1.0,
            ..Default::default()
        };
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        xb.program_operand_column(0, 0, &[63, 63], 6).unwrap();
        let (out, _) = xb
            .dot_products_faulty(0, &[3, 3], 6, 6, &faults, 0)
            .unwrap();
        assert_eq!(out[0], 0); // every slice rides a dead bitline
    }

    #[test]
    fn worn_crossbar_reads_zero() {
        use crate::faults::FaultConfig;
        let faults = FaultConfig {
            endurance_limit: 2,
            ..Default::default()
        };
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        // Program the same operand thrice: max cell writes = 3 > 2.
        for _ in 0..3 {
            xb.program_operand_column(0, 0, &[25, 14], 6).unwrap();
        }
        assert_eq!(xb.max_cell_writes(), 3);
        let (out, _) = xb
            .dot_products_faulty(0, &[3, 3], 6, 6, &faults, 0)
            .unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn glitchy_adc_exhausts_retries() {
        use crate::faults::FaultConfig;
        let faults = FaultConfig {
            adc_glitch_rate: 1.0,
            adc_retry_limit: 2,
            ..Default::default()
        };
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        xb.program_operand_column(0, 0, &[25, 14], 6).unwrap();
        assert_eq!(
            xb.dot_products_faulty(0, &[3, 3], 6, 6, &faults, 0),
            Err(ReRamError::AdcRetryExhausted {
                crossbar: 0,
                attempts: 2
            })
        );
    }

    #[test]
    fn packed_cycle_matches_scalar_cycle_exhaustively() {
        // All 4^4 = 256 drive vectors against a fixed multi-level cell
        // pattern: the word-wide kernel must agree with the scalar MAC
        // loop bit for bit.
        let cfg = CrossbarConfig {
            size: 4,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 8,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        for row in 0..4 {
            for col in 0..4 {
                xb.program_cell(row, col, ((row * 7 + col * 3) % 4) as u8)
                    .unwrap();
            }
        }
        for combo in 0u32..256 {
            let drive: Vec<u16> = (0..4).map(|i| ((combo >> (2 * i)) & 3) as u16).collect();
            assert_eq!(
                xb.packed_cycle(&drive).unwrap(),
                xb.analog_cycle(&drive).unwrap(),
                "combo={combo}"
            );
        }
    }

    #[test]
    fn packed_cycle_matches_scalar_across_word_boundaries() {
        // 128 rows span two u64 plane words; exercise partial drives and
        // reprogrammed cells (plane maintenance on rewrite).
        let cfg = CrossbarConfig {
            size: 128,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 12,
            ..Default::default()
        };
        let mut xb = Crossbar::new(cfg).unwrap();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for row in 0..128 {
            for col in 0..128 {
                xb.program_cell(row, col, (next() % 4) as u8).unwrap();
            }
        }
        // Reprogram a scattering of cells so plane bits must be cleared too.
        for _ in 0..500 {
            let row = (next() % 128) as usize;
            let col = (next() % 128) as usize;
            xb.program_cell(row, col, (next() % 4) as u8).unwrap();
        }
        for len in [1usize, 63, 64, 65, 100, 128] {
            let drive: Vec<u16> = (0..len).map(|_| (next() % 4) as u16).collect();
            assert_eq!(
                xb.packed_cycle(&drive).unwrap(),
                xb.analog_cycle(&drive).unwrap(),
                "len={len}"
            );
        }
        let zeros = vec![0u16; 128];
        assert_eq!(
            xb.packed_cycle(&zeros).unwrap(),
            xb.analog_cycle(&zeros).unwrap()
        );
    }

    #[test]
    fn packed_cycle_rejects_bad_inputs_like_scalar() {
        let xb = Crossbar::new(tiny_cfg()).unwrap();
        assert!(xb.packed_cycle(&[4]).is_err()); // DAC overflow
        let too_many = vec![0u16; 9];
        assert!(xb.packed_cycle(&too_many).is_err());
    }

    #[test]
    fn presliced_query_reuses_across_slots() {
        use crate::bitslice::SlicedQuery;
        let cfg = tiny_cfg();
        let mut xb = Crossbar::new(cfg).unwrap();
        xb.program_operand_column(0, 0, &[3, 2], 4).unwrap();
        xb.program_operand_column(2, 0, &[7, 1], 4).unwrap();
        let q = [2u64, 5];
        let sliced = SlicedQuery::new(&q, 4, cfg.dac_bits).unwrap();
        assert_eq!(
            xb.dot_products_sliced(0, &sliced, 4).unwrap(),
            xb.dot_products(0, &q, 4, 4).unwrap()
        );
        assert_eq!(
            xb.dot_products_sliced(2, &sliced, 4).unwrap(),
            xb.dot_products(2, &q, 4, 4).unwrap()
        );
    }

    #[test]
    fn mismatched_dac_slicing_rejected() {
        use crate::bitslice::SlicedQuery;
        let xb = Crossbar::new(tiny_cfg()).unwrap(); // 2-bit DAC
        let sliced = SlicedQuery::new(&[1, 1], 4, 4).unwrap(); // sliced for 4-bit DAC
        assert!(xb.dot_products_sliced(0, &sliced, 4).is_err());
    }

    #[test]
    fn zero_query_yields_zero() {
        let mut xb = Crossbar::new(tiny_cfg()).unwrap();
        xb.program_operand_column(0, 0, &[63, 63], 6).unwrap();
        let out = xb.dot_products(0, &[0, 0], 6, 6).unwrap();
        assert_eq!(out[0], 0);
    }
}

//! Energy accounting for PIM operations.
//!
//! The absolute constants follow Table 1 (ReRAM write energy ≈ 10⁻¹³ J/bit)
//! and ISAAC-class estimates for analog compute; the *relative* picture —
//! writes are orders of magnitude more expensive than reads, and result
//! movement is cheap compared to moving raw vectors to the CPU — is what
//! the experiments depend on.

use crate::config::PimConfig;

/// Energy cost constants (joules).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyModel {
    /// Energy to program one cell bit (Table 1, ReRAM: ~1e-13 J/bit).
    pub write_j_per_bit: f64,
    /// Energy of one analog read cycle of one active crossbar
    /// (DAC + array + S&H + ADC share, ISAAC-class: ~1e-10 J).
    pub cycle_j_per_crossbar: f64,
    /// Energy to move one byte over the internal bus (~1e-12 J/B).
    pub bus_j_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            write_j_per_bit: 1e-13,
            cycle_j_per_crossbar: 1e-10,
            bus_j_per_byte: 1e-12,
        }
    }
}

/// Accumulated energy of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct EnergyReport {
    /// Programming (write) energy in joules.
    pub write_j: f64,
    /// Analog compute energy in joules.
    pub compute_j: f64,
    /// Internal bus transfer energy in joules.
    pub bus_j: f64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.write_j + self.compute_j + self.bus_j
    }

    /// Adds programming energy for `cell_writes` cells of `cell_bits` each.
    pub fn charge_writes(&mut self, model: &EnergyModel, cell_writes: u64, cell_bits: u32) {
        self.write_j += model.write_j_per_bit * cell_writes as f64 * f64::from(cell_bits);
    }

    /// Adds compute energy for `cycles` analog cycles across
    /// `active_crossbars` crossbars.
    pub fn charge_compute(&mut self, model: &EnergyModel, cycles: u64, active_crossbars: usize) {
        self.compute_j += model.cycle_j_per_crossbar * cycles as f64 * active_crossbars as f64;
    }

    /// Adds bus energy for moving `bytes`.
    pub fn charge_bus(&mut self, model: &EnergyModel, bytes: u64) {
        self.bus_j += model.bus_j_per_byte * bytes as f64;
    }

    /// Merges another report.
    pub fn add(&mut self, other: &EnergyReport) {
        self.write_j += other.write_j;
        self.compute_j += other.compute_j;
        self.bus_j += other.bus_j;
    }
}

/// Convenience: energy of moving `bytes` over the internal bus of `cfg`
/// using the default model (sanity checks in benches).
pub fn bus_energy_j(_cfg: &PimConfig, bytes: u64) -> f64 {
    EnergyModel::default().bus_j_per_byte * bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let m = EnergyModel::default();
        let mut r = EnergyReport::default();
        r.charge_writes(&m, 1000, 2);
        r.charge_compute(&m, 10, 5);
        r.charge_bus(&m, 1_000_000);
        assert!((r.write_j - 1e-13 * 2000.0).abs() < 1e-20);
        assert!((r.compute_j - 1e-10 * 50.0).abs() < 1e-20);
        assert!((r.bus_j - 1e-12 * 1e6).abs() < 1e-20);
        assert!((r.total_j() - (r.write_j + r.compute_j + r.bus_j)).abs() < 1e-20);
    }

    #[test]
    fn writes_dominate_reads_per_bit() {
        // The relative ordering Section V-C relies on: programming is far
        // more expensive than computing on programmed data.
        let m = EnergyModel::default();
        let mut program = EnergyReport::default();
        program.charge_writes(&m, 65536, 2); // one full 256×256 crossbar
        let mut compute = EnergyReport::default();
        compute.charge_compute(&m, 16, 1); // one 32-bit query pass
        assert!(program.total_j() > 5.0 * compute.total_j());
    }

    #[test]
    fn add_merges_reports() {
        let m = EnergyModel::default();
        let mut a = EnergyReport::default();
        a.charge_bus(&m, 100);
        let mut b = EnergyReport::default();
        b.charge_bus(&m, 300);
        a.add(&b);
        assert!((a.bus_j - 1e-12 * 400.0).abs() < 1e-24);
    }
}

//! Analog conductance variation (a beyond-the-paper robustness study).
//!
//! The paper assumes ideal cells; real ReRAM conductances deviate from
//! their programmed levels (device-to-device and cycle-to-cycle
//! variation, cf. the variation-tolerant tuning of \[19\]). This module
//! models **bounded multiplicative variation**: every cell's effective
//! level is `level · (1 + δ)` with `|δ| ≤ max_relative`, drawn
//! deterministically per cell from a seed, and the ADC rounds each analog
//! sum to the nearest integer.
//!
//! Because the deviation is bounded, the dot-product error is bounded too
//! ([`VariationModel::dot_error_bound`]), so a *guard-banded* PIM bound
//! stays provably correct: inflate the measured dot product by the
//! envelope before applying Theorem 1 (`lb_pim_ed_guarded` in
//! `simpim-core`). Accuracy is preserved; only pruning power is lost.

/// Bounded multiplicative cell variation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariationModel {
    /// Maximum relative deviation of a cell's conductance (e.g. 0.05 for
    /// ±5%).
    pub max_relative: f64,
    /// Seed of the deterministic per-cell noise.
    pub seed: u64,
}

impl VariationModel {
    /// A new bounded-variation model.
    pub fn new(max_relative: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&max_relative),
            "relative variation must be in [0,1)"
        );
        Self { max_relative, seed }
    }

    /// Deterministic per-cell deviation `δ ∈ [−max_relative, +max_relative]`
    /// (splitmix64 of the cell coordinates).
    pub fn delta(&self, row: usize, col: usize) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + row as u64))
            .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(1 + col as u64));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (2.0 * unit - 1.0) * self.max_relative
    }

    /// Worst-case absolute error of a dot product whose true value is
    /// `dot_true`, including ADC rounding: each of the `cycles × slices`
    /// per-bitline sums rounds by ≤ ½ and is shifted by `2^shift`, which
    /// telescopes to at most `2^(total_bits)` — callers pass the
    /// precomputed `rounding` term from the pipeline geometry.
    pub fn dot_error_bound(&self, dot_true: u128, rounding: f64) -> f64 {
        self.max_relative * dot_true as f64 + rounding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_bounded_and_deterministic() {
        let v = VariationModel::new(0.05, 42);
        for row in 0..64 {
            for col in 0..64 {
                let d = v.delta(row, col);
                assert!(d.abs() <= 0.05, "delta {d} out of range");
                assert_eq!(d, v.delta(row, col), "must be deterministic");
            }
        }
        // Different seeds give different noise fields.
        let w = VariationModel::new(0.05, 43);
        assert_ne!(v.delta(3, 7), w.delta(3, 7));
    }

    #[test]
    fn deltas_are_roughly_centered() {
        let v = VariationModel::new(0.1, 7);
        let mean: f64 = (0..1000).map(|i| v.delta(i, i * 31)).sum::<f64>() / 1000.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn error_bound_scales_with_magnitude() {
        let v = VariationModel::new(0.05, 1);
        assert!(v.dot_error_bound(1000, 2.0) >= 50.0);
        assert!(v.dot_error_bound(0, 2.0) == 2.0);
    }

    #[test]
    #[should_panic(expected = "relative variation")]
    fn rejects_unbounded_variation() {
        VariationModel::new(1.5, 0);
    }
}

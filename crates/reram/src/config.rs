//! Hardware configuration: crossbar geometry and the PIM-array platform of
//! the paper's Table 5, plus the NVM device characteristics of Table 1.

use crate::error::ReRamError;

/// Geometry and device parameters of one ReRAM crossbar.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrossbarConfig {
    /// Crossbar side length `m` (the paper uses 256×256).
    pub size: usize,
    /// Bits per cell `h` (the paper uses 2-bit precision cells).
    pub cell_bits: u32,
    /// Input DAC resolution in bits per cycle (2 in the running examples of
    /// Fig. 2: inputs stream through the DAC two bits at a time).
    pub dac_bits: u32,
    /// ADC resolution in bits. Per-cycle analog sums must fit; the default
    /// covers `m · (2^h − 1) · (2^dac − 1)`.
    pub adc_bits: u32,
    /// Crossbar read latency in nanoseconds (Table 5: 29.31 ns).
    pub read_ns: f64,
    /// Crossbar write (programming) latency in nanoseconds (Table 5: 50.88 ns).
    pub write_ns: f64,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        Self {
            size: 256,
            cell_bits: 2,
            dac_bits: 2,
            adc_bits: 12, // 256 · 3 · 3 = 2304 < 2^12
            read_ns: 29.31,
            write_ns: 50.88,
        }
    }
}

impl CrossbarConfig {
    /// Validates the geometry.
    pub fn validate(&self) -> Result<(), ReRamError> {
        if self.size == 0 {
            return Err(ReRamError::InvalidConfig {
                what: "crossbar size must be non-zero",
            });
        }
        if self.cell_bits == 0 || self.cell_bits > 8 {
            return Err(ReRamError::InvalidConfig {
                what: "cell_bits must be in 1..=8",
            });
        }
        if self.dac_bits == 0 || self.dac_bits > 16 {
            return Err(ReRamError::InvalidConfig {
                what: "dac_bits must be in 1..=16",
            });
        }
        // The ADC must at least resolve one cell × one DAC level; covering
        // the worst-case full-column sum is recommended (see
        // [`CrossbarConfig::adc_covers_worst_case`]) but not required —
        // undersized ADCs surface as `AdcOverflow` at runtime instead of
        // clipping silently.
        if self.adc_bits >= 64 || self.adc_bits < self.cell_bits + self.dac_bits {
            return Err(ReRamError::InvalidConfig {
                what: "adc_bits must be in (cell_bits + dac_bits)..64",
            });
        }
        Ok(())
    }

    /// `true` when the ADC resolves the worst-case per-cycle analog sum
    /// `m · (2^h − 1) · (2^dac − 1)` without clipping.
    pub fn adc_covers_worst_case(&self) -> bool {
        let worst =
            (self.size as u64) * ((1u64 << self.cell_bits) - 1) * ((1u64 << self.dac_bits) - 1);
        self.adc_bits < 64 && worst < (1u64 << self.adc_bits)
    }

    /// Number of adjacent cells one `b`-bit stored operand occupies
    /// (`⌈b/h⌉`, Fig. 2).
    #[inline]
    pub fn cells_per_operand(&self, operand_bits: u32) -> usize {
        operand_bits.div_ceil(self.cell_bits) as usize
    }

    /// How many `b`-bit operands fit in one crossbar row
    /// (`m·h/b` in Theorem 4's proof, floored).
    #[inline]
    pub fn operands_per_row(&self, operand_bits: u32) -> usize {
        self.size / self.cells_per_operand(operand_bits)
    }

    /// Input streaming cycles for a `b`-bit multiplicand (`⌈b/dac⌉`).
    #[inline]
    pub fn input_cycles(&self, input_bits: u32) -> u64 {
        u64::from(input_bits.div_ceil(self.dac_bits))
    }

    /// Total cell count of one crossbar.
    #[inline]
    pub fn cells(&self) -> usize {
        self.size * self.size
    }

    /// Raw storage capacity of one crossbar in bits.
    #[inline]
    pub fn capacity_bits(&self) -> u64 {
        (self.cells() as u64) * u64::from(self.cell_bits)
    }
}

/// Width of the accumulator collecting PIM results. The paper keeps the
/// least-significant 64 bits for integer workloads and 32 bits for binary
/// codes (Section VI-B); accumulation wraps at the chosen width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AccWidth {
    /// Accumulate into the least-significant 32 bits.
    U32,
    /// Accumulate into the least-significant 64 bits.
    U64,
}

impl AccWidth {
    /// Result width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            AccWidth::U32 => 32,
            AccWidth::U64 => 64,
        }
    }

    /// Result width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        u64::from(self.bits()) / 8
    }

    /// Wraps a full-precision accumulation to this width.
    #[inline]
    pub fn wrap(self, v: u128) -> u64 {
        match self {
            AccWidth::U32 => (v as u64) & 0xFFFF_FFFF,
            AccWidth::U64 => v as u64,
        }
    }
}

/// Platform configuration of the ReRAM-based memory (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PimConfig {
    /// Per-crossbar parameters.
    pub crossbar: CrossbarConfig,
    /// Crossbar budget `C` of the PIM array. The default models the paper's
    /// 2 GB PIM array: `2 GiB / (256·256·2 bit)` = 131 072 crossbars.
    pub num_crossbars: usize,
    /// Buffer array (eDRAM) capacity in bytes (Table 5: 16 MB).
    pub buffer_bytes: u64,
    /// Buffer array access latency in nanoseconds (eDRAM, ~1 ns class).
    pub buffer_ns: f64,
    /// Memory array capacity in bytes (Table 5: 14 GB ReRAM).
    pub memory_bytes: u64,
    /// Internal bus bandwidth in GB/s (Table 5: 50 GB/s). PIM-internal data
    /// movement (crossbar → buffer) rides this bus.
    pub internal_bus_gbps: f64,
}

impl Default for PimConfig {
    fn default() -> Self {
        let crossbar = CrossbarConfig::default();
        Self {
            crossbar,
            num_crossbars: (2u64 * 1024 * 1024 * 1024 * 8 / crossbar.capacity_bits()) as usize,
            buffer_bytes: 16 * 1024 * 1024,
            buffer_ns: 1.0,
            memory_bytes: 14u64 * 1024 * 1024 * 1024,
            internal_bus_gbps: 50.0,
        }
    }
}

impl PimConfig {
    /// Validates the whole platform.
    pub fn validate(&self) -> Result<(), ReRamError> {
        self.crossbar.validate()?;
        if self.num_crossbars == 0 {
            return Err(ReRamError::InvalidConfig {
                what: "num_crossbars must be non-zero",
            });
        }
        if self.internal_bus_gbps <= 0.0 || self.internal_bus_gbps.is_nan() {
            return Err(ReRamError::InvalidConfig {
                what: "internal bus bandwidth must be positive",
            });
        }
        if self.buffer_ns < 0.0 || self.buffer_ns.is_nan() {
            return Err(ReRamError::InvalidConfig {
                what: "buffer latency must be non-negative",
            });
        }
        Ok(())
    }

    /// Total PIM-array storage capacity in bits.
    pub fn pim_capacity_bits(&self) -> u64 {
        self.num_crossbars as u64 * self.crossbar.capacity_bits()
    }

    /// Seconds needed to move `bytes` over the internal bus.
    pub fn bus_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.internal_bus_gbps * 1e9)
    }
}

/// Device characteristics of representative NVM technologies (Table 1).
/// Exposed for documentation, the `table01` bench target and sanity tests.
pub mod nvm_table {
    /// One row of Table 1.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct NvmCharacteristics {
        /// Technology name.
        pub name: &'static str,
        /// Whether the technology loses state on power-off.
        pub volatile: bool,
        /// Write-endurance range (cycles per cell).
        pub endurance_writes: (f64, f64),
        /// Read latency range in nanoseconds.
        pub read_latency_ns: (f64, f64),
        /// Write latency range in nanoseconds.
        pub write_latency_ns: (f64, f64),
        /// Cell size range in F².
        pub cell_size_f2: (f64, f64),
        /// Write energy in joules per bit.
        pub write_energy_j_per_bit: f64,
    }

    /// DRAM row.
    pub const DRAM: NvmCharacteristics = NvmCharacteristics {
        name: "DRAM",
        volatile: true,
        endurance_writes: (1e15, 1e15),
        read_latency_ns: (10.0, 10.0),
        write_latency_ns: (10.0, 10.0),
        cell_size_f2: (60.0, 100.0),
        write_energy_j_per_bit: 1e-14,
    };

    /// ReRAM row.
    pub const RERAM: NvmCharacteristics = NvmCharacteristics {
        name: "ReRAM",
        volatile: false,
        endurance_writes: (1e8, 1e11),
        read_latency_ns: (10.0, 10.0),
        write_latency_ns: (50.0, 50.0),
        cell_size_f2: (4.0, 10.0),
        write_energy_j_per_bit: 1e-13,
    };

    /// PCM row.
    pub const PCM: NvmCharacteristics = NvmCharacteristics {
        name: "PCM",
        volatile: false,
        endurance_writes: (1e8, 1e9),
        read_latency_ns: (20.0, 60.0),
        write_latency_ns: (20.0, 150.0),
        cell_size_f2: (4.0, 12.0),
        write_energy_j_per_bit: 1e-11,
    };

    /// STT-RAM row.
    pub const STT_RAM: NvmCharacteristics = NvmCharacteristics {
        name: "STT-RAM",
        volatile: false,
        endurance_writes: (1e12, 1e15),
        read_latency_ns: (2.0, 35.0),
        write_latency_ns: (3.0, 50.0),
        cell_size_f2: (6.0, 50.0),
        write_energy_j_per_bit: 1e-13,
    };

    /// All rows of Table 1.
    pub const ALL: [NvmCharacteristics; 4] = [DRAM, RERAM, PCM, STT_RAM];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table5() {
        let cfg = PimConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.crossbar.size, 256);
        assert_eq!(cfg.crossbar.cell_bits, 2);
        assert_eq!(cfg.num_crossbars, 131_072); // "default 131072 crossbars in PIM array"
        assert_eq!(cfg.buffer_bytes, 16 * 1024 * 1024);
        assert!((cfg.crossbar.read_ns - 29.31).abs() < 1e-9);
        assert!((cfg.crossbar.write_ns - 50.88).abs() < 1e-9);
        // 2 GB PIM array
        assert_eq!(cfg.pim_capacity_bits(), 2 * 1024 * 1024 * 1024 * 8);
    }

    #[test]
    fn operand_packing_matches_theorem4_quantities() {
        let xb = CrossbarConfig::default();
        // b = 32, h = 2 → 16 cells/operand → 256/16 = 16 operands/row = m·h/b.
        assert_eq!(xb.cells_per_operand(32), 16);
        assert_eq!(xb.operands_per_row(32), 16);
        assert_eq!(
            xb.operands_per_row(32),
            xb.size * xb.cell_bits as usize / 32
        );
        // Fig. 2 example: 6-bit data on 2-bit cells → 3 cells.
        assert_eq!(xb.cells_per_operand(6), 3);
    }

    #[test]
    fn input_cycles_rounds_up() {
        let xb = CrossbarConfig::default();
        assert_eq!(xb.input_cycles(6), 3);
        assert_eq!(xb.input_cycles(5), 3);
        assert_eq!(xb.input_cycles(1), 1);
        assert_eq!(xb.input_cycles(32), 16);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let xb = CrossbarConfig {
            size: 0,
            ..Default::default()
        };
        assert!(xb.validate().is_err());
        let xb = CrossbarConfig {
            cell_bits: 0,
            ..Default::default()
        };
        assert!(xb.validate().is_err());
        // Below cell_bits + dac_bits.
        let xb = CrossbarConfig {
            adc_bits: 3,
            ..Default::default()
        };
        assert!(xb.validate().is_err());
        // Valid but undersized for full columns.
        let xb = CrossbarConfig {
            adc_bits: 8,
            ..Default::default()
        };
        assert!(xb.validate().is_ok());
        assert!(!xb.adc_covers_worst_case());
        assert!(CrossbarConfig::default().adc_covers_worst_case());
        let cfg = PimConfig {
            num_crossbars: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn acc_width_wraps() {
        assert_eq!(AccWidth::U32.wrap(0x1_2345_6789), 0x2345_6789);
        assert_eq!(AccWidth::U64.wrap(u128::from(u64::MAX) + 5), 4);
        assert_eq!(AccWidth::U32.bits(), 32);
        assert_eq!(AccWidth::U64.bytes(), 8);
    }

    #[test]
    fn bus_seconds_scales_linearly() {
        let cfg = PimConfig::default();
        let t1 = cfg.bus_seconds(50_000_000_000);
        assert!((t1 - 1.0).abs() < 1e-9); // 50 GB over 50 GB/s = 1 s
    }

    #[test]
    fn nvm_table_rows() {
        assert_eq!(nvm_table::ALL.len(), 4);
        let volatile: Vec<bool> = nvm_table::ALL.iter().map(|r| r.volatile).collect();
        assert_eq!(volatile, vec![true, false, false, false]);
        // ReRAM write latency exceeds its read latency (why Fig. 17's
        // pre-processing is slower on PIM).
        assert!(nvm_table::RERAM.write_latency_ns.0 > nvm_table::RERAM.read_latency_ns.1);
    }
}

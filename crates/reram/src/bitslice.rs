//! Bit-slicing of operands and inputs (Fig. 2).
//!
//! A stored `b`-bit operand is segmented into `⌈b/h⌉` slices of `h` bits and
//! written into adjacent cells of one row; a `b`-bit multiplicand streams
//! through the DAC `dac_bits` bits per cycle. The shift-and-add (S&A)
//! circuit recombines the per-slice × per-cycle partial products:
//!
//! ```text
//! value = Σ_j slice_j · 2^(j·h)          (stored operand)
//! input = Σ_k in_k    · 2^(k·dac)        (streamed multiplicand)
//! v · u = Σ_j Σ_k slice_j · in_k · 2^(j·h + k·dac)
//! ```
//!
//! Slices are indexed least-significant-first throughout the simulator.

use crate::error::ReRamError;

/// Splits a `b`-bit stored operand into `⌈b/h⌉` cell levels,
/// least-significant slice first.
pub fn slice_operand(value: u64, operand_bits: u32, cell_bits: u32) -> Result<Vec<u8>, ReRamError> {
    if operand_bits == 0 || operand_bits > 64 {
        return Err(ReRamError::InvalidConfig {
            what: "operand_bits must be in 1..=64",
        });
    }
    if operand_bits < 64 && value >= (1u64 << operand_bits) {
        return Err(ReRamError::OperandOverflow {
            value,
            bits: operand_bits,
        });
    }
    let n = operand_bits.div_ceil(cell_bits);
    let mask = (1u64 << cell_bits) - 1;
    Ok((0..n)
        .map(|j| ((value >> (j * cell_bits)) & mask) as u8)
        .collect())
}

/// Inverse of [`slice_operand`].
pub fn unslice_operand(slices: &[u8], cell_bits: u32) -> u64 {
    slices.iter().enumerate().fold(0u64, |acc, (j, &s)| {
        acc | (u64::from(s) << (j as u32 * cell_bits))
    })
}

/// Splits a multiplicand into DAC-width input levels, least-significant
/// first — one level per streaming cycle.
pub fn slice_input(value: u64, input_bits: u32, dac_bits: u32) -> Result<Vec<u16>, ReRamError> {
    if input_bits == 0 || input_bits > 64 {
        return Err(ReRamError::InvalidConfig {
            what: "input_bits must be in 1..=64",
        });
    }
    if input_bits < 64 && value >= (1u64 << input_bits) {
        return Err(ReRamError::OperandOverflow {
            value,
            bits: input_bits,
        });
    }
    let n = input_bits.div_ceil(dac_bits);
    let mask = (1u64 << dac_bits) - 1;
    Ok((0..n)
        .map(|k| ((value >> (k * dac_bits)) & mask) as u16)
        .collect())
}

/// Shift-and-add recombination: `partials[k][j]` is the analog sum produced
/// at input cycle `k` on the bitline holding operand slice `j`. Returns the
/// full-precision product-sum.
pub fn shift_add(partials: &[Vec<u64>], cell_bits: u32, dac_bits: u32) -> u128 {
    let mut acc: u128 = 0;
    for (k, row) in partials.iter().enumerate() {
        for (j, &p) in row.iter().enumerate() {
            let shift = (j as u32) * cell_bits + (k as u32) * dac_bits;
            acc = acc.wrapping_add(u128::from(p) << shift);
        }
    }
    acc
}

/// A query whose elements have been DAC-sliced once, up front.
///
/// Streaming the same query to several crossbars (stacked slots, chunked
/// dimensions, parallel region groups) used to re-run [`slice_input`] per
/// destination; slicing is a pure function of `(query, input_bits,
/// dac_bits)`, so the executor now slices once per dispatch and hands the
/// cached slices to every crossbar it streams to.
#[derive(Debug, Clone)]
pub struct SlicedQuery {
    /// `slices[i][k]` — DAC level of element `i` at streaming cycle `k`.
    slices: Vec<Vec<u16>>,
    input_bits: u32,
    dac_bits: u32,
}

impl SlicedQuery {
    /// Slices every element of `query` into `⌈input_bits/dac_bits⌉` DAC
    /// levels (least-significant first).
    pub fn new(query: &[u64], input_bits: u32, dac_bits: u32) -> Result<Self, ReRamError> {
        let mut slices = Vec::with_capacity(query.len());
        for &qv in query {
            slices.push(slice_input(qv, input_bits, dac_bits)?);
        }
        Ok(Self {
            slices,
            input_bits,
            dac_bits,
        })
    }

    /// Number of query elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `true` when the query has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// A sub-query over elements `range` (used when a query is split
    /// across row-chunked crossbars). Cheap clone of the cached slices.
    pub fn slice_range(&self, range: std::ops::Range<usize>) -> SlicedQuery {
        SlicedQuery {
            slices: self.slices[range].to_vec(),
            input_bits: self.input_bits,
            dac_bits: self.dac_bits,
        }
    }

    /// Streaming cycle count `⌈input_bits/dac_bits⌉`.
    #[inline]
    pub fn cycles(&self) -> usize {
        self.input_bits.div_ceil(self.dac_bits) as usize
    }

    /// The bit width the query was sliced at.
    #[inline]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// The DAC resolution the query was sliced for.
    #[inline]
    pub fn dac_bits(&self) -> u32 {
        self.dac_bits
    }

    /// DAC level of element `i` at cycle `k` (0 past the last slice).
    #[inline]
    pub fn level(&self, i: usize, k: usize) -> u16 {
        self.slices[i].get(k).copied().unwrap_or(0)
    }
}

/// Minimum bit-width needed to represent `value` (at least 1).
#[inline]
pub fn bits_needed(value: u64) -> u32 {
    (64 - value.leading_zeros()).max(1)
}

/// Minimum bit-width needed for the largest value in `values` (at least 1).
pub fn bits_needed_slice(values: &[u32]) -> u32 {
    bits_needed(values.iter().copied().max().unwrap_or(0).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_example_25_on_2bit_cells() {
        // Fig. 2: decimal 25 = 011001b on 2-bit cells → slices 01, 10, 01
        // (MSB-first in the figure; LSB-first here): [01, 10, 01].
        let s = slice_operand(25, 6, 2).unwrap();
        assert_eq!(s, vec![0b01, 0b10, 0b01]);
        assert_eq!(unslice_operand(&s, 2), 25);
    }

    #[test]
    fn slicing_round_trips() {
        for &(v, b, h) in &[
            (0u64, 1u32, 1u32),
            (9, 6, 2),
            (20, 6, 2),
            (14, 6, 2),
            (1_000_000, 20, 2),
            (u32::MAX as u64, 32, 2),
        ] {
            let s = slice_operand(v, b, h).unwrap();
            assert_eq!(s.len() as u32, b.div_ceil(h));
            assert_eq!(unslice_operand(&s, h), v, "v={v} b={b} h={h}");
        }
    }

    #[test]
    fn slice_rejects_overflow() {
        assert!(slice_operand(64, 6, 2).is_err());
        assert!(slice_input(8, 3, 2).is_err());
        assert!(slice_operand(1, 0, 2).is_err());
    }

    #[test]
    fn input_slices_match_operand_slices_semantics() {
        let s = slice_input(0b110110, 6, 2).unwrap();
        assert_eq!(s, vec![0b10, 0b01, 0b11]);
    }

    #[test]
    fn shift_add_reassembles_scalar_product() {
        // Exhaustively verify v·u == shift_add over all 6-bit pairs using
        // 2-bit cells and a 2-bit DAC.
        let (b, h, dac) = (6u32, 2u32, 2u32);
        for v in 0u64..64 {
            for u in 0u64..64 {
                let vs = slice_operand(v, b, h).unwrap();
                let us = slice_input(u, b, dac).unwrap();
                let partials: Vec<Vec<u64>> = us
                    .iter()
                    .map(|&uk| vs.iter().map(|&vj| u64::from(uk) * u64::from(vj)).collect())
                    .collect();
                assert_eq!(shift_add(&partials, h, dac), u128::from(v * u));
            }
        }
    }

    #[test]
    fn bits_needed_values() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed_slice(&[3, 900_000, 17]), 20);
        assert_eq!(bits_needed_slice(&[]), 1);
    }
}

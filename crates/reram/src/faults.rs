//! Deterministic, seedable crossbar fault injection (a beyond-the-paper
//! robustness study, companion to [`crate::variation`]).
//!
//! The paper assumes pristine crossbars; deployed ReRAM parts develop
//! **hard faults**: cells stuck at their lowest or highest conductance,
//! whole bitlines or wordlines that no longer conduct, transient ADC
//! glitches, and wear-out once a crossbar exceeds its write endurance
//! (Table 1 lists 10⁸–10¹¹ writes for ReRAM). This module models all of
//! them as *deterministic functions of a seed and the fault site*, the
//! same idiom [`crate::variation::VariationModel::delta`] uses, so every
//! run is exactly reproducible and property tests can sweep seeds.
//!
//! Fault semantics (applied by [`crate::crossbar::Crossbar`]'s `_faulty`
//! pipeline and by [`crate::array::PimArray`]'s array-level emulation):
//!
//! * **Stuck-at-low** — the cell reads level 0 regardless of programming.
//! * **Stuck-at-high** — the cell reads the maximum level `2^h − 1`.
//! * **Dead wordline** — inputs never reach the row; its contribution is 0.
//! * **Dead bitline** — the bitline's analog sum reads 0.
//! * **ADC glitch** — a transient misread; the controller re-samples the
//!   bitline up to [`FaultConfig::adc_retry_limit`] times and fails with
//!   [`crate::error::ReRamError::AdcRetryExhausted`] if every attempt
//!   glitches.
//! * **Wear-out** — once a crossbar's program count exceeds
//!   [`FaultConfig::endurance_limit`], its cells collapse to stuck-at-low.
//!
//! Because stuck cells and dead lines corrupt a *known* set of stored
//! operand slices, the worst-case dot-product deviation per object is
//! computable (`Σ |v_faulty − v_true|` scaled by the maximum query level),
//! which is what lets `simpim-core` keep guard-banded bounds provably
//! correct on *drifted* crossbars and fall back to exact host evaluation
//! on *dead* ones — mining results stay bit-identical to fault-free runs.

use crate::error::ReRamError;

/// Fault state of a single cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// The cell works.
    None,
    /// The cell reads level 0 regardless of programming.
    StuckLow,
    /// The cell reads the maximum level `2^h − 1`.
    StuckHigh,
}

/// Fail-stop state of a whole bank — the coarsest fault class. Unlike
/// the cell/line faults above (which corrupt *data* while the controller
/// keeps answering), a lost bank stops responding to programming and
/// dot-product commands entirely. There is no in-place recovery: the
/// resident dataset must be re-programmed onto a spare bank. Banks die
/// either through the [`ReRamBank::kill`](crate::bank::ReRamBank::kill)
/// injection API or deterministically after
/// [`FaultConfig::bank_loss_after_dispatches`] dot-product batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BankLoss {
    /// The controller responds normally.
    #[default]
    Alive,
    /// The controller is fail-stopped; every command returns
    /// [`ReRamError::BankLost`].
    Lost,
}

impl BankLoss {
    /// Whether the bank is fail-stopped.
    pub fn is_lost(self) -> bool {
        self == Self::Lost
    }
}

/// Health classification of one crossbar after a scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossbarHealth {
    /// No fault intersects the crossbar's programmed area.
    Healthy,
    /// Isolated stuck cells corrupt stored operands by a *bounded,
    /// known* amount — usable behind a widened guard-band.
    Drifted,
    /// A dead line, wear-out, or a corrupted gather tree makes the
    /// crossbar's results untrustworthy; it must be remapped or its
    /// objects quarantined.
    Dead,
}

/// Deterministic fault-injection model. All rates are per-site
/// probabilities; every site's fate is a pure splitmix64 hash of
/// `(seed, site)`, so a given configuration always yields the same fault
/// map.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultConfig {
    /// Probability that a cell is stuck at level 0.
    pub stuck_low_rate: f64,
    /// Probability that a cell is stuck at the maximum level.
    pub stuck_high_rate: f64,
    /// Probability that a bitline is dead (reads 0).
    pub dead_bitline_rate: f64,
    /// Probability that a wordline is dead (inputs never reach it).
    pub dead_wordline_rate: f64,
    /// Probability that one ADC sampling attempt glitches.
    pub adc_glitch_rate: f64,
    /// Sampling attempts before the controller gives up on a glitching
    /// ADC (must be ≥ 1).
    pub adc_retry_limit: u32,
    /// Crossbar program-count budget; exceeding it wears the crossbar
    /// out (all cells stuck-at-low). `0` disables wear-out.
    pub endurance_limit: u32,
    /// Whole-bank fail-stop injection: the bank dies (every command
    /// returns [`ReRamError::BankLost`]) once it has served this many
    /// dot-product dispatches. `0` disables bank loss.
    pub bank_loss_after_dispatches: u64,
    /// Seed of the deterministic fault map.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            stuck_low_rate: 0.0,
            stuck_high_rate: 0.0,
            dead_bitline_rate: 0.0,
            dead_wordline_rate: 0.0,
            adc_glitch_rate: 0.0,
            adc_retry_limit: 3,
            endurance_limit: 0,
            bank_loss_after_dispatches: 0,
            seed: 0,
        }
    }
}

// Distinct hash streams so the fault classes are decorrelated.
const STREAM_CELL: u64 = 0x5AFE_CE11;
const STREAM_BITLINE: u64 = 0xB17_11FE;
const STREAM_WORDLINE: u64 = 0x30BD_11FE;
const STREAM_GLITCH: u64 = 0x6117C4;

impl FaultConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ReRamError> {
        let rates = [
            self.stuck_low_rate,
            self.stuck_high_rate,
            self.dead_bitline_rate,
            self.dead_wordline_rate,
            self.adc_glitch_rate,
        ];
        if rates.iter().any(|r| !(0.0..=1.0).contains(r) || r.is_nan()) {
            return Err(ReRamError::InvalidConfig {
                what: "fault rates must be in [0, 1]",
            });
        }
        if self.stuck_low_rate + self.stuck_high_rate > 1.0 {
            return Err(ReRamError::InvalidConfig {
                what: "stuck_low_rate + stuck_high_rate must not exceed 1",
            });
        }
        if self.adc_retry_limit == 0 {
            return Err(ReRamError::InvalidConfig {
                what: "adc_retry_limit must be at least 1",
            });
        }
        Ok(())
    }

    /// `true` when no fault class can ever fire (rates all zero and
    /// wear-out disabled) — the fault-free fast paths stay exact.
    pub fn is_inert(&self) -> bool {
        self.stuck_low_rate == 0.0
            && self.stuck_high_rate == 0.0
            && self.dead_bitline_rate == 0.0
            && self.dead_wordline_rate == 0.0
            && self.adc_glitch_rate == 0.0
            && self.endurance_limit == 0
            && self.bank_loss_after_dispatches == 0
    }

    /// Deterministic unit sample in `[0, 1)` for a fault site
    /// (splitmix64 of the coordinates, mirroring
    /// [`crate::variation::VariationModel::delta`]).
    fn unit(&self, stream: u64, a: u64, b: u64, c: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(stream.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(a.wrapping_add(1)))
            .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(b.wrapping_add(1)))
            .wrapping_add(0x94D0_49BB_1331_11EBu64.wrapping_mul(c.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fault state of cell `(row, col)` of physical crossbar `crossbar`.
    pub fn cell_fault(&self, crossbar: usize, row: usize, col: usize) -> CellFault {
        if self.stuck_low_rate == 0.0 && self.stuck_high_rate == 0.0 {
            return CellFault::None;
        }
        let u = self.unit(STREAM_CELL, crossbar as u64, row as u64, col as u64);
        if u < self.stuck_low_rate {
            CellFault::StuckLow
        } else if u < self.stuck_low_rate + self.stuck_high_rate {
            CellFault::StuckHigh
        } else {
            CellFault::None
        }
    }

    /// Whether bitline `col` of crossbar `crossbar` is dead.
    pub fn dead_bitline(&self, crossbar: usize, col: usize) -> bool {
        self.dead_bitline_rate > 0.0
            && self.unit(STREAM_BITLINE, crossbar as u64, col as u64, 0) < self.dead_bitline_rate
    }

    /// Whether wordline `row` of crossbar `crossbar` is dead.
    pub fn dead_wordline(&self, crossbar: usize, row: usize) -> bool {
        self.dead_wordline_rate > 0.0
            && self.unit(STREAM_WORDLINE, crossbar as u64, row as u64, 0) < self.dead_wordline_rate
    }

    /// Whether sampling attempt `attempt` of crossbar `crossbar`'s ADC
    /// glitches.
    pub fn adc_glitch(&self, crossbar: usize, attempt: u32) -> bool {
        self.adc_glitch_rate > 0.0
            && self.unit(STREAM_GLITCH, crossbar as u64, u64::from(attempt), 0)
                < self.adc_glitch_rate
    }

    /// Walks the bounded retry chain of crossbar `crossbar`'s ADC:
    /// returns the number of glitched attempts before a clean sample, or
    /// [`ReRamError::AdcRetryExhausted`] when every attempt within the
    /// retry budget glitches.
    pub fn glitch_retries(&self, crossbar: usize) -> Result<u32, ReRamError> {
        for attempt in 0..self.adc_retry_limit {
            if !self.adc_glitch(crossbar, attempt) {
                return Ok(attempt);
            }
        }
        Err(ReRamError::AdcRetryExhausted {
            crossbar,
            attempts: self.adc_retry_limit,
        })
    }

    /// Whether a crossbar with `programs` program cycles has exceeded its
    /// write endurance.
    pub fn worn_out(&self, programs: u32) -> bool {
        self.endurance_limit > 0 && programs > self.endurance_limit
    }

    /// The level cell `(row, col)` of crossbar `crossbar` actually reads
    /// when programmed to `programmed`, given the crossbar's wear state.
    pub fn effective_level(
        &self,
        crossbar: usize,
        row: usize,
        col: usize,
        programmed: u8,
        cell_bits: u32,
        worn: bool,
    ) -> u8 {
        if worn {
            return 0;
        }
        match self.cell_fault(crossbar, row, col) {
            CellFault::None => programmed,
            CellFault::StuckLow => 0,
            CellFault::StuckHigh => ((1u16 << cell_bits) - 1) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert_and_valid() {
        let cfg = FaultConfig::default();
        cfg.validate().unwrap();
        assert!(cfg.is_inert());
        for xb in 0..4 {
            for r in 0..16 {
                for c in 0..16 {
                    assert_eq!(cfg.cell_fault(xb, r, c), CellFault::None);
                }
                assert!(!cfg.dead_wordline(xb, r));
                assert!(!cfg.dead_bitline(xb, r));
            }
            assert_eq!(cfg.glitch_retries(xb).unwrap(), 0);
        }
        assert!(!cfg.worn_out(u32::MAX));
    }

    #[test]
    fn fault_maps_are_deterministic_and_seed_sensitive() {
        let a = FaultConfig {
            stuck_low_rate: 0.2,
            stuck_high_rate: 0.2,
            dead_bitline_rate: 0.3,
            dead_wordline_rate: 0.3,
            seed: 7,
            ..Default::default()
        };
        let b = FaultConfig { seed: 8, ..a };
        let mut differs = false;
        for r in 0..32 {
            for c in 0..32 {
                assert_eq!(a.cell_fault(5, r, c), a.cell_fault(5, r, c));
                if a.cell_fault(5, r, c) != b.cell_fault(5, r, c) {
                    differs = true;
                }
            }
        }
        assert!(differs, "different seeds must produce different maps");
        // Different crossbars see different fault sites too.
        let same: usize = (0..64)
            .filter(|&r| a.dead_wordline(0, r) == a.dead_wordline(1, r))
            .count();
        assert!(same < 64);
    }

    #[test]
    fn rates_control_fault_density() {
        let cfg = FaultConfig {
            stuck_low_rate: 0.5,
            ..Default::default()
        };
        let stuck = (0..64)
            .flat_map(|r| (0..64).map(move |c| (r, c)))
            .filter(|&(r, c)| cfg.cell_fault(0, r, c) == CellFault::StuckLow)
            .count();
        // 4096 sites at p = 0.5: comfortably within [1500, 2600].
        assert!((1500..2600).contains(&stuck), "stuck count {stuck}");
        assert!((0..64)
            .flat_map(|r| (0..64).map(move |c| (r, c)))
            .all(|(r, c)| cfg.cell_fault(0, r, c) != CellFault::StuckHigh));
    }

    #[test]
    fn glitch_retry_chain_is_bounded() {
        let always = FaultConfig {
            adc_glitch_rate: 1.0,
            adc_retry_limit: 4,
            ..Default::default()
        };
        assert_eq!(
            always.glitch_retries(3),
            Err(ReRamError::AdcRetryExhausted {
                crossbar: 3,
                attempts: 4
            })
        );
        let sometimes = FaultConfig {
            adc_glitch_rate: 0.5,
            adc_retry_limit: 16,
            seed: 11,
            ..Default::default()
        };
        for xb in 0..32 {
            let retries = sometimes.glitch_retries(xb).unwrap();
            assert!(retries < 16);
        }
    }

    #[test]
    fn wear_out_threshold() {
        let cfg = FaultConfig {
            endurance_limit: 10,
            ..Default::default()
        };
        assert!(!cfg.worn_out(10));
        assert!(cfg.worn_out(11));
        assert!(!FaultConfig::default().worn_out(1_000_000));
    }

    #[test]
    fn effective_level_applies_faults() {
        let cfg = FaultConfig {
            stuck_low_rate: 0.5,
            stuck_high_rate: 0.5,
            seed: 3,
            ..Default::default()
        };
        for r in 0..16 {
            for c in 0..16 {
                let lvl = cfg.effective_level(0, r, c, 2, 2, false);
                match cfg.cell_fault(0, r, c) {
                    CellFault::None => assert_eq!(lvl, 2),
                    CellFault::StuckLow => assert_eq!(lvl, 0),
                    CellFault::StuckHigh => assert_eq!(lvl, 3),
                }
                // Worn crossbars read zero everywhere.
                assert_eq!(cfg.effective_level(0, r, c, 2, 2, true), 0);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let bad_rate = FaultConfig {
            stuck_low_rate: 1.5,
            ..Default::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_sum = FaultConfig {
            stuck_low_rate: 0.7,
            stuck_high_rate: 0.7,
            ..Default::default()
        };
        assert!(bad_sum.validate().is_err());
        let bad_retry = FaultConfig {
            adc_retry_limit: 0,
            ..Default::default()
        };
        assert!(bad_retry.validate().is_err());
    }
}

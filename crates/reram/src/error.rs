//! Error type for the ReRAM simulator.

use std::fmt;

/// Errors raised by the crossbar / PIM-array simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReRamError {
    /// An operand does not fit the configured bit-width.
    OperandOverflow {
        /// The offending value.
        value: u64,
        /// The configured width it must fit.
        bits: u32,
    },
    /// A vector or input exceeds the crossbar / layout geometry.
    GeometryViolation {
        /// Which quantity violated the geometry.
        what: &'static str,
        /// The provided size.
        got: usize,
        /// The geometric limit.
        limit: usize,
    },
    /// The dataset does not fit in the PIM array's crossbar budget.
    InsufficientCapacity {
        /// Crossbars the layout needs.
        required: usize,
        /// Crossbars still free.
        available: usize,
    },
    /// An online operation was issued before the array was programmed.
    NotProgrammed,
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Which parameter and why.
        what: &'static str,
    },
    /// Analog accumulation exceeded the configured ADC resolution — the
    /// hardware would clip; the simulator refuses instead of silently
    /// producing wrong currents.
    AdcOverflow {
        /// The analog sum that clipped.
        value: u64,
        /// The configured ADC resolution.
        adc_bits: u32,
    },
    /// A crossbar's ADC glitched on every sampling attempt within the
    /// bounded retry budget — the controller cannot obtain a trustworthy
    /// read.
    AdcRetryExhausted {
        /// The physical crossbar whose ADC keeps glitching.
        crossbar: usize,
        /// Sampling attempts made before giving up.
        attempts: u32,
    },
    /// The whole bank is lost (fail-stop): the controller no longer
    /// responds to programming or dot-product commands. Recovery means
    /// re-replicating the resident data onto a spare bank.
    BankLost,
    /// A fault/health API was called on an array without an attached
    /// fault model.
    FaultsNotEnabled,
    /// A health query was issued before the region was scrubbed.
    NotScrubbed,
}

impl fmt::Display for ReRamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OperandOverflow { value, bits } => {
                write!(f, "operand {value} does not fit in {bits} bits")
            }
            Self::GeometryViolation { what, got, limit } => {
                write!(
                    f,
                    "geometry violation: {what} = {got} exceeds limit {limit}"
                )
            }
            Self::InsufficientCapacity {
                required,
                available,
            } => {
                write!(
                    f,
                    "dataset needs {required} crossbars but only {available} are available"
                )
            }
            Self::NotProgrammed => write!(f, "PIM array has not been programmed with a dataset"),
            Self::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Self::AdcOverflow { value, adc_bits } => {
                write!(
                    f,
                    "analog sum {value} exceeds {adc_bits}-bit ADC resolution"
                )
            }
            Self::AdcRetryExhausted { crossbar, attempts } => {
                write!(
                    f,
                    "crossbar {crossbar}: ADC glitched on all {attempts} sampling attempts"
                )
            }
            Self::BankLost => {
                write!(f, "bank lost: the controller is fail-stopped")
            }
            Self::FaultsNotEnabled => {
                write!(f, "no fault model is attached to the PIM array")
            }
            Self::NotScrubbed => {
                write!(f, "region health is unknown until it is scrubbed")
            }
        }
    }
}

impl std::error::Error for ReRamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ReRamError::OperandOverflow { value: 9, bits: 3 }
            .to_string()
            .contains("9"));
        assert!(ReRamError::NotProgrammed.to_string().contains("programmed"));
        assert!(ReRamError::InsufficientCapacity {
            required: 5,
            available: 2
        }
        .to_string()
        .contains("crossbars"));
        assert!(ReRamError::AdcRetryExhausted {
            crossbar: 7,
            attempts: 3
        }
        .to_string()
        .contains("3 sampling attempts"));
        assert!(ReRamError::BankLost.to_string().contains("bank lost"));
        assert!(ReRamError::FaultsNotEnabled
            .to_string()
            .contains("fault model"));
        assert!(ReRamError::NotScrubbed.to_string().contains("scrubbed"));
    }
}

//! Latency model for PIM operations.
//!
//! The paper measures PIM-side time with NVSim (Section VI-A); here the same
//! quantities are derived analytically from the crossbar geometry:
//!
//! * **Data pass** — every data crossbar fires concurrently (SIMD across
//!   crossbars, Section II-A); a pass streams the query through the DAC in
//!   `⌈b_in/dac⌉` cycles of one crossbar read latency each. When several
//!   object groups stack vertically inside one crossbar (`s ≤ m/2`), each
//!   stacked slot needs its own pass because bitline currents would
//!   otherwise mix distinct objects.
//! * **Gather tree** — for `s > m`, each group's `⌈s/m⌉` partials reduce
//!   through `depth` levels of all-ones crossbars. The `g` objects of a
//!   group time-multiplex the tree in pipeline fashion:
//!   `(g + depth − 1)` stages of `⌈b_partial/dac⌉` cycles.
//! * **Buffer/bus** — results move crossbar → buffer array over the
//!   internal bus (Table 5: 50 GB/s); if a batch exceeds the 16 MB buffer
//!   it drains in waves.
//! * **Programming** — rows are programmed one pulse per crossbar row
//!   through the controller's single programming port (`write_ns` per row),
//!   which is what makes ReRAM pre-processing slower than DRAM
//!   pre-processing in Fig. 17 despite writing less data.

use crate::config::{AccWidth, PimConfig};
use crate::gather::CrossbarCost;

/// Latency breakdown of one PIM dot-product batch, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct PimTiming {
    /// Query streaming through the data crossbars.
    pub data_pass_ns: f64,
    /// Gather-tree reduction (0 when `s ≤ m`).
    pub gather_ns: f64,
    /// Result movement over the internal bus into the buffer array.
    pub bus_ns: f64,
    /// Buffer array access latency (one burst per wave).
    pub buffer_ns: f64,
    /// Number of buffer waves the batch drained in.
    pub buffer_waves: u64,
}

impl PimTiming {
    /// Total PIM-side latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.data_pass_ns + self.gather_ns + self.bus_ns + self.buffer_ns
    }

    /// Accumulates another timing (e.g. multiple regions queried in
    /// sequence).
    pub fn add(&mut self, other: &PimTiming) {
        self.data_pass_ns += other.data_pass_ns;
        self.gather_ns += other.gather_ns;
        self.bus_ns += other.bus_ns;
        self.buffer_ns += other.buffer_ns;
        self.buffer_waves += other.buffer_waves;
    }

    /// Merges a batch that ran **in parallel** on disjoint crossbar groups
    /// (Section V-C: "it is flexible to separate the crossbars into
    /// multiple groups … for parallelly computing multiple functions").
    /// Analog passes overlap (take the slower group); the internal bus and
    /// buffer are shared, so their costs still accumulate.
    pub fn merge_parallel(&mut self, other: &PimTiming) {
        self.data_pass_ns = self.data_pass_ns.max(other.data_pass_ns);
        self.gather_ns = self.gather_ns.max(other.gather_ns);
        self.bus_ns += other.bus_ns;
        self.buffer_ns += other.buffer_ns;
        self.buffer_waves += other.buffer_waves;
    }
}

impl simpim_obs::ToJson for PimTiming {
    fn to_json(&self) -> simpim_obs::Json {
        use simpim_obs::Json;
        Json::obj([
            ("data_pass_ns", Json::Num(self.data_pass_ns)),
            ("gather_ns", Json::Num(self.gather_ns)),
            ("bus_ns", Json::Num(self.bus_ns)),
            ("buffer_ns", Json::Num(self.buffer_ns)),
            ("buffer_waves", Json::Num(self.buffer_waves as f64)),
            ("total_ns", Json::Num(self.total_ns())),
        ])
    }
}

/// Computes the latency of one dot-product batch.
///
/// * `cost` — the programmed layout (crossbar counts, grouping, slots).
/// * `input_bits` — bit-width of the streamed query operands.
/// * `partial_bits` — bit-width of the partials entering the gather tree.
/// * `n_results` — number of dot products produced (one per object).
pub fn dot_batch_timing(
    cfg: &PimConfig,
    cost: &CrossbarCost,
    input_bits: u32,
    partial_bits: u32,
    n_results: usize,
    acc: AccWidth,
) -> PimTiming {
    let xb = &cfg.crossbar;
    let read = xb.read_ns;

    // Sequential passes: how many object groups share one physical crossbar.
    let passes = (cost.groups * cost.chunks_per_object).div_ceil(cost.data.max(1)) as u64;
    let data_pass_ns = passes as f64 * xb.input_cycles(input_bits) as f64 * read;

    let gather_ns = if cost.gather_depth > 0 {
        let stages = (cost.group_size + cost.gather_depth - 1) as f64;
        stages * xb.input_cycles(partial_bits) as f64 * read
    } else {
        0.0
    };

    let result_bytes = n_results as u64 * acc.bytes();
    let bus_ns = cfg.bus_seconds(result_bytes) * 1e9;
    let buffer_waves = result_bytes.div_ceil(cfg.buffer_bytes.max(1)).max(1);
    let buffer_ns = buffer_waves as f64 * cfg.buffer_ns;

    PimTiming {
        data_pass_ns,
        gather_ns,
        bus_ns,
        buffer_ns,
        buffer_waves,
    }
}

/// Latency of programming `rows_written` crossbar rows (offline stage).
pub fn program_timing_ns(cfg: &PimConfig, rows_written: u64) -> f64 {
    rows_written as f64 * cfg.crossbar.write_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrossbarConfig;
    use crate::gather::dataset_crossbar_cost;

    fn cfg() -> PimConfig {
        PimConfig::default()
    }

    #[test]
    fn single_pass_small_dataset() {
        // 16 objects fit one group; s = 128 ≤ 256 → 2 slots but only one
        // group → 1 pass.
        let c = dataset_crossbar_cost(16, 128, 32, &cfg().crossbar).unwrap();
        let t = dot_batch_timing(&cfg(), &c, 20, 40, 16, AccWidth::U64);
        // 20-bit input through 2-bit DAC → 10 cycles × 29.31 ns.
        assert!((t.data_pass_ns - 10.0 * 29.31).abs() < 1e-9);
        assert_eq!(t.gather_ns, 0.0);
        assert_eq!(t.buffer_waves, 1);
    }

    #[test]
    fn stacked_slots_multiply_passes() {
        // 64 objects → 4 groups; s = 64 → 4 slots/crossbar → 1 data
        // crossbar → 4 sequential passes.
        let c = dataset_crossbar_cost(64, 64, 32, &cfg().crossbar).unwrap();
        assert_eq!(c.data, 1);
        let t = dot_batch_timing(&cfg(), &c, 20, 40, 64, AccWidth::U64);
        assert!((t.data_pass_ns - 4.0 * 10.0 * 29.31).abs() < 1e-9);
    }

    #[test]
    fn gather_adds_pipeline_latency() {
        let c = dataset_crossbar_cost(16, 1024, 32, &cfg().crossbar).unwrap();
        assert_eq!(c.gather_depth, 1);
        assert_eq!(c.group_size, 16);
        let t = dot_batch_timing(&cfg(), &c, 20, 40, 16, AccWidth::U64);
        // (16 + 1 − 1) stages × ⌈40/2⌉ cycles × 29.31 ns.
        assert!((t.gather_ns - 16.0 * 20.0 * 29.31).abs() < 1e-6);
        assert!(t.total_ns() > t.gather_ns);
    }

    #[test]
    fn bus_time_scales_with_results() {
        let c = dataset_crossbar_cost(1000, 128, 32, &cfg().crossbar).unwrap();
        let t1 = dot_batch_timing(&cfg(), &c, 20, 40, 1000, AccWidth::U64);
        let t2 = dot_batch_timing(&cfg(), &c, 20, 40, 2000, AccWidth::U64);
        assert!((t2.bus_ns / t1.bus_ns - 2.0).abs() < 1e-9);
        // U32 halves the result traffic.
        let t3 = dot_batch_timing(&cfg(), &c, 20, 40, 1000, AccWidth::U32);
        assert!((t1.bus_ns / t3.bus_ns - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_batches_drain_in_waves() {
        let mut small = cfg();
        small.buffer_bytes = 1024;
        let c = dataset_crossbar_cost(1000, 128, 32, &small.crossbar).unwrap();
        let t = dot_batch_timing(&small, &c, 20, 40, 1000, AccWidth::U64);
        assert_eq!(t.buffer_waves, (1000u64 * 8).div_ceil(1024));
        assert!(t.buffer_ns >= t.buffer_waves as f64 * small.buffer_ns - 1e-9);
    }

    #[test]
    fn timing_add_accumulates() {
        let c = dataset_crossbar_cost(16, 128, 32, &cfg().crossbar).unwrap();
        let t = dot_batch_timing(&cfg(), &c, 20, 40, 16, AccWidth::U64);
        let mut sum = PimTiming::default();
        sum.add(&t);
        sum.add(&t);
        assert!((sum.total_ns() - 2.0 * t.total_ns()).abs() < 1e-9);
        assert_eq!(sum.buffer_waves, 2);
    }

    #[test]
    fn program_timing_uses_write_latency() {
        let t = program_timing_ns(&cfg(), 1000);
        assert!((t - 1000.0 * 50.88).abs() < 1e-9);
    }

    #[test]
    fn narrow_dac_needs_more_cycles() {
        let mut narrow = cfg();
        narrow.crossbar = CrossbarConfig {
            dac_bits: 1,
            adc_bits: 12,
            ..narrow.crossbar
        };
        let c = dataset_crossbar_cost(16, 128, 32, &narrow.crossbar).unwrap();
        let wide = dot_batch_timing(&cfg(), &c, 20, 40, 16, AccWidth::U64);
        let slim = dot_batch_timing(&narrow, &c, 20, 40, 16, AccWidth::U64);
        assert!(slim.data_pass_ns > wide.data_pass_ns);
    }
}

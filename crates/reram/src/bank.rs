//! A ReRAM bank: PIM array + buffer array + memory array behind one
//! controller (Fig. 4b).
//!
//! The controller coordinates the dataflow the paper describes: the PIM
//! array computes dot-product batches, results land in the buffer array so
//! the CPU can drain them without stalling PIM, and pre-computed Φ values
//! live in the memory array. `simpim-core`'s executor drives exactly this
//! interface.

use crate::array::{
    BufferArray, MemoryArray, PimArray, ProgramReport, RegionId, RemapReport, ScrubReport,
};
use crate::config::{AccWidth, PimConfig};
use crate::error::ReRamError;
use crate::faults::{BankLoss, CrossbarHealth, FaultConfig};
use crate::timing::PimTiming;

/// Result of one dot-product batch issued through the bank controller.
#[derive(Debug, Clone, PartialEq)]
pub struct DotBatchResult {
    /// Per-object dot products, wrapped at the accumulator width.
    pub values: Vec<u64>,
    /// PIM-side latency (crossbar passes + gather + bus + buffer).
    pub timing: PimTiming,
    /// Bytes staged in the buffer array for the CPU to collect.
    pub result_bytes: u64,
}

/// A ReRAM-based memory bank with in-situ processing.
#[derive(Debug, Clone)]
pub struct ReRamBank {
    pim: PimArray,
    buffer: BufferArray,
    memory: MemoryArray,
    loss: BankLoss,
    dispatches: u64,
}

impl ReRamBank {
    /// Builds a bank from the platform configuration.
    pub fn new(cfg: PimConfig) -> Result<Self, ReRamError> {
        Ok(Self {
            pim: PimArray::new(cfg)?,
            buffer: BufferArray::new(cfg.buffer_bytes),
            memory: MemoryArray::new(cfg.memory_bytes),
            loss: BankLoss::Alive,
            dispatches: 0,
        })
    }

    /// Fail-stops the bank: every subsequent programming or dot-product
    /// command returns [`ReRamError::BankLost`]. The injection half of the
    /// [`BankLoss`] fault class; the stored data is considered gone, so
    /// recovery means re-programming onto a spare bank.
    pub fn kill(&mut self) {
        self.loss = BankLoss::Lost;
        simpim_obs::metrics::counter_add("simpim.reram.bank.kills", 1);
    }

    /// Revives a killed bank (test/maintenance hook). The programmed state
    /// is still in the simulator, so a heal models a transient controller
    /// outage rather than data loss; production recovery paths should
    /// re-replicate instead of healing.
    pub fn heal(&mut self) {
        self.loss = BankLoss::Alive;
    }

    /// Whether the bank is fail-stopped (killed or past its deterministic
    /// loss point).
    pub fn is_lost(&self) -> bool {
        self.loss.is_lost()
    }

    /// Dot-product dispatches served since the bank was built.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Gate shared by every controller command: fail if the bank is lost,
    /// and trip the deterministic [`FaultConfig::bank_loss_after_dispatches`]
    /// loss point if this bank has reached it.
    fn ensure_alive(&mut self) -> Result<(), ReRamError> {
        if let Some(faults) = self.pim.fault_config() {
            if faults.bank_loss_after_dispatches > 0
                && self.dispatches >= faults.bank_loss_after_dispatches
                && !self.loss.is_lost()
            {
                self.kill();
            }
        }
        if self.loss.is_lost() {
            return Err(ReRamError::BankLost);
        }
        Ok(())
    }

    /// The platform configuration.
    pub fn config(&self) -> &PimConfig {
        self.pim.config()
    }

    /// The PIM array (read access for inspection).
    pub fn pim(&self) -> &PimArray {
        &self.pim
    }

    /// The PIM array (mutable access, e.g. for attaching fault models).
    pub fn pim_mut(&mut self) -> &mut PimArray {
        &mut self.pim
    }

    /// Attaches a deterministic fault model to the PIM array. See
    /// [`PimArray::enable_faults`].
    pub fn enable_faults(&mut self, faults: FaultConfig) -> Result<(), ReRamError> {
        self.pim.enable_faults(faults)
    }

    /// Scrubs one region against its fault map. See
    /// [`PimArray::scrub_region`].
    pub fn scrub_region(&mut self, region: RegionId) -> Result<ScrubReport, ReRamError> {
        self.pim.scrub_region(region)
    }

    /// Remaps a region's dead crossbars onto spare capacity. See
    /// [`PimArray::remap_dead`].
    pub fn remap_dead(&mut self, region: RegionId) -> Result<RemapReport, ReRamError> {
        self.pim.remap_dead(region)
    }

    /// Worst-case health of the crossbars serving one object. See
    /// [`PimArray::object_health`].
    pub fn object_health(
        &self,
        region: RegionId,
        obj: usize,
    ) -> Result<CrossbarHealth, ReRamError> {
        self.pim.object_health(region, obj)
    }

    /// The memory array, for staging pre-computed Φ values.
    pub fn memory_mut(&mut self) -> &mut MemoryArray {
        &mut self.memory
    }

    /// The memory array (read access).
    pub fn memory(&self) -> &MemoryArray {
        &self.memory
    }

    /// The buffer array (read access).
    pub fn buffer(&self) -> &BufferArray {
        &self.buffer
    }

    /// Programs a region (offline stage). See
    /// [`PimArray::program_region`].
    pub fn program_region(
        &mut self,
        flat: &[u32],
        n: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        self.ensure_alive()?;
        self.pim.program_region(flat, n, s, operand_bits)
    }

    /// Programs a region sized for `capacity` objects while storing only
    /// the first `n` (online residency). See
    /// [`PimArray::program_region_with_capacity`].
    pub fn program_region_with_capacity(
        &mut self,
        flat: &[u32],
        n: usize,
        capacity: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        self.ensure_alive()?;
        self.pim
            .program_region_with_capacity(flat, n, capacity, s, operand_bits)
    }

    /// Opens a streamed region (no rows yet). See
    /// [`PimArray::begin_region_streamed`].
    pub fn begin_region_streamed(
        &mut self,
        capacity: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        self.ensure_alive()?;
        self.pim.begin_region_streamed(capacity, s, operand_bits)
    }

    /// Streams one block of the initial matrix into an open region. See
    /// [`PimArray::fill_rows`].
    pub fn fill_rows(
        &mut self,
        region: RegionId,
        flat: &[u32],
    ) -> Result<ProgramReport, ReRamError> {
        self.ensure_alive()?;
        self.pim.fill_rows(region, flat)
    }

    /// Seals a streamed region. See [`PimArray::finish_region`].
    pub fn finish_region(&mut self, region: RegionId) -> Result<(), ReRamError> {
        self.ensure_alive()?;
        self.pim.finish_region(region)
    }

    /// Appends objects into a region's spare rows (online insert). See
    /// [`PimArray::append_rows`].
    pub fn append_rows(
        &mut self,
        region: RegionId,
        flat: &[u32],
    ) -> Result<ProgramReport, ReRamError> {
        self.ensure_alive()?;
        let rep = self.pim.append_rows(region, flat)?;
        simpim_obs::metrics::counter_add("simpim.reram.bank.appends", 1);
        Ok(rep)
    }

    /// Spare object slots still unprogrammed in a region. See
    /// [`PimArray::region_capacity`] and [`PimArray::region_shape`].
    pub fn region_spare(&self, region: RegionId) -> Result<usize, ReRamError> {
        let (n, _, _) = self.pim.region_shape(region)?;
        Ok(self.pim.region_capacity(region)? - n)
    }

    /// Issues one dot-product batch and stages the results in the buffer
    /// array.
    pub fn dot_batch(
        &mut self,
        region: RegionId,
        query: &[u32],
        acc: AccWidth,
    ) -> Result<DotBatchResult, ReRamError> {
        self.ensure_alive()?;
        self.dispatches += 1;
        let mut span = simpim_obs::span!("reram.bank.dot_batch", region = region.0 as u64);
        let (values, timing) = self.pim.dot_batch(region, query, acc)?;
        let result_bytes = values.len() as u64 * acc.bytes();
        self.buffer.stage(result_bytes);
        // One registry touch per *batch*: dispatch count, gather-tree
        // latency distribution, and buffer pressure.
        simpim_obs::metrics::counter_add("simpim.reram.bank.dispatches", 1);
        simpim_obs::metrics::counter_add("simpim.reram.bank.result_bytes", result_bytes);
        simpim_obs::metrics::histogram_record(
            "simpim.reram.bank.gather_ns",
            timing.gather_ns as u64,
        );
        simpim_obs::metrics::gauge_set(
            "simpim.reram.bank.buffer_high_water",
            self.buffer.high_water() as f64,
        );
        span.record_all([
            ("objects", values.len() as f64),
            ("gather_ns", timing.gather_ns),
            ("total_ns", timing.total_ns()),
        ]);
        Ok(DotBatchResult {
            values,
            timing,
            result_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrossbarConfig;

    fn cfg() -> PimConfig {
        PimConfig {
            crossbar: CrossbarConfig {
                size: 8,
                cell_bits: 2,
                dac_bits: 2,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 16,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_program_and_query() {
        let mut bank = ReRamBank::new(cfg()).unwrap();
        let rep = bank.program_region(&[1, 2, 3, 4, 5, 6], 2, 3, 4).unwrap();
        let out = bank
            .dot_batch(rep.region, &[1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(out.values, vec![6, 15]);
        assert_eq!(out.result_bytes, 16);
        assert!(out.timing.total_ns() > 0.0);
        assert_eq!(bank.buffer().high_water(), 16);
    }

    #[test]
    fn memory_array_reachable() {
        let mut bank = ReRamBank::new(cfg()).unwrap();
        bank.memory_mut().store(1024).unwrap();
        assert_eq!(bank.memory().used(), 1024);
    }

    #[test]
    fn capacity_and_append_round_trip() {
        let mut bank = ReRamBank::new(cfg()).unwrap();
        let rep = bank
            .program_region_with_capacity(&[1, 2, 3, 4, 5, 6], 2, 4, 3, 4)
            .unwrap();
        assert_eq!(bank.region_spare(rep.region).unwrap(), 2);
        bank.append_rows(rep.region, &[7, 8, 9]).unwrap();
        assert_eq!(bank.region_spare(rep.region).unwrap(), 1);
        let out = bank
            .dot_batch(rep.region, &[1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(out.values, vec![6, 15, 24]);
    }

    #[test]
    fn killed_bank_fail_stops_until_healed() {
        let mut bank = ReRamBank::new(cfg()).unwrap();
        let rep = bank.program_region(&[1, 2, 3, 4, 5, 6], 2, 3, 4).unwrap();
        assert!(!bank.is_lost());
        bank.kill();
        assert!(bank.is_lost());
        assert_eq!(
            bank.dot_batch(rep.region, &[1, 1, 1], AccWidth::U64),
            Err(ReRamError::BankLost)
        );
        assert_eq!(
            bank.append_rows(rep.region, &[7, 8, 9]),
            Err(ReRamError::BankLost)
        );
        assert_eq!(
            bank.program_region(&[1, 2, 3], 1, 3, 4),
            Err(ReRamError::BankLost)
        );
        bank.heal();
        let out = bank
            .dot_batch(rep.region, &[1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(out.values, vec![6, 15]);
    }

    #[test]
    fn deterministic_bank_loss_trips_at_the_configured_dispatch() {
        let mut bank = ReRamBank::new(cfg()).unwrap();
        let rep = bank.program_region(&[1, 2, 3, 4, 5, 6], 2, 3, 4).unwrap();
        bank.pim_mut()
            .enable_faults(crate::faults::FaultConfig {
                bank_loss_after_dispatches: 2,
                ..Default::default()
            })
            .unwrap();
        for _ in 0..2 {
            bank.dot_batch(rep.region, &[1, 1, 1], AccWidth::U64)
                .unwrap();
        }
        assert_eq!(bank.dispatches(), 2);
        assert_eq!(
            bank.dot_batch(rep.region, &[1, 1, 1], AccWidth::U64),
            Err(ReRamError::BankLost)
        );
        assert!(bank.is_lost());
    }

    #[test]
    fn queries_require_programming() {
        let mut bank = ReRamBank::new(cfg()).unwrap();
        assert!(bank.dot_batch(RegionId(0), &[1], AccWidth::U64).is_err());
    }
}

//! The three arrays of a ReRAM bank (Fig. 4b): PIM array, buffer array,
//! memory array.
//!
//! [`PimArray`] is the array-level model: it tracks the programmed integer
//! matrices ("regions"), their crossbar layout and endurance counters, and
//! answers dot-product batches with the exact integers the bit-sliced
//! pipeline would produce (see the crate docs on fidelity modes) together
//! with the cycle-derived timing. A *region* is one programmed matrix —
//! e.g. `⌊p̄⌋` for `LB_PIM-ED`, or the `⌊µ(p̂)⌋` / `⌊σ(p̂)⌋` pair for
//! `LB_PIM-FNN`, or the code/complement pair for Hamming distance.

use std::collections::HashMap;

use crate::bitslice::{bits_needed, bits_needed_slice};
use crate::config::{AccWidth, PimConfig};
use crate::energy::{EnergyModel, EnergyReport};
use crate::error::ReRamError;
use crate::faults::{CellFault, CrossbarHealth, FaultConfig};
use crate::gather::{dataset_crossbar_cost, CrossbarCost};
use crate::timing::{dot_batch_timing, program_timing_ns, PimTiming};

/// Objects per pool task when a dot-product batch fans out. A fixed
/// constant (never derived from the worker count) so chunk boundaries —
/// and therefore results — are identical at every `SIMPIM_THREADS`.
const DOT_BATCH_CHUNK: usize = 256;

/// Identifies one programmed region of the PIM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct RegionId(pub usize);

/// Outcome of programming one region (offline stage).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramReport {
    /// Handle for issuing queries against this region.
    pub region: RegionId,
    /// Crossbars consumed.
    pub cost: CrossbarCost,
    /// Individual cell programming pulses.
    pub cell_writes: u64,
    /// Crossbar rows programmed (one write pulse each).
    pub rows_written: u64,
    /// Offline programming latency in nanoseconds.
    pub program_ns: f64,
    /// Programming energy in joules.
    pub energy_j: f64,
}

#[derive(Debug, Clone)]
struct Region {
    data: Vec<u32>,
    n: usize,
    /// Objects the allocation was sized for (`>= n`); rows `n..capacity`
    /// are spare — allocated but never programmed — and are filled by
    /// [`PimArray::append_rows`] without reprogramming the region.
    capacity: usize,
    s: usize,
    operand_bits: u32,
    cost: CrossbarCost,
    /// First physical crossbar id of this region's allocation; local
    /// crossbar `l` lives at physical id `base_crossbar + l` unless
    /// remapped onto a spare.
    base_crossbar: usize,
    /// Mid-stream fill in progress ([`PimArray::begin_region_streamed`]):
    /// the initial matrix is arriving block-by-block, wear for the whole
    /// allocation was already charged at `begin`, and queries/appends are
    /// rejected until [`PimArray::finish_region`] seals the region.
    filling: bool,
    /// Local crossbar → spare physical crossbar substitutions installed by
    /// [`PimArray::remap_dead`].
    remap: HashMap<usize, usize>,
}

impl Region {
    #[inline]
    fn phys(&self, local: usize) -> usize {
        self.remap
            .get(&local)
            .copied()
            .unwrap_or(self.base_crossbar + local)
    }
}

/// Per-region fault survey: which crossbars are corrupted, by how much
/// each stored object deviates, and the emulated faulty read-outs. The
/// survey doubles as the detection state behind the scrub/health API and
/// as the emulation table for [`PimArray::dot_batch`] under faults.
#[derive(Debug, Clone)]
struct RegionFaultInfo {
    /// Health per local crossbar (data crossbars first, then gather).
    health: Vec<CrossbarHealth>,
    /// Per object: `Σ_dims |v_faulty − v_true|` — the worst-case stored
    /// deviation, which bounds the dot-product error by
    /// `max_query_level · discrepancy`.
    discrepancy: Vec<u64>,
    /// Emulated faulty stored rows, for objects whose data crossbars are
    /// corrupted (sparse: untouched objects read exactly).
    faulty_rows: HashMap<usize, Vec<u32>>,
    /// Objects served by a dead crossbar (worn, dead line, or corrupted
    /// gather fabric) — their PIM read-outs are untrustworthy.
    dead_objects: Vec<bool>,
    /// ADC glitch retries spent probing this region's crossbars.
    retries: u64,
    /// Cells whose read-out differs from their programmed level.
    faulty_cells: u64,
}

/// Outcome of scrubbing one region against its fault map.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScrubReport {
    /// The scrubbed region.
    pub region: RegionId,
    /// Crossbars probed (the region's full allocation).
    pub crossbars_checked: usize,
    /// Cells whose read-out differs from their programmed level.
    pub faulty_cells: u64,
    /// ADC glitch retries spent during the probe.
    pub adc_retries: u64,
    /// Crossbars with no fault in their programmed area.
    pub healthy: usize,
    /// Crossbars corrupted by a bounded, known amount.
    pub drifted: usize,
    /// Crossbars that must be remapped or quarantined.
    pub dead: usize,
    /// Scrub latency in nanoseconds (one canary probe per crossbar plus
    /// glitch retries).
    pub scrub_ns: f64,
}

/// Outcome of remapping a region's dead crossbars onto spare capacity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RemapReport {
    /// The repaired region.
    pub region: RegionId,
    /// Dead crossbars successfully remapped onto spares.
    pub remapped_crossbars: usize,
    /// Objects still served by a dead crossbar afterwards (no clean spare
    /// left) — callers must route these through exact host evaluation.
    pub quarantined_objects: usize,
    /// Cell programming pulses spent reprogramming spares.
    pub cell_writes: u64,
    /// Reprogramming latency in nanoseconds.
    pub program_ns: f64,
}

/// The PIM array: a budget of `C` crossbars holding programmed regions.
#[derive(Debug, Clone)]
pub struct PimArray {
    cfg: PimConfig,
    energy_model: EnergyModel,
    regions: Vec<Region>,
    used_crossbars: usize,
    total_cell_writes: u64,
    energy: EnergyReport,
    faults: Option<FaultConfig>,
    /// Program cycles per physical crossbar (wear-out driver); persists
    /// across [`PimArray::clear`] like the cell-write counters.
    xb_programs: Vec<u32>,
    /// Fault survey per region, computed lazily / by scrubbing.
    fault_info: Vec<Option<RegionFaultInfo>>,
}

impl PimArray {
    /// A blank PIM array.
    pub fn new(cfg: PimConfig) -> Result<Self, ReRamError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            energy_model: EnergyModel::default(),
            regions: Vec::new(),
            used_crossbars: 0,
            total_cell_writes: 0,
            energy: EnergyReport::default(),
            faults: None,
            xb_programs: Vec::new(),
            fault_info: Vec::new(),
        })
    }

    /// Platform configuration.
    #[inline]
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// Crossbars currently allocated to regions.
    #[inline]
    pub fn used_crossbars(&self) -> usize {
        self.used_crossbars
    }

    /// Crossbars still available.
    #[inline]
    pub fn free_crossbars(&self) -> usize {
        self.cfg.num_crossbars - self.used_crossbars
    }

    /// Cumulative cell programming pulses (endurance metric).
    #[inline]
    pub fn total_cell_writes(&self) -> u64 {
        self.total_cell_writes
    }

    /// Accumulated energy report.
    #[inline]
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Programs a region of `n` vectors × `s` dimensions (`flat` row-major)
    /// with `operand_bits`-wide operands. Fails when values overflow the
    /// operand width or when the crossbar budget is exhausted.
    pub fn program_region(
        &mut self,
        flat: &[u32],
        n: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        self.program_region_with_capacity(flat, n, n, s, operand_bits)
    }

    /// Like [`PimArray::program_region`] but allocates crossbars for
    /// `capacity >= n` objects while programming only the first `n`. The
    /// spare rows cost crossbar budget up front but no programming pulses;
    /// [`PimArray::append_rows`] fills them online. This is what keeps a
    /// *resident* dataset mutable without a full re-program per insert.
    pub fn program_region_with_capacity(
        &mut self,
        flat: &[u32],
        n: usize,
        capacity: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        if n == 0 || s == 0 || flat.len() != n * s || capacity < n {
            return Err(ReRamError::InvalidConfig {
                what: "region shape does not match buffer",
            });
        }
        if operand_bits == 0 || operand_bits > 32 {
            return Err(ReRamError::InvalidConfig {
                what: "operand_bits must be in 1..=32",
            });
        }
        if let Some(&v) = flat
            .iter()
            .find(|&&v| operand_bits < 32 && u64::from(v) >= (1u64 << operand_bits))
        {
            return Err(ReRamError::OperandOverflow {
                value: u64::from(v),
                bits: operand_bits,
            });
        }
        let cost = dataset_crossbar_cost(capacity, s, operand_bits, &self.cfg.crossbar)?;
        if cost.total() > self.free_crossbars() {
            return Err(ReRamError::InsufficientCapacity {
                required: cost.total(),
                available: self.free_crossbars(),
            });
        }

        let w = self.cfg.crossbar.cells_per_operand(operand_bits) as u64;
        let cell_writes =
            (n as u64) * (s as u64) * w + cost.gather as u64 * self.cfg.crossbar.cells() as u64; // all-ones trees
                                                                                                 // Programming granularity: one program-and-verify pulse per stored
                                                                                                 // operand (its ⌈b/h⌉ cells share a word-line segment); all-ones
                                                                                                 // gather crossbars program row-parallel (uniform level, no
                                                                                                 // verify-per-value). This is what makes ReRAM pre-processing
                                                                                                 // slower than DRAM despite writing less data (Fig. 17).
        let rows_written =
            (n as u64) * (s as u64) + cost.gather as u64 * self.cfg.crossbar.size as u64;
        let program_ns = program_timing_ns(&self.cfg, rows_written);
        let mut energy = EnergyReport::default();
        energy.charge_writes(&self.energy_model, cell_writes, self.cfg.crossbar.cell_bits);
        self.energy.add(&energy);

        let region = RegionId(self.regions.len());
        let base_crossbar = self.used_crossbars;
        self.used_crossbars += cost.total();
        self.total_cell_writes += cell_writes;
        // One program cycle of wear on every crossbar of the allocation
        // (clear + reprogram reuses physical ids, so wear accumulates).
        if self.xb_programs.len() < self.used_crossbars {
            self.xb_programs.resize(self.used_crossbars, 0);
        }
        for p in &mut self.xb_programs[base_crossbar..self.used_crossbars] {
            *p += 1;
        }
        self.regions.push(Region {
            data: flat.to_vec(),
            n,
            capacity,
            s,
            operand_bits,
            cost,
            base_crossbar,
            remap: HashMap::new(),
            filling: false,
        });
        self.fault_info.push(None);
        Ok(ProgramReport {
            region,
            cost,
            cell_writes,
            rows_written,
            program_ns,
            energy_j: energy.total_j(),
        })
    }

    /// Allocates a region sized for `capacity` objects with **no** data
    /// rows programmed yet; the initial matrix arrives block-by-block via
    /// [`PimArray::fill_rows`] and is sealed by
    /// [`PimArray::finish_region`]. This is the streamed twin of
    /// [`PimArray::program_region_with_capacity`]: `begin` charges the
    /// gather-tree programming and one wear cycle on the *whole*
    /// allocation (exactly what one-shot programming charges up front),
    /// each fill charges only its rows' write pulses, and because the
    /// per-row latency/energy terms are linear in rows, a region filled in
    /// any number of blocks ends with cell-write, wear, latency, and
    /// energy totals identical to one-shot programming of the same matrix.
    pub fn begin_region_streamed(
        &mut self,
        capacity: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        if capacity == 0 || s == 0 {
            return Err(ReRamError::InvalidConfig {
                what: "streamed region must have non-zero capacity and s",
            });
        }
        if operand_bits == 0 || operand_bits > 32 {
            return Err(ReRamError::InvalidConfig {
                what: "operand_bits must be in 1..=32",
            });
        }
        let cost = dataset_crossbar_cost(capacity, s, operand_bits, &self.cfg.crossbar)?;
        if cost.total() > self.free_crossbars() {
            return Err(ReRamError::InsufficientCapacity {
                required: cost.total(),
                available: self.free_crossbars(),
            });
        }

        // The all-ones gather trees are programmed in full at begin; data
        // rows are charged as they stream in.
        let cell_writes = cost.gather as u64 * self.cfg.crossbar.cells() as u64;
        let rows_written = cost.gather as u64 * self.cfg.crossbar.size as u64;
        let program_ns = program_timing_ns(&self.cfg, rows_written);
        let mut energy = EnergyReport::default();
        energy.charge_writes(&self.energy_model, cell_writes, self.cfg.crossbar.cell_bits);
        self.energy.add(&energy);

        let region = RegionId(self.regions.len());
        let base_crossbar = self.used_crossbars;
        self.used_crossbars += cost.total();
        self.total_cell_writes += cell_writes;
        if self.xb_programs.len() < self.used_crossbars {
            self.xb_programs.resize(self.used_crossbars, 0);
        }
        for p in &mut self.xb_programs[base_crossbar..self.used_crossbars] {
            *p += 1;
        }
        self.regions.push(Region {
            data: Vec::new(),
            n: 0,
            capacity,
            s,
            operand_bits,
            cost,
            base_crossbar,
            remap: HashMap::new(),
            filling: true,
        });
        self.fault_info.push(None);
        Ok(ProgramReport {
            region,
            cost,
            cell_writes,
            rows_written,
            program_ns,
            energy_j: energy.total_j(),
        })
    }

    /// Streams one block of the initial matrix (`flat` row-major, `k × s`)
    /// into a region opened by [`PimArray::begin_region_streamed`]. Wear
    /// was charged for the whole allocation at `begin`; fills charge only
    /// the write pulses and energy of their own rows.
    pub fn fill_rows(
        &mut self,
        region: RegionId,
        flat: &[u32],
    ) -> Result<ProgramReport, ReRamError> {
        let ri = region.0;
        let reg = self.regions.get(ri).ok_or(ReRamError::NotProgrammed)?;
        if !reg.filling {
            return Err(ReRamError::InvalidConfig {
                what: "fill_rows requires a region opened by begin_region_streamed",
            });
        }
        let s = reg.s;
        let operand_bits = reg.operand_bits;
        if flat.is_empty() || !flat.len().is_multiple_of(s) {
            return Err(ReRamError::InvalidConfig {
                what: "filled buffer must be a non-empty multiple of s",
            });
        }
        let k = flat.len() / s;
        if k > reg.capacity - reg.n {
            return Err(ReRamError::InsufficientCapacity {
                required: k,
                available: reg.capacity - reg.n,
            });
        }
        if let Some(&v) = flat
            .iter()
            .find(|&&v| operand_bits < 32 && u64::from(v) >= (1u64 << operand_bits))
        {
            return Err(ReRamError::OperandOverflow {
                value: u64::from(v),
                bits: operand_bits,
            });
        }

        let w = self.cfg.crossbar.cells_per_operand(operand_bits) as u64;
        let cell_writes = (k as u64) * (s as u64) * w;
        let rows_written = (k as u64) * (s as u64);
        let program_ns = program_timing_ns(&self.cfg, rows_written);
        let mut energy = EnergyReport::default();
        energy.charge_writes(&self.energy_model, cell_writes, self.cfg.crossbar.cell_bits);
        self.energy.add(&energy);
        self.total_cell_writes += cell_writes;

        let reg = &mut self.regions[ri];
        reg.data.extend_from_slice(flat);
        reg.n += k;
        let cost = reg.cost;
        self.fault_info[ri] = None;
        Ok(ProgramReport {
            region,
            cost,
            cell_writes,
            rows_written,
            program_ns,
            energy_j: energy.total_j(),
        })
    }

    /// Seals a streamed region: queries, appends, and scrubs become legal.
    /// Rejects an empty region — a fully streamed fill must still deliver
    /// at least one row, matching one-shot programming's `n >= 1`.
    pub fn finish_region(&mut self, region: RegionId) -> Result<(), ReRamError> {
        let reg = self
            .regions
            .get_mut(region.0)
            .ok_or(ReRamError::NotProgrammed)?;
        if !reg.filling {
            return Err(ReRamError::InvalidConfig {
                what: "finish_region requires a region opened by begin_region_streamed",
            });
        }
        if reg.n == 0 {
            return Err(ReRamError::InvalidConfig {
                what: "streamed region sealed with zero rows",
            });
        }
        reg.filling = false;
        Ok(())
    }

    /// Number of programmed regions.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Layout of a programmed region.
    pub fn region_cost(&self, region: RegionId) -> Result<&CrossbarCost, ReRamError> {
        self.regions
            .get(region.0)
            .map(|r| &r.cost)
            .ok_or(ReRamError::NotProgrammed)
    }

    /// Shape of a programmed region: `(n, s, operand_bits)`.
    pub fn region_shape(&self, region: RegionId) -> Result<(usize, usize, u32), ReRamError> {
        self.regions
            .get(region.0)
            .map(|r| (r.n, r.s, r.operand_bits))
            .ok_or(ReRamError::NotProgrammed)
    }

    /// Objects the region's allocation can hold (`>= n`); the difference
    /// to [`PimArray::region_shape`]'s `n` is the remaining spare rows.
    pub fn region_capacity(&self, region: RegionId) -> Result<usize, ReRamError> {
        self.regions
            .get(region.0)
            .map(|r| r.capacity)
            .ok_or(ReRamError::NotProgrammed)
    }

    /// Programs `flat` (row-major, `k × s`) into a region's spare rows,
    /// extending it from `n` to `n + k` objects without touching the
    /// already-programmed matrix. Wears only the crossbars that physically
    /// hold the new rows. Fails with
    /// [`ReRamError::InsufficientCapacity`] (in spare *rows*) when the
    /// region was not allocated enough capacity, and invalidates the
    /// region's fault survey — the next scrub or faulty read re-surveys.
    pub fn append_rows(
        &mut self,
        region: RegionId,
        flat: &[u32],
    ) -> Result<ProgramReport, ReRamError> {
        let ri = region.0;
        let reg = self.regions.get(ri).ok_or(ReRamError::NotProgrammed)?;
        if reg.filling {
            return Err(ReRamError::InvalidConfig {
                what: "region is mid-fill; seal it with finish_region first",
            });
        }
        let s = reg.s;
        let operand_bits = reg.operand_bits;
        if flat.is_empty() || !flat.len().is_multiple_of(s) {
            return Err(ReRamError::InvalidConfig {
                what: "appended buffer must be a non-empty multiple of s",
            });
        }
        let k = flat.len() / s;
        let spare = reg.capacity - reg.n;
        if k > spare {
            return Err(ReRamError::InsufficientCapacity {
                required: k,
                available: spare,
            });
        }
        if let Some(&v) = flat
            .iter()
            .find(|&&v| operand_bits < 32 && u64::from(v) >= (1u64 << operand_bits))
        {
            return Err(ReRamError::OperandOverflow {
                value: u64::from(v),
                bits: operand_bits,
            });
        }

        // One program cycle of wear on each crossbar a new row lands on
        // (appends never rewrite programmed cells, so wear is confined to
        // the touched spare rows' crossbars).
        let m = self.cfg.crossbar.size;
        let w = self.cfg.crossbar.cells_per_operand(operand_bits);
        let mut touched: Vec<usize> = Vec::new();
        {
            let reg = &self.regions[ri];
            for obj in reg.n..reg.n + k {
                for dim in (0..s).step_by(m.max(1)) {
                    let (local, _, _) = Self::locate(reg, m, w, obj, dim);
                    touched.push(reg.phys(local));
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for phys in touched {
            if self.xb_programs.len() <= phys {
                self.xb_programs.resize(phys + 1, 0);
            }
            self.xb_programs[phys] += 1;
        }

        let cell_writes = (k as u64) * (s as u64) * w as u64;
        let rows_written = (k as u64) * (s as u64);
        let program_ns = program_timing_ns(&self.cfg, rows_written);
        let mut energy = EnergyReport::default();
        energy.charge_writes(&self.energy_model, cell_writes, self.cfg.crossbar.cell_bits);
        self.energy.add(&energy);
        self.total_cell_writes += cell_writes;

        let reg = &mut self.regions[ri];
        reg.data.extend_from_slice(flat);
        reg.n += k;
        let cost = reg.cost;
        // The survey's per-object tables are sized by `n`; recompute lazily.
        self.fault_info[ri] = None;
        Ok(ProgramReport {
            region,
            cost,
            cell_writes,
            rows_written,
            program_ns,
            energy_j: energy.total_j(),
        })
    }

    /// Executes one dot-product batch: multiplies every programmed vector of
    /// `region` with `query`, wrapping results at the accumulator width
    /// (the paper keeps the least-significant 64 bits — 32 for binary
    /// codes). Returns the per-object results and the PIM-side timing.
    ///
    /// Reading never wears cells; endurance counters are untouched.
    pub fn dot_batch(
        &mut self,
        region: RegionId,
        query: &[u32],
        acc: AccWidth,
    ) -> Result<(Vec<u64>, PimTiming), ReRamError> {
        if self
            .regions
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?
            .filling
        {
            return Err(ReRamError::InvalidConfig {
                what: "region is mid-fill; seal it with finish_region first",
            });
        }
        let faults_active = self.faults.is_some_and(|f| !f.is_inert());
        if faults_active {
            self.ensure_fault_info(region.0)?;
        }
        let reg = &self.regions[region.0];
        if query.len() != reg.s {
            return Err(ReRamError::GeometryViolation {
                what: "query dimensionality",
                got: query.len(),
                limit: reg.s,
            });
        }
        let input_bits = bits_needed_slice(query);

        // Functional result: exact integer dot product wrapped at the
        // accumulator width — bit-identical to the streamed bit-sliced
        // pipeline (wrapping commutes with shift-and-add; proven against
        // `Crossbar::dot_products` in tests).
        //
        // Objects are independent, so the batch fans out across the pool
        // in fixed `DOT_BATCH_CHUNK`-object chunks — the per-crossbar
        // concurrency the physical array has by construction. Chunk
        // results are stitched back in object order and `max_partial` is
        // an order-independent max, so the output is bit-identical to the
        // serial loop at any thread count.
        let m = self.cfg.crossbar.size;
        let s = reg.s;
        let data = &reg.data;
        let per_chunk = simpim_par::map_chunks(reg.n, DOT_BATCH_CHUNK, |objs| {
            let mut vals = Vec::with_capacity(objs.len());
            let mut chunk_max: u64 = 0;
            for row in data[objs.start * s..objs.end * s].chunks_exact(s) {
                let mut total: u128 = 0;
                for (chunk_q, chunk_v) in query.chunks(m).zip(row.chunks(m)) {
                    let partial: u128 = chunk_q
                        .iter()
                        .zip(chunk_v)
                        .map(|(&a, &b)| u128::from(a) * u128::from(b))
                        .sum();
                    chunk_max = chunk_max.max(partial.min(u128::from(u64::MAX)) as u64);
                    total = total.wrapping_add(partial);
                }
                vals.push(acc.wrap(total));
            }
            (vals, chunk_max)
        });
        let mut values = Vec::with_capacity(reg.n);
        let mut max_partial: u64 = 0;
        for (vals, chunk_max) in per_chunk {
            values.extend(vals);
            max_partial = max_partial.max(chunk_max);
        }

        // Read through the injected faults: corrupted objects return the
        // dot product of their *faulty* stored row (objects behind a
        // corrupted gather fabric read 0 — one consistent corruption).
        if faults_active {
            let info = self.fault_info[region.0]
                .as_ref()
                .expect("survey ensured above");
            for (obj, v) in values.iter_mut().enumerate() {
                if let Some(frow) = info.faulty_rows.get(&obj) {
                    let mut total: u128 = 0;
                    for (chunk_q, chunk_v) in query.chunks(m).zip(frow.chunks(m)) {
                        let partial: u128 = chunk_q
                            .iter()
                            .zip(chunk_v)
                            .map(|(&a, &b)| u128::from(a) * u128::from(b))
                            .sum();
                        total = total.wrapping_add(partial);
                    }
                    *v = acc.wrap(total);
                } else if info.dead_objects[obj] {
                    *v = 0;
                }
            }
        }

        let partial_bits = bits_needed(max_partial).min(acc.bits());
        let mut timing =
            dot_batch_timing(&self.cfg, &reg.cost, input_bits, partial_bits, reg.n, acc);
        if faults_active {
            // Every ADC glitch retry re-runs one streamed pass.
            let retries = self.fault_info[region.0]
                .as_ref()
                .expect("survey ensured above")
                .retries;
            timing.data_pass_ns += retries as f64
                * self.cfg.crossbar.input_cycles(input_bits) as f64
                * self.cfg.crossbar.read_ns;
        }

        // Compute energy: cycles × active crossbars.
        let cycles = self.cfg.crossbar.input_cycles(input_bits)
            * ((reg.cost.groups * reg.cost.chunks_per_object).div_ceil(reg.cost.data.max(1)))
                as u64;
        self.energy
            .charge_compute(&self.energy_model, cycles, reg.cost.total());
        self.energy
            .charge_bus(&self.energy_model, reg.n as u64 * acc.bytes());

        Ok((values, timing))
    }

    /// Strict-fidelity execution of one batch: materializes the region's
    /// layout on real [`Crossbar`](crate::crossbar::Crossbar)s — operand packing, vertical slot
    /// stacking, chunking across data crossbars, and all-ones gather
    /// trees — and runs the full bit-sliced analog pipeline end to end.
    ///
    /// This is the validation path behind [`PimArray::dot_batch`]'s fast
    /// path (the two are asserted bit-identical in tests and property
    /// tests); it is bounded to small geometries because it allocates
    /// `m²` cells per crossbar.
    pub fn dot_batch_strict(
        &self,
        region: RegionId,
        query: &[u32],
        acc: AccWidth,
    ) -> Result<Vec<u64>, ReRamError> {
        use crate::crossbar::Crossbar;

        let reg = self
            .regions
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?;
        if query.len() != reg.s {
            return Err(ReRamError::GeometryViolation {
                what: "query dimensionality",
                got: query.len(),
                limit: reg.s,
            });
        }
        let xb_cfg = self.cfg.crossbar;
        let m = xb_cfg.size;
        const STRICT_CELL_CAP: usize = 1 << 22;
        if reg.cost.total().saturating_mul(m * m) > STRICT_CELL_CAP {
            return Err(ReRamError::InvalidConfig {
                what: "strict mode is for small geometries (cell cap exceeded)",
            });
        }

        let b = reg.operand_bits;
        let w = xb_cfg.cells_per_operand(b);
        let g = reg.cost.group_size;
        let input_bits = bits_needed_slice(query);
        let q64: Vec<u64> = query.iter().map(|&v| u64::from(v)).collect();
        // Slice the query once per dispatch; every crossbar it streams to
        // (stacked slots, per-chunk data crossbars across all groups)
        // reuses the cached DAC slices.
        let sliced_q = crate::bitslice::SlicedQuery::new(&q64, input_bits, xb_cfg.dac_bits)?;
        let mut values = Vec::with_capacity(reg.n);

        if reg.s <= m {
            // Vertical slot stacking: each group occupies one slot of a
            // shared crossbar; one pass per slot drives only its rows.
            let slots = reg.cost.slots_per_crossbar;
            let n_groups = reg.n.div_ceil(g);
            let mut crossbars: Vec<Crossbar> = (0..reg.cost.data)
                .map(|_| Crossbar::new(xb_cfg))
                .collect::<Result<_, _>>()?;
            for gi in 0..n_groups {
                let xb = &mut crossbars[gi / slots];
                let start_row = (gi % slots) * reg.s;
                for j in 0..g {
                    let obj = gi * g + j;
                    if obj >= reg.n {
                        break;
                    }
                    let col: Vec<u64> = reg.data[obj * reg.s..(obj + 1) * reg.s]
                        .iter()
                        .map(|&v| u64::from(v))
                        .collect();
                    xb.program_operand_column(start_row, j * w, &col, b)?;
                }
            }
            for obj in 0..reg.n {
                let gi = obj / g;
                let xb = &crossbars[gi / slots];
                let start_row = (gi % slots) * reg.s;
                let outs = xb.dot_products_sliced(start_row, &sliced_q, b)?;
                values.push(acc.wrap(outs[obj % g]));
            }
        } else {
            // Chunked layout: per group, one data crossbar per chunk plus
            // a materialized all-ones gather tree reducing m partials per
            // level.
            let chunks = reg.cost.chunks_per_object;
            let n_groups = reg.n.div_ceil(g);
            // Per-chunk sub-queries sliced once, reused by every group.
            let sliced_chunks: Vec<crate::bitslice::SlicedQuery> = (0..q64.len())
                .step_by(m)
                .map(|start| sliced_q.slice_range(start..(start + m).min(q64.len())))
                .collect();
            let mut gather = Crossbar::new(xb_cfg)?;
            gather.program_all_ones()?;
            for gi in 0..n_groups {
                // Program this group's data crossbars.
                let mut data_xbs: Vec<Crossbar> = (0..chunks)
                    .map(|_| Crossbar::new(xb_cfg))
                    .collect::<Result<_, _>>()?;
                for j in 0..g {
                    let obj = gi * g + j;
                    if obj >= reg.n {
                        break;
                    }
                    let row = &reg.data[obj * reg.s..(obj + 1) * reg.s];
                    for (c, chunk) in row.chunks(m).enumerate() {
                        let col: Vec<u64> = chunk.iter().map(|&v| u64::from(v)).collect();
                        data_xbs[c].program_operand_column(0, j * w, &col, b)?;
                    }
                }
                // One streamed pass per chunk, then tree reduction per
                // object through the all-ones gather crossbar.
                let per_chunk: Vec<Vec<u128>> = sliced_chunks
                    .iter()
                    .zip(&data_xbs)
                    .map(|(cq, xb)| xb.dot_products_sliced(0, cq, b))
                    .collect::<Result<_, _>>()?;
                for j in 0..g {
                    let obj = gi * g + j;
                    if obj >= reg.n {
                        break;
                    }
                    // Operand column j·w carries operand index j.
                    let mut layer: Vec<u128> = per_chunk.iter().map(|outs| outs[j]).collect();
                    while layer.len() > 1 {
                        let mut next = Vec::with_capacity(layer.len().div_ceil(m));
                        for grp in layer.chunks(m) {
                            let partials: Vec<u64> = grp.iter().map(|&p| acc.wrap(p)).collect();
                            let pbits = partials.iter().map(|&p| bits_needed(p)).max().unwrap_or(1);
                            let out = gather.dot_products(0, &partials, pbits, 1)?;
                            next.push(out[0]);
                        }
                        layer = next;
                    }
                    values.push(acc.wrap(layer[0]));
                }
            }
        }
        Ok(values)
    }

    /// Clears all regions (re-programming an array is allowed but wears the
    /// device — the endurance counters and per-crossbar program counts
    /// persist across [`PimArray::clear`]).
    pub fn clear(&mut self) {
        self.regions.clear();
        self.fault_info.clear();
        self.used_crossbars = 0;
    }

    /// Attaches a deterministic fault model. Existing surveys are
    /// invalidated; subsequent [`PimArray::dot_batch`] calls read through
    /// the injected faults and [`PimArray::scrub_region`] becomes
    /// available.
    pub fn enable_faults(&mut self, faults: FaultConfig) -> Result<(), ReRamError> {
        faults.validate()?;
        self.faults = Some(faults);
        for info in &mut self.fault_info {
            *info = None;
        }
        Ok(())
    }

    /// The attached fault model, if any.
    #[inline]
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref()
    }

    /// Program cycles a physical crossbar has received (wear metric).
    pub fn crossbar_programs(&self, crossbar: usize) -> u32 {
        self.xb_programs.get(crossbar).copied().unwrap_or(0)
    }

    /// Adds `extra` program cycles of wear to every currently programmed
    /// crossbar, modeling prior write history (a burned-in device) for
    /// endurance studies. Spare (never-programmed) crossbars stay fresh.
    /// Takes effect at the next scrub: crossbars pushed past the fault
    /// model's `endurance_limit` are classified dead.
    pub fn age_crossbars(&mut self, extra: u32) {
        for p in &mut self.xb_programs {
            *p = p.saturating_add(extra);
        }
    }

    /// Local crossbar index, row and first bitline holding dimension
    /// `dim` of object `obj` (mirrors the strict-mode layout).
    fn locate(reg: &Region, m: usize, w: usize, obj: usize, dim: usize) -> (usize, usize, usize) {
        let g = reg.cost.group_size;
        let gi = obj / g;
        let col = (obj % g) * w;
        if reg.s <= m {
            let local = gi / reg.cost.slots_per_crossbar;
            let row = (gi % reg.cost.slots_per_crossbar) * reg.s + dim;
            (local, row, col)
        } else {
            let local = gi * reg.cost.chunks_per_object + dim / m;
            (local, dim % m, col)
        }
    }

    /// Surveys one region against the attached fault map: classifies every
    /// crossbar, computes per-object deviations and emulated faulty
    /// read-outs, and walks each crossbar's ADC glitch-retry chain.
    fn survey_region(&self, ri: usize) -> Result<RegionFaultInfo, ReRamError> {
        let faults = self.faults.ok_or(ReRamError::FaultsNotEnabled)?;
        let reg = &self.regions[ri];
        let xb_cfg = &self.cfg.crossbar;
        let m = xb_cfg.size;
        let h = xb_cfg.cell_bits;
        let w = xb_cfg.cells_per_operand(reg.operand_bits);
        let max_level = ((1u16 << h) - 1) as u8;
        let total = reg.cost.total();

        let mut health = vec![CrossbarHealth::Healthy; total];
        let mut faulty_cells = 0u64;
        let mut retries = 0u64;

        // Wear-out and the ADC retry chain, per physical crossbar.
        for (local, hl) in health.iter_mut().enumerate() {
            let phys = reg.phys(local);
            if faults.worn_out(self.crossbar_programs(phys)) {
                *hl = CrossbarHealth::Dead;
            }
            retries += u64::from(faults.glitch_retries(phys)?);
        }

        // Gather crossbars: the all-ones reduction fabric sums partials,
        // so any corrupted site there poisons whole groups by amounts no
        // per-cell bound covers — classify Dead.
        let mut gather_dead_group = vec![false; reg.cost.groups];
        if reg.cost.gather > 0 {
            let per_group = reg.cost.gather / reg.cost.groups;
            for local in reg.cost.data..total {
                let phys = reg.phys(local);
                let mut bad = health[local] == CrossbarHealth::Dead || faults.dead_bitline(phys, 0);
                if !bad {
                    for row in 0..m {
                        if faults.dead_wordline(phys, row) {
                            bad = true;
                            break;
                        }
                        match faults.cell_fault(phys, row, 0) {
                            CellFault::None => {}
                            CellFault::StuckLow => {
                                faulty_cells += 1;
                                bad = true;
                                break;
                            }
                            // An all-ones cell stuck at the maximum level
                            // is harmless only for single-bit cells.
                            CellFault::StuckHigh => {
                                if max_level != 1 {
                                    faulty_cells += 1;
                                    bad = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                if bad {
                    health[local] = CrossbarHealth::Dead;
                    gather_dead_group[(local - reg.cost.data) / per_group] = true;
                }
            }
        }

        // Data crossbars: walk every stored operand cell. Stuck cells give
        // a bounded, known deviation (Drifted); dead lines and wear
        // corrupt whole rows/slices (Dead).
        let mut discrepancy = vec![0u64; reg.n];
        let mut faulty_rows: HashMap<usize, Vec<u32>> = HashMap::new();
        let mut dead_objects = vec![false; reg.n];
        let level_mask = u32::from(max_level);
        for obj in 0..reg.n {
            let mut dev = 0u64;
            let mut frow: Vec<u32> = Vec::new();
            let mut on_dead = gather_dead_group
                .get(obj / reg.cost.group_size)
                .copied()
                .unwrap_or(false);
            for dim in 0..reg.s {
                let (local, row, col0) = Self::locate(reg, m, w, obj, dim);
                let phys = reg.phys(local);
                let v = reg.data[obj * reg.s + dim];
                let worn = faults.worn_out(self.crossbar_programs(phys));
                let v_eff = if worn || faults.dead_wordline(phys, row) {
                    if v != 0 {
                        faulty_cells += bits_needed(u64::from(v)).div_ceil(h) as u64;
                    }
                    health[local] = CrossbarHealth::Dead;
                    0
                } else {
                    let mut rebuilt = 0u32;
                    for j in 0..w {
                        let programmed = (v >> (j as u32 * h)) & level_mask;
                        let eff = if faults.dead_bitline(phys, col0 + j) {
                            if programmed != 0 {
                                faulty_cells += 1;
                            }
                            health[local] = CrossbarHealth::Dead;
                            0
                        } else {
                            match faults.cell_fault(phys, row, col0 + j) {
                                CellFault::None => programmed,
                                CellFault::StuckLow => {
                                    if programmed != 0 {
                                        faulty_cells += 1;
                                        if health[local] == CrossbarHealth::Healthy {
                                            health[local] = CrossbarHealth::Drifted;
                                        }
                                    }
                                    0
                                }
                                CellFault::StuckHigh => {
                                    if programmed != u32::from(max_level) {
                                        faulty_cells += 1;
                                        if health[local] == CrossbarHealth::Healthy {
                                            health[local] = CrossbarHealth::Drifted;
                                        }
                                    }
                                    u32::from(max_level)
                                }
                            }
                        };
                        rebuilt |= eff << (j as u32 * h);
                    }
                    rebuilt
                };
                if health[local] == CrossbarHealth::Dead {
                    on_dead = true;
                }
                dev += u64::from(v.abs_diff(v_eff));
                frow.push(v_eff);
            }
            discrepancy[obj] = dev;
            dead_objects[obj] = on_dead;
            if dev > 0 {
                faulty_rows.insert(obj, frow);
            }
        }

        Ok(RegionFaultInfo {
            health,
            discrepancy,
            faulty_rows,
            dead_objects,
            retries,
            faulty_cells,
        })
    }

    /// Makes sure the region's fault survey exists (lazily computed the
    /// first time faults must be applied).
    fn ensure_fault_info(&mut self, ri: usize) -> Result<(), ReRamError> {
        if self.fault_info[ri].is_none() {
            self.fault_info[ri] = Some(self.survey_region(ri)?);
        }
        Ok(())
    }

    /// Scrubs one region: probes every crossbar of its allocation against
    /// canary expectations derived from the retained operand matrix,
    /// classifies each crossbar healthy / drifted / dead, and refreshes
    /// the emulation state [`PimArray::dot_batch`] reads through.
    ///
    /// Fails with [`ReRamError::FaultsNotEnabled`] when no fault model is
    /// attached and with [`ReRamError::AdcRetryExhausted`] when a
    /// crossbar's ADC never reads clean within the retry budget.
    pub fn scrub_region(&mut self, region: RegionId) -> Result<ScrubReport, ReRamError> {
        let ri = region.0;
        if ri >= self.regions.len() {
            return Err(ReRamError::NotProgrammed);
        }
        let info = self.survey_region(ri)?;
        let (mut healthy, mut drifted, mut dead) = (0usize, 0usize, 0usize);
        for h in &info.health {
            match h {
                CrossbarHealth::Healthy => healthy += 1,
                CrossbarHealth::Drifted => drifted += 1,
                CrossbarHealth::Dead => dead += 1,
            }
        }
        let checked = info.health.len();
        // One canary probe cycle per crossbar, plus the glitch retries.
        let scrub_ns = (checked as u64 + info.retries) as f64 * self.cfg.crossbar.read_ns;
        self.energy.charge_compute(&self.energy_model, 1, checked);
        let report = ScrubReport {
            region,
            crossbars_checked: checked,
            faulty_cells: info.faulty_cells,
            adc_retries: info.retries,
            healthy,
            drifted,
            dead,
            scrub_ns,
        };
        self.fault_info[ri] = Some(info);
        Ok(report)
    }

    /// Remaps the region's dead crossbars onto spare capacity: each dead
    /// crossbar's operand segment is reprogrammed onto a fresh physical
    /// crossbar drawn from the free budget (spares that are themselves
    /// faulty are fused off and skipped). Objects whose dead crossbars
    /// could not be remapped remain quarantined — callers must route them
    /// through exact host-side evaluation.
    ///
    /// Requires a prior [`PimArray::scrub_region`] (the survey tells which
    /// crossbars are dead).
    pub fn remap_dead(&mut self, region: RegionId) -> Result<RemapReport, ReRamError> {
        let ri = region.0;
        if ri >= self.regions.len() {
            return Err(ReRamError::NotProgrammed);
        }
        let faults = self.faults.ok_or(ReRamError::FaultsNotEnabled)?;
        let dead_locals: Vec<usize> = {
            let info = self.fault_info[ri]
                .as_ref()
                .ok_or(ReRamError::NotScrubbed)?;
            info.health
                .iter()
                .enumerate()
                .filter(|(_, h)| **h == CrossbarHealth::Dead)
                .map(|(l, _)| l)
                .collect()
        };
        let m = self.cfg.crossbar.size;
        let mut remapped = 0usize;
        let mut cell_writes = 0u64;
        let mut rows_written = 0u64;
        for local in dead_locals {
            // Draw spares until one is clean; faulty spares are consumed
            // (fused off) like factory-mapped bad blocks.
            let mut found = None;
            while self.used_crossbars < self.cfg.num_crossbars {
                let phys = self.used_crossbars;
                self.used_crossbars += 1;
                if self.xb_programs.len() < self.used_crossbars {
                    self.xb_programs.resize(self.used_crossbars, 0);
                }
                let clean = !faults.worn_out(self.xb_programs[phys] + 1)
                    && (0..m).all(|r| !faults.dead_wordline(phys, r))
                    && (0..m).all(|c| !faults.dead_bitline(phys, c))
                    && (0..m)
                        .all(|r| (0..m).all(|c| faults.cell_fault(phys, r, c) == CellFault::None));
                if clean {
                    found = Some(phys);
                    break;
                }
            }
            let Some(phys) = found else { break };
            self.xb_programs[phys] += 1;
            self.regions[ri].remap.insert(local, phys);
            remapped += 1;
            // Reprogramming one crossbar: m rows, up to m² cells.
            cell_writes += self.cfg.crossbar.cells() as u64;
            rows_written += m as u64;
        }
        let program_ns = program_timing_ns(&self.cfg, rows_written);
        if cell_writes > 0 {
            let mut energy = EnergyReport::default();
            energy.charge_writes(&self.energy_model, cell_writes, self.cfg.crossbar.cell_bits);
            self.energy.add(&energy);
            self.total_cell_writes += cell_writes;
        }
        // Refresh the survey: remapped crossbars come back clean; whatever
        // is still dead stays quarantined.
        let info = self.survey_region(ri)?;
        let quarantined_objects = info.dead_objects.iter().filter(|d| **d).count();
        self.fault_info[ri] = Some(info);
        Ok(RemapReport {
            region,
            remapped_crossbars: remapped,
            quarantined_objects,
            cell_writes,
            program_ns,
        })
    }

    /// Health of every crossbar in the region's allocation (data crossbars
    /// first, then gather). Requires a prior scrub.
    pub fn region_health(&self, region: RegionId) -> Result<Vec<CrossbarHealth>, ReRamError> {
        if self.faults.is_none() {
            return Err(ReRamError::FaultsNotEnabled);
        }
        let info = self
            .fault_info
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?
            .as_ref()
            .ok_or(ReRamError::NotScrubbed)?;
        Ok(info.health.clone())
    }

    /// Worst-case health of the crossbars serving one object. Requires a
    /// prior scrub.
    pub fn object_health(
        &self,
        region: RegionId,
        obj: usize,
    ) -> Result<CrossbarHealth, ReRamError> {
        if self.faults.is_none() {
            return Err(ReRamError::FaultsNotEnabled);
        }
        let info = self
            .fault_info
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?
            .as_ref()
            .ok_or(ReRamError::NotScrubbed)?;
        if obj >= info.dead_objects.len() {
            return Err(ReRamError::GeometryViolation {
                what: "object index",
                got: obj,
                limit: info.dead_objects.len(),
            });
        }
        Ok(if info.dead_objects[obj] {
            CrossbarHealth::Dead
        } else if info.discrepancy[obj] > 0 {
            CrossbarHealth::Drifted
        } else {
            CrossbarHealth::Healthy
        })
    }

    /// Worst-case stored deviation `Σ_dims |v_faulty − v_true|` of one
    /// object; the PIM dot product deviates from the exact one by at most
    /// `max_query_level · discrepancy`. Requires a prior scrub.
    pub fn object_discrepancy(&self, region: RegionId, obj: usize) -> Result<u64, ReRamError> {
        if self.faults.is_none() {
            return Err(ReRamError::FaultsNotEnabled);
        }
        let info = self
            .fault_info
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?
            .as_ref()
            .ok_or(ReRamError::NotScrubbed)?;
        info.discrepancy
            .get(obj)
            .copied()
            .ok_or(ReRamError::GeometryViolation {
                what: "object index",
                got: obj,
                limit: info.discrepancy.len(),
            })
    }

    /// The true (fault-free) stored operand row of one object — what exact
    /// host-side fallback evaluation reads from the memory array.
    pub fn region_row(&self, region: RegionId, obj: usize) -> Result<&[u32], ReRamError> {
        let reg = self
            .regions
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?;
        if obj >= reg.n {
            return Err(ReRamError::GeometryViolation {
                what: "object index",
                got: obj,
                limit: reg.n,
            });
        }
        Ok(&reg.data[obj * reg.s..(obj + 1) * reg.s])
    }
}

/// The buffer array (eDRAM) caching PIM results so the CPU can drain them
/// without stalling the PIM array.
#[derive(Debug, Clone)]
pub struct BufferArray {
    capacity: u64,
    high_water: u64,
}

impl BufferArray {
    /// A buffer of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            high_water: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Records a result batch passing through; returns the number of waves
    /// the batch needed.
    pub fn stage(&mut self, bytes: u64) -> u64 {
        self.high_water = self.high_water.max(bytes.min(self.capacity));
        bytes.div_ceil(self.capacity.max(1)).max(1)
    }

    /// Highest single-wave occupancy seen.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }
}

/// The memory array: plain ReRAM storage for the original dataset and the
/// pre-computed Φ values. Occupancy-tracked; access timing is charged by
/// the host cost model in `simpim-simkit`.
#[derive(Debug, Clone)]
pub struct MemoryArray {
    capacity: u64,
    used: u64,
}

impl MemoryArray {
    /// A memory array of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0 }
    }

    /// Reserves `bytes` of storage.
    pub fn store(&mut self, bytes: u64) -> Result<(), ReRamError> {
        if self.used + bytes > self.capacity {
            return Err(ReRamError::InsufficientCapacity {
                required: (self.used + bytes) as usize,
                available: self.capacity as usize,
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Bytes currently stored.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining capacity in bytes.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Releases `bytes` (saturating).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrossbarConfig;
    use crate::crossbar::{exact_dot, Crossbar};

    fn small_cfg() -> PimConfig {
        PimConfig {
            crossbar: CrossbarConfig {
                size: 8,
                cell_bits: 2,
                dac_bits: 2,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 64,
            ..Default::default()
        }
    }

    #[test]
    fn capacity_region_appends_rows_online() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        // 2 programmed objects, room for 4 more, s = 3.
        let rep = pim
            .program_region_with_capacity(&[1, 2, 3, 4, 5, 6], 2, 6, 3, 4)
            .unwrap();
        assert_eq!(pim.region_shape(rep.region).unwrap().0, 2);
        assert_eq!(pim.region_capacity(rep.region).unwrap(), 6);
        let writes_before = pim.total_cell_writes();

        let app = pim.append_rows(rep.region, &[7, 8, 9]).unwrap();
        assert_eq!(app.rows_written, 3);
        assert!(pim.total_cell_writes() > writes_before);
        assert_eq!(pim.region_shape(rep.region).unwrap().0, 3);
        let (values, _) = pim
            .dot_batch(rep.region, &[1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(values, vec![6, 15, 24]);
        assert_eq!(pim.region_row(rep.region, 2).unwrap(), &[7, 8, 9]);

        // Remaining spare is 3 rows: a 4-row append must be rejected
        // without mutating anything.
        assert!(matches!(
            pim.append_rows(rep.region, &[1; 12]),
            Err(ReRamError::InsufficientCapacity {
                required: 4,
                available: 3
            })
        ));
        // Operand overflow (4-bit operands) is caught before any write.
        assert!(matches!(
            pim.append_rows(rep.region, &[16, 0, 0]),
            Err(ReRamError::OperandOverflow { .. })
        ));
        assert_eq!(pim.region_shape(rep.region).unwrap().0, 3);

        // Fill to capacity, then the region is full.
        pim.append_rows(rep.region, &[1, 0, 0, 0, 1, 0, 0, 0, 1])
            .unwrap();
        assert!(pim.append_rows(rep.region, &[1, 1, 1]).is_err());
        let (values, _) = pim
            .dot_batch(rep.region, &[2, 3, 4], AccWidth::U64)
            .unwrap();
        assert_eq!(values.len(), 6);
        assert_eq!(&values[3..], &[2, 3, 4]);
    }

    #[test]
    fn append_wears_only_touched_crossbars() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        // s = 8 = m, 4-bit operands → group_size = ⌊8·2/4⌋ = 4 objects per
        // crossbar; capacity 8 = 2 data crossbars.
        let flat: Vec<u32> = (0..8).collect();
        let rep = pim.program_region_with_capacity(&flat, 1, 8, 8, 4).unwrap();
        let base = rep.cost;
        assert!(base.total() >= 2);
        let p0 = pim.crossbar_programs(0);
        let p1 = pim.crossbar_programs(1);
        // Objects 1..3 land in crossbar 0's remaining slots.
        pim.append_rows(rep.region, &flat).unwrap();
        assert_eq!(pim.crossbar_programs(0), p0 + 1);
        assert_eq!(pim.crossbar_programs(1), p1);
        // Objects 2 and 3 stay in crossbar 0; object 4 opens the second
        // group → crossbar 1 takes its first append wear.
        pim.append_rows(rep.region, &flat).unwrap();
        pim.append_rows(rep.region, &flat).unwrap();
        pim.append_rows(rep.region, &flat).unwrap();
        assert_eq!(pim.crossbar_programs(0), p0 + 3);
        assert_eq!(pim.crossbar_programs(1), p1 + 1);
    }

    #[test]
    fn appended_rows_survive_fault_survey() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim
            .program_region_with_capacity(&[1, 2, 3, 4, 5, 6], 2, 4, 3, 4)
            .unwrap();
        pim.enable_faults(FaultConfig::default()).unwrap();
        pim.scrub_region(rep.region).unwrap();
        assert_eq!(
            pim.object_health(rep.region, 1).unwrap(),
            CrossbarHealth::Healthy
        );
        // Appending invalidates the survey; health queries demand a fresh
        // scrub, and the new object is then covered.
        pim.append_rows(rep.region, &[7, 8, 9]).unwrap();
        assert!(matches!(
            pim.object_health(rep.region, 2),
            Err(ReRamError::NotScrubbed)
        ));
        pim.scrub_region(rep.region).unwrap();
        assert_eq!(
            pim.object_health(rep.region, 2).unwrap(),
            CrossbarHealth::Healthy
        );
    }

    #[test]
    fn program_and_query_round_trip() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8]; // 2 vectors × 4 dims
        let rep = pim.program_region(&data, 2, 4, 4).unwrap();
        assert!(rep.cell_writes > 0);
        assert!(rep.program_ns > 0.0);
        let (vals, t) = pim
            .dot_batch(rep.region, &[1, 1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(vals, vec![10, 26]);
        assert!(t.total_ns() > 0.0);
    }

    #[test]
    fn array_matches_unit_level_crossbar_small_s() {
        // Cross-validate the fast path against the fully materialized
        // bit-sliced pipeline on a config where one crossbar suffices.
        let cfg = small_cfg();
        let (n, s, b) = (2usize, 4usize, 6u32);
        let data: Vec<u32> = vec![25, 14, 63, 0, 9, 20, 1, 33];
        let query: Vec<u32> = vec![9, 20, 7, 63];

        let mut pim = PimArray::new(cfg).unwrap();
        let rep = pim.program_region(&data, n, s, b).unwrap();
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();

        let mut xb = Crossbar::new(cfg.crossbar).unwrap();
        let w = cfg.crossbar.cells_per_operand(b);
        for (obj, row) in data.chunks_exact(s).enumerate() {
            let col: Vec<u64> = row.iter().map(|&v| u64::from(v)).collect();
            xb.program_operand_column(0, obj * w, &col, b).unwrap();
        }
        let q64: Vec<u64> = query.iter().map(|&v| u64::from(v)).collect();
        let slow = xb.dot_products(0, &q64, 6, b).unwrap();
        for i in 0..n {
            assert_eq!(fast[i], AccWidth::U64.wrap(slow[i]));
            assert_eq!(
                u128::from(fast[i]),
                exact_dot(
                    &q64,
                    &data[i * s..(i + 1) * s]
                        .iter()
                        .map(|&v| u64::from(v))
                        .collect::<Vec<_>>()
                )
            );
        }
    }

    #[test]
    fn array_matches_unit_level_with_gather_tree() {
        // s = 16 > m = 8: two chunks per object, reduced through the tree.
        let cfg = small_cfg();
        let s = 16usize;
        let data: Vec<u32> = (0..s as u32).map(|i| (i * 7 + 3) % 16).collect();
        let query: Vec<u32> = (0..s as u32).map(|i| (i * 5 + 1) % 16).collect();

        let mut pim = PimArray::new(cfg).unwrap();
        let rep = pim.program_region(&data, 1, s, 4).unwrap();
        assert_eq!(rep.cost.chunks_per_object, 2);
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();

        // Unit-level: two data crossbars + tree reduction of the partials.
        let m = cfg.crossbar.size;
        let mut partials = Vec::new();
        for (cq, cv) in query.chunks(m).zip(data.chunks(m)) {
            let mut xb = Crossbar::new(cfg.crossbar).unwrap();
            let col: Vec<u64> = cv.iter().map(|&v| u64::from(v)).collect();
            xb.program_operand_column(0, 0, &col, 4).unwrap();
            let q64: Vec<u64> = cq.iter().map(|&v| u64::from(v)).collect();
            partials.push(xb.dot_products(0, &q64, 4, 4).unwrap()[0]);
        }
        let reduced = crate::gather::reduce_through_tree(&partials, m);
        assert_eq!(fast[0], AccWidth::U64.wrap(reduced));
    }

    #[test]
    fn streamed_fill_matches_one_shot_on_every_counter() {
        // One-shot: program 6 objects × 4 dims with 2 spare rows.
        let flat: Vec<u32> = (0..24).map(|v| v % 13).collect();
        let mut one = PimArray::new(small_cfg()).unwrap();
        let rep_one = one.program_region_with_capacity(&flat, 6, 8, 4, 4).unwrap();

        // Streamed: same matrix in blocks of 1, 2, 3 rows.
        let mut streamed = PimArray::new(small_cfg()).unwrap();
        let rep_begin = streamed.begin_region_streamed(8, 4, 4).unwrap();
        let region = rep_begin.region;
        let mut totals = (
            rep_begin.cell_writes,
            rep_begin.rows_written,
            rep_begin.program_ns,
            rep_begin.energy_j,
        );
        let mut off = 0;
        for k in [1usize, 2, 3] {
            let rep = streamed
                .fill_rows(region, &flat[off * 4..(off + k) * 4])
                .unwrap();
            totals.0 += rep.cell_writes;
            totals.1 += rep.rows_written;
            totals.2 += rep.program_ns;
            totals.3 += rep.energy_j;
            off += k;
        }
        // Mid-fill the region rejects queries and appends.
        assert!(matches!(
            streamed.dot_batch(region, &[1, 1, 1, 1], AccWidth::U64),
            Err(ReRamError::InvalidConfig { .. })
        ));
        assert!(matches!(
            streamed.append_rows(region, &[1, 1, 1, 1]),
            Err(ReRamError::InvalidConfig { .. })
        ));
        streamed.finish_region(region).unwrap();
        assert!(matches!(
            streamed.finish_region(region),
            Err(ReRamError::InvalidConfig { .. })
        ));

        // Split programming must sum to the one-shot totals exactly.
        assert_eq!(totals.0, rep_one.cell_writes);
        assert_eq!(totals.1, rep_one.rows_written);
        assert!((totals.2 - rep_one.program_ns).abs() < 1e-9);
        assert!((totals.3 - rep_one.energy_j).abs() < 1e-15);
        assert_eq!(rep_begin.cost, rep_one.cost);
        assert_eq!(streamed.used_crossbars(), one.used_crossbars());
        assert_eq!(streamed.total_cell_writes(), one.total_cell_writes());
        // Wear parity per physical crossbar.
        for xb in 0..one.used_crossbars() {
            assert_eq!(streamed.crossbar_programs(xb), one.crossbar_programs(xb));
        }
        // Functional parity: identical stored matrix, spare rows, results.
        assert_eq!(streamed.region_shape(region).unwrap(), (6, 4, 4));
        assert_eq!(streamed.region_capacity(region).unwrap(), 8);
        let q = [1u32, 2, 3, 1];
        let (a, _) = one.dot_batch(rep_one.region, &q, AccWidth::U64).unwrap();
        let (b, _) = streamed.dot_batch(region, &q, AccWidth::U64).unwrap();
        assert_eq!(a, b);
        // Appends still work after sealing.
        streamed.append_rows(region, &[1, 1, 1, 1]).unwrap();
        assert_eq!(streamed.region_shape(region).unwrap().0, 7);
    }

    #[test]
    fn streamed_fill_rejects_misuse() {
        let mut arr = PimArray::new(small_cfg()).unwrap();
        // Zero capacity rejected.
        assert!(arr.begin_region_streamed(0, 4, 4).is_err());
        let region = arr.begin_region_streamed(4, 4, 4).unwrap().region;
        // Overfill rejected.
        assert!(matches!(
            arr.fill_rows(region, &[1u32; 5 * 4]),
            Err(ReRamError::InsufficientCapacity { .. })
        ));
        // Sealing an empty region rejected.
        assert!(arr.finish_region(region).is_err());
        arr.fill_rows(region, &[1, 2, 3, 4]).unwrap();
        arr.finish_region(region).unwrap();
        // fill after seal rejected.
        assert!(arr.fill_rows(region, &[1, 2, 3, 4]).is_err());
        // Ordinary regions reject fill/finish.
        let plain = arr.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap().region;
        assert!(arr.fill_rows(plain, &[1, 2, 3, 4]).is_err());
        assert!(arr.finish_region(plain).is_err());
    }

    #[test]
    fn capacity_exhaustion_is_detected() {
        let mut cfg = small_cfg();
        cfg.num_crossbars = 1;
        let mut pim = PimArray::new(cfg).unwrap();
        // 64 objects × 8 dims with 4-bit operands: group = 8·2/4 = 4
        // objects → 16 groups, 1 slot → 16 crossbars > 1.
        let data = vec![1u32; 64 * 8];
        assert!(matches!(
            pim.program_region(&data, 64, 8, 4),
            Err(ReRamError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn operand_overflow_rejected() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        assert!(matches!(
            pim.program_region(&[16, 1], 1, 2, 4),
            Err(ReRamError::OperandOverflow { .. })
        ));
        assert!(pim.program_region(&[1, 2], 1, 2, 0).is_err());
        assert!(pim.program_region(&[1, 2], 1, 3, 4).is_err()); // ragged
    }

    #[test]
    fn multiple_regions_share_budget() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let r1 = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        let r2 = pim.program_region(&[5, 6, 7, 8], 1, 4, 4).unwrap();
        assert_ne!(r1.region, r2.region);
        assert_eq!(pim.num_regions(), 2);
        assert_eq!(pim.region_shape(r1.region).unwrap(), (1, 4, 4));
        assert!(pim.region_shape(RegionId(9)).is_err());
        assert_eq!(pim.used_crossbars(), r1.cost.total() + r2.cost.total());
        let (v1, _) = pim
            .dot_batch(r1.region, &[1, 0, 0, 0], AccWidth::U64)
            .unwrap();
        let (v2, _) = pim
            .dot_batch(r2.region, &[1, 0, 0, 0], AccWidth::U64)
            .unwrap();
        assert_eq!(v1, vec![1]);
        assert_eq!(v2, vec![5]);
    }

    #[test]
    fn queries_do_not_wear_cells() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        let writes_after_program = pim.total_cell_writes();
        for _ in 0..100 {
            pim.dot_batch(rep.region, &[3, 3, 3, 3], AccWidth::U64)
                .unwrap();
        }
        assert_eq!(pim.total_cell_writes(), writes_after_program);
    }

    #[test]
    fn clear_frees_budget_but_keeps_wear() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        let wear = pim.total_cell_writes();
        pim.clear();
        assert_eq!(pim.used_crossbars(), 0);
        assert_eq!(pim.total_cell_writes(), wear);
        assert!(pim
            .dot_batch(RegionId(0), &[1, 1, 1, 1], AccWidth::U64)
            .is_err());
    }

    #[test]
    fn u32_accumulator_wraps() {
        let mut pim = PimArray::new(PimConfig::default()).unwrap();
        // 2^16 · 2^16 = 2^32 ≡ 0 (mod 2^32).
        let rep = pim.program_region(&[1 << 16], 1, 1, 17).unwrap();
        let (v32, _) = pim
            .dot_batch(rep.region, &[1 << 16], AccWidth::U32)
            .unwrap();
        assert_eq!(v32, vec![0]);
        let (v64, _) = pim
            .dot_batch(rep.region, &[1 << 16], AccWidth::U64)
            .unwrap();
        assert_eq!(v64, vec![1 << 32]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        assert!(pim.dot_batch(rep.region, &[1, 2], AccWidth::U64).is_err());
    }

    #[test]
    fn strict_mode_matches_fast_path_with_slots() {
        // s = 4 on m = 8 → 2 slots stacked; 5 objects over 2 groups.
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = (0..20).map(|i| (i * 7 + 3) % 16).collect();
        let rep = pim.program_region(&data, 5, 4, 4).unwrap();
        assert_eq!(rep.cost.slots_per_crossbar, 2);
        let query = [3u32, 15, 1, 8];
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        let strict = pim
            .dot_batch_strict(rep.region, &query, AccWidth::U64)
            .unwrap();
        assert_eq!(fast, strict);
    }

    #[test]
    fn strict_mode_matches_fast_path_with_gather_tree() {
        // s = 24 on m = 8 → 3 chunks per object through the all-ones tree.
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = (0..3 * 24).map(|i| (i * 5 + 1) % 16).collect();
        let rep = pim.program_region(&data, 3, 24, 4).unwrap();
        assert_eq!(rep.cost.chunks_per_object, 3);
        let query: Vec<u32> = (0..24).map(|i| (i * 11) % 16).collect();
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        let strict = pim
            .dot_batch_strict(rep.region, &query, AccWidth::U64)
            .unwrap();
        assert_eq!(fast, strict);
    }

    #[test]
    fn strict_mode_respects_accumulator_width() {
        let mut pim = PimArray::new(PimConfig::default()).unwrap();
        let rep = pim.program_region(&[1 << 16], 1, 1, 17).unwrap();
        let strict = pim
            .dot_batch_strict(rep.region, &[1 << 16], AccWidth::U32)
            .unwrap();
        assert_eq!(strict, vec![0]); // 2^32 wraps to 0 at 32 bits
    }

    #[test]
    fn strict_mode_rejects_huge_geometries() {
        // 1200 × 256 at 32-bit operands → 75 crossbars × 65 536 cells,
        // beyond the strict-mode materialization cap.
        let mut pim = PimArray::new(PimConfig::default()).unwrap();
        let data = vec![1u32; 1200 * 256];
        let rep = pim.program_region(&data, 1200, 256, 32).unwrap();
        assert!(matches!(
            pim.dot_batch_strict(rep.region, &[1u32; 256], AccWidth::U64),
            Err(ReRamError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn inert_faults_leave_results_exact() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let rep = pim.program_region(&data, 2, 4, 4).unwrap();
        let (clean, _) = pim
            .dot_batch(rep.region, &[1, 2, 3, 4], AccWidth::U64)
            .unwrap();
        pim.enable_faults(crate::faults::FaultConfig::default())
            .unwrap();
        let (faulty, _) = pim
            .dot_batch(rep.region, &[1, 2, 3, 4], AccWidth::U64)
            .unwrap();
        assert_eq!(clean, faulty);
        let scrub = pim.scrub_region(rep.region).unwrap();
        assert_eq!(scrub.faulty_cells, 0);
        assert_eq!(scrub.dead, 0);
        assert_eq!(scrub.healthy, scrub.crossbars_checked);
    }

    #[test]
    fn stuck_cells_drift_objects_within_discrepancy_bound() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = (0..32).map(|i| (i * 7 + 3) % 16).collect();
        let rep = pim.program_region(&data, 8, 4, 4).unwrap();
        pim.enable_faults(crate::faults::FaultConfig {
            stuck_low_rate: 0.1,
            stuck_high_rate: 0.1,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let scrub = pim.scrub_region(rep.region).unwrap();
        assert!(scrub.faulty_cells > 0, "seed 5 must inject faults here");
        assert_eq!(scrub.dead, 0, "stuck cells alone never kill a crossbar");
        let query = [3u32, 1, 2, 3];
        let qmax = 3u64;
        let (vals, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        let mut saw_drift = false;
        for obj in 0..8 {
            let exact: u64 = data[obj * 4..(obj + 1) * 4]
                .iter()
                .zip(&query)
                .map(|(&v, &q)| u64::from(v) * u64::from(q))
                .sum();
            let disc = pim.object_discrepancy(rep.region, obj).unwrap();
            let err = vals[obj].abs_diff(exact);
            assert!(
                err <= qmax * disc,
                "obj {obj}: err {err} > bound {}",
                qmax * disc
            );
            match pim.object_health(rep.region, obj).unwrap() {
                crate::faults::CrossbarHealth::Healthy => assert_eq!(disc, 0),
                crate::faults::CrossbarHealth::Drifted => {
                    assert!(disc > 0);
                    saw_drift = true;
                }
                crate::faults::CrossbarHealth::Dead => panic!("no dead crossbars expected"),
            }
        }
        assert!(saw_drift);
    }

    #[test]
    fn dead_wordlines_kill_and_remap_restores_exactness() {
        let mut cfg = small_cfg();
        cfg.num_crossbars = 128; // leave spare capacity for remapping
        let mut pim = PimArray::new(cfg).unwrap();
        let data: Vec<u32> = (0..32).map(|i| (i * 5 + 1) % 16).collect();
        let rep = pim.program_region(&data, 8, 4, 4).unwrap();
        pim.enable_faults(crate::faults::FaultConfig {
            dead_wordline_rate: 0.2,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        let scrub = pim.scrub_region(rep.region).unwrap();
        assert!(scrub.dead > 0, "seed 9 must kill a wordline here");
        let remap = pim.remap_dead(rep.region).unwrap();
        assert_eq!(remap.remapped_crossbars, scrub.dead);
        assert_eq!(remap.quarantined_objects, 0);
        assert!(remap.cell_writes > 0);
        // After remapping onto clean spares every read is exact again.
        let query = [2u32, 3, 1, 2];
        let (vals, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        for obj in 0..8 {
            let exact: u64 = data[obj * 4..(obj + 1) * 4]
                .iter()
                .zip(&query)
                .map(|(&v, &q)| u64::from(v) * u64::from(q))
                .sum();
            assert_eq!(vals[obj], exact);
            assert_eq!(
                pim.object_health(rep.region, obj).unwrap(),
                crate::faults::CrossbarHealth::Healthy
            );
        }
    }

    #[test]
    fn no_spares_leaves_objects_quarantined() {
        let mut cfg = small_cfg();
        cfg.num_crossbars = 1; // exactly the allocation, zero spares
        let mut pim = PimArray::new(cfg).unwrap();
        let data: Vec<u32> = (0..32).map(|i| (i % 16) as u32).collect();
        let rep = pim.program_region(&data, 8, 4, 4).unwrap();
        assert_eq!(pim.free_crossbars(), 0);
        pim.enable_faults(crate::faults::FaultConfig {
            dead_wordline_rate: 1.0,
            ..Default::default()
        })
        .unwrap();
        let scrub = pim.scrub_region(rep.region).unwrap();
        assert_eq!(scrub.dead, scrub.crossbars_checked);
        let remap = pim.remap_dead(rep.region).unwrap();
        assert_eq!(remap.remapped_crossbars, 0);
        assert_eq!(remap.quarantined_objects, 8);
        for obj in 0..8 {
            assert_eq!(
                pim.object_health(rep.region, obj).unwrap(),
                crate::faults::CrossbarHealth::Dead
            );
            // The true row stays readable for exact host fallback.
            assert_eq!(
                pim.region_row(rep.region, obj).unwrap(),
                &data[obj * 4..(obj + 1) * 4]
            );
        }
    }

    #[test]
    fn wear_out_from_reprogramming_is_detected() {
        let mut cfg = small_cfg();
        cfg.num_crossbars = 64;
        let mut pim = PimArray::new(cfg).unwrap();
        pim.enable_faults(crate::faults::FaultConfig {
            endurance_limit: 3,
            ..Default::default()
        })
        .unwrap();
        // Program/clear cycles wear the same physical crossbars.
        for _ in 0..4 {
            pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
            pim.clear();
        }
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        assert!(pim.crossbar_programs(0) > 3);
        let scrub = pim.scrub_region(rep.region).unwrap();
        assert_eq!(scrub.dead, 1);
        // The worn crossbar reads zero.
        let (vals, _) = pim
            .dot_batch(rep.region, &[1, 1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(vals, vec![0]);
        // Remap moves the region onto a fresh (unworn) spare.
        let remap = pim.remap_dead(rep.region).unwrap();
        assert_eq!(remap.remapped_crossbars, 1);
        let (vals, _) = pim
            .dot_batch(rep.region, &[1, 1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(vals, vec![10]);
    }

    #[test]
    fn gather_fabric_faults_kill_whole_groups() {
        let mut cfg = small_cfg();
        cfg.num_crossbars = 16;
        let mut pim = PimArray::new(cfg).unwrap();
        // s = 16 > m = 8: two data crossbars + one gather crossbar.
        let data: Vec<u32> = (0..16).map(|i| (i * 3 + 1) % 16).collect();
        let rep = pim.program_region(&data, 1, 16, 4).unwrap();
        assert!(rep.cost.gather > 0);
        // Stuck cells at high density: some will land in the gather tree.
        pim.enable_faults(crate::faults::FaultConfig {
            stuck_low_rate: 0.9,
            ..Default::default()
        })
        .unwrap();
        let scrub = pim.scrub_region(rep.region).unwrap();
        assert!(scrub.dead > 0, "gather corruption must classify as dead");
        assert_eq!(
            pim.object_health(rep.region, 0).unwrap(),
            crate::faults::CrossbarHealth::Dead
        );
    }

    #[test]
    fn health_api_requires_fault_model_and_scrub() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        assert_eq!(
            pim.scrub_region(rep.region),
            Err(ReRamError::FaultsNotEnabled)
        );
        assert_eq!(
            pim.object_health(rep.region, 0),
            Err(ReRamError::FaultsNotEnabled)
        );
        pim.enable_faults(crate::faults::FaultConfig::default())
            .unwrap();
        assert_eq!(
            pim.object_health(rep.region, 0),
            Err(ReRamError::NotScrubbed)
        );
        assert_eq!(pim.remap_dead(rep.region), Err(ReRamError::NotScrubbed));
        pim.scrub_region(rep.region).unwrap();
        assert_eq!(
            pim.object_health(rep.region, 0).unwrap(),
            crate::faults::CrossbarHealth::Healthy
        );
        assert!(pim.object_health(rep.region, 99).is_err());
        assert!(pim.scrub_region(RegionId(7)).is_err());
        assert!(pim
            .enable_faults(crate::faults::FaultConfig {
                stuck_low_rate: 2.0,
                ..Default::default()
            })
            .is_err());
    }

    #[test]
    fn exhausted_adc_retries_fail_the_batch() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        pim.enable_faults(crate::faults::FaultConfig {
            adc_glitch_rate: 1.0,
            adc_retry_limit: 2,
            ..Default::default()
        })
        .unwrap();
        assert!(matches!(
            pim.dot_batch(rep.region, &[1, 1, 1, 1], AccWidth::U64),
            Err(ReRamError::AdcRetryExhausted { .. })
        ));
        assert!(matches!(
            pim.scrub_region(rep.region),
            Err(ReRamError::AdcRetryExhausted { .. })
        ));
    }

    #[test]
    fn faulty_emulation_matches_unit_level_crossbar() {
        // Cross-validate the array-level fault emulation against the
        // materialized faulty pipeline on a single-crossbar layout.
        let cfg = small_cfg();
        let faults = crate::faults::FaultConfig {
            stuck_low_rate: 0.12,
            stuck_high_rate: 0.08,
            dead_bitline_rate: 0.05,
            dead_wordline_rate: 0.05,
            seed: 31,
            ..Default::default()
        };
        let (n, s, b) = (2usize, 4usize, 6u32);
        let data: Vec<u32> = vec![25, 14, 63, 0, 9, 20, 1, 33];
        let query: Vec<u32> = vec![9, 20, 7, 63];

        let mut pim = PimArray::new(cfg).unwrap();
        let rep = pim.program_region(&data, n, s, b).unwrap();
        pim.enable_faults(faults).unwrap();
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();

        // The region's single data crossbar is physical id 0.
        let mut xb = Crossbar::new(cfg.crossbar).unwrap();
        let w = cfg.crossbar.cells_per_operand(b);
        for (obj, row) in data.chunks_exact(s).enumerate() {
            let col: Vec<u64> = row.iter().map(|&v| u64::from(v)).collect();
            xb.program_operand_column(0, obj * w, &col, b).unwrap();
        }
        let q64: Vec<u64> = query.iter().map(|&v| u64::from(v)).collect();
        let (slow, _) = xb.dot_products_faulty(0, &q64, 6, b, &faults, 0).unwrap();
        for i in 0..n {
            assert_eq!(fast[i], AccWidth::U64.wrap(slow[i]), "object {i}");
        }
    }

    #[test]
    fn buffer_array_waves_and_high_water() {
        let mut buf = BufferArray::new(1024);
        assert_eq!(buf.stage(100), 1);
        assert_eq!(buf.stage(4096), 4);
        assert_eq!(buf.high_water(), 1024);
        assert_eq!(buf.capacity(), 1024);
    }

    #[test]
    fn memory_array_occupancy() {
        let mut mem = MemoryArray::new(1000);
        mem.store(600).unwrap();
        assert_eq!(mem.free(), 400);
        assert!(mem.store(500).is_err());
        mem.release(200);
        assert_eq!(mem.used(), 400);
        mem.store(500).unwrap();
        assert_eq!(mem.free(), 100);
    }
}

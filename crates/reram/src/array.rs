//! The three arrays of a ReRAM bank (Fig. 4b): PIM array, buffer array,
//! memory array.
//!
//! [`PimArray`] is the array-level model: it tracks the programmed integer
//! matrices ("regions"), their crossbar layout and endurance counters, and
//! answers dot-product batches with the exact integers the bit-sliced
//! pipeline would produce (see the crate docs on fidelity modes) together
//! with the cycle-derived timing. A *region* is one programmed matrix —
//! e.g. `⌊p̄⌋` for `LB_PIM-ED`, or the `⌊µ(p̂)⌋` / `⌊σ(p̂)⌋` pair for
//! `LB_PIM-FNN`, or the code/complement pair for Hamming distance.

use crate::bitslice::{bits_needed, bits_needed_slice};
use crate::config::{AccWidth, PimConfig};
use crate::energy::{EnergyModel, EnergyReport};
use crate::error::ReRamError;
use crate::gather::{dataset_crossbar_cost, CrossbarCost};
use crate::timing::{dot_batch_timing, program_timing_ns, PimTiming};

/// Identifies one programmed region of the PIM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct RegionId(pub usize);

/// Outcome of programming one region (offline stage).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramReport {
    /// Handle for issuing queries against this region.
    pub region: RegionId,
    /// Crossbars consumed.
    pub cost: CrossbarCost,
    /// Individual cell programming pulses.
    pub cell_writes: u64,
    /// Crossbar rows programmed (one write pulse each).
    pub rows_written: u64,
    /// Offline programming latency in nanoseconds.
    pub program_ns: f64,
    /// Programming energy in joules.
    pub energy_j: f64,
}

#[derive(Debug, Clone)]
struct Region {
    data: Vec<u32>,
    n: usize,
    s: usize,
    operand_bits: u32,
    cost: CrossbarCost,
}

/// The PIM array: a budget of `C` crossbars holding programmed regions.
#[derive(Debug, Clone)]
pub struct PimArray {
    cfg: PimConfig,
    energy_model: EnergyModel,
    regions: Vec<Region>,
    used_crossbars: usize,
    total_cell_writes: u64,
    energy: EnergyReport,
}

impl PimArray {
    /// A blank PIM array.
    pub fn new(cfg: PimConfig) -> Result<Self, ReRamError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            energy_model: EnergyModel::default(),
            regions: Vec::new(),
            used_crossbars: 0,
            total_cell_writes: 0,
            energy: EnergyReport::default(),
        })
    }

    /// Platform configuration.
    #[inline]
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// Crossbars currently allocated to regions.
    #[inline]
    pub fn used_crossbars(&self) -> usize {
        self.used_crossbars
    }

    /// Crossbars still available.
    #[inline]
    pub fn free_crossbars(&self) -> usize {
        self.cfg.num_crossbars - self.used_crossbars
    }

    /// Cumulative cell programming pulses (endurance metric).
    #[inline]
    pub fn total_cell_writes(&self) -> u64 {
        self.total_cell_writes
    }

    /// Accumulated energy report.
    #[inline]
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Programs a region of `n` vectors × `s` dimensions (`flat` row-major)
    /// with `operand_bits`-wide operands. Fails when values overflow the
    /// operand width or when the crossbar budget is exhausted.
    pub fn program_region(
        &mut self,
        flat: &[u32],
        n: usize,
        s: usize,
        operand_bits: u32,
    ) -> Result<ProgramReport, ReRamError> {
        if n == 0 || s == 0 || flat.len() != n * s {
            return Err(ReRamError::InvalidConfig {
                what: "region shape does not match buffer",
            });
        }
        if operand_bits == 0 || operand_bits > 32 {
            return Err(ReRamError::InvalidConfig {
                what: "operand_bits must be in 1..=32",
            });
        }
        if let Some(&v) = flat
            .iter()
            .find(|&&v| operand_bits < 32 && u64::from(v) >= (1u64 << operand_bits))
        {
            return Err(ReRamError::OperandOverflow {
                value: u64::from(v),
                bits: operand_bits,
            });
        }
        let cost = dataset_crossbar_cost(n, s, operand_bits, &self.cfg.crossbar)?;
        if cost.total() > self.free_crossbars() {
            return Err(ReRamError::InsufficientCapacity {
                required: cost.total(),
                available: self.free_crossbars(),
            });
        }

        let w = self.cfg.crossbar.cells_per_operand(operand_bits) as u64;
        let cell_writes =
            (n as u64) * (s as u64) * w + cost.gather as u64 * self.cfg.crossbar.cells() as u64; // all-ones trees
                                                                                                 // Programming granularity: one program-and-verify pulse per stored
                                                                                                 // operand (its ⌈b/h⌉ cells share a word-line segment); all-ones
                                                                                                 // gather crossbars program row-parallel (uniform level, no
                                                                                                 // verify-per-value). This is what makes ReRAM pre-processing
                                                                                                 // slower than DRAM despite writing less data (Fig. 17).
        let rows_written =
            (n as u64) * (s as u64) + cost.gather as u64 * self.cfg.crossbar.size as u64;
        let program_ns = program_timing_ns(&self.cfg, rows_written);
        let mut energy = EnergyReport::default();
        energy.charge_writes(&self.energy_model, cell_writes, self.cfg.crossbar.cell_bits);
        self.energy.add(&energy);

        let region = RegionId(self.regions.len());
        self.used_crossbars += cost.total();
        self.total_cell_writes += cell_writes;
        self.regions.push(Region {
            data: flat.to_vec(),
            n,
            s,
            operand_bits,
            cost,
        });
        Ok(ProgramReport {
            region,
            cost,
            cell_writes,
            rows_written,
            program_ns,
            energy_j: energy.total_j(),
        })
    }

    /// Number of programmed regions.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Layout of a programmed region.
    pub fn region_cost(&self, region: RegionId) -> Result<&CrossbarCost, ReRamError> {
        self.regions
            .get(region.0)
            .map(|r| &r.cost)
            .ok_or(ReRamError::NotProgrammed)
    }

    /// Shape of a programmed region: `(n, s, operand_bits)`.
    pub fn region_shape(&self, region: RegionId) -> Result<(usize, usize, u32), ReRamError> {
        self.regions
            .get(region.0)
            .map(|r| (r.n, r.s, r.operand_bits))
            .ok_or(ReRamError::NotProgrammed)
    }

    /// Executes one dot-product batch: multiplies every programmed vector of
    /// `region` with `query`, wrapping results at the accumulator width
    /// (the paper keeps the least-significant 64 bits — 32 for binary
    /// codes). Returns the per-object results and the PIM-side timing.
    ///
    /// Reading never wears cells; endurance counters are untouched.
    pub fn dot_batch(
        &mut self,
        region: RegionId,
        query: &[u32],
        acc: AccWidth,
    ) -> Result<(Vec<u64>, PimTiming), ReRamError> {
        let reg = self
            .regions
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?;
        if query.len() != reg.s {
            return Err(ReRamError::GeometryViolation {
                what: "query dimensionality",
                got: query.len(),
                limit: reg.s,
            });
        }
        let input_bits = bits_needed_slice(query);

        // Functional result: exact integer dot product wrapped at the
        // accumulator width — bit-identical to the streamed bit-sliced
        // pipeline (wrapping commutes with shift-and-add; proven against
        // `Crossbar::dot_products` in tests).
        let mut values = Vec::with_capacity(reg.n);
        let mut max_partial: u64 = 0;
        let m = self.cfg.crossbar.size;
        for row in reg.data.chunks_exact(reg.s) {
            let mut total: u128 = 0;
            for (chunk_q, chunk_v) in query.chunks(m).zip(row.chunks(m)) {
                let partial: u128 = chunk_q
                    .iter()
                    .zip(chunk_v)
                    .map(|(&a, &b)| u128::from(a) * u128::from(b))
                    .sum();
                max_partial = max_partial.max(partial.min(u128::from(u64::MAX)) as u64);
                total = total.wrapping_add(partial);
            }
            values.push(acc.wrap(total));
        }

        let partial_bits = bits_needed(max_partial).min(acc.bits());
        let timing = dot_batch_timing(&self.cfg, &reg.cost, input_bits, partial_bits, reg.n, acc);

        // Compute energy: cycles × active crossbars.
        let cycles = self.cfg.crossbar.input_cycles(input_bits)
            * ((reg.cost.groups * reg.cost.chunks_per_object).div_ceil(reg.cost.data.max(1)))
                as u64;
        self.energy
            .charge_compute(&self.energy_model, cycles, reg.cost.total());
        self.energy
            .charge_bus(&self.energy_model, reg.n as u64 * acc.bytes());

        Ok((values, timing))
    }

    /// Strict-fidelity execution of one batch: materializes the region's
    /// layout on real [`Crossbar`]s — operand packing, vertical slot
    /// stacking, chunking across data crossbars, and all-ones gather
    /// trees — and runs the full bit-sliced analog pipeline end to end.
    ///
    /// This is the validation path behind [`PimArray::dot_batch`]'s fast
    /// path (the two are asserted bit-identical in tests and property
    /// tests); it is bounded to small geometries because it allocates
    /// `m²` cells per crossbar.
    pub fn dot_batch_strict(
        &self,
        region: RegionId,
        query: &[u32],
        acc: AccWidth,
    ) -> Result<Vec<u64>, ReRamError> {
        use crate::crossbar::Crossbar;

        let reg = self
            .regions
            .get(region.0)
            .ok_or(ReRamError::NotProgrammed)?;
        if query.len() != reg.s {
            return Err(ReRamError::GeometryViolation {
                what: "query dimensionality",
                got: query.len(),
                limit: reg.s,
            });
        }
        let xb_cfg = self.cfg.crossbar;
        let m = xb_cfg.size;
        const STRICT_CELL_CAP: usize = 1 << 22;
        if reg.cost.total().saturating_mul(m * m) > STRICT_CELL_CAP {
            return Err(ReRamError::InvalidConfig {
                what: "strict mode is for small geometries (cell cap exceeded)",
            });
        }

        let b = reg.operand_bits;
        let w = xb_cfg.cells_per_operand(b);
        let g = reg.cost.group_size;
        let input_bits = bits_needed_slice(query);
        let q64: Vec<u64> = query.iter().map(|&v| u64::from(v)).collect();
        let mut values = Vec::with_capacity(reg.n);

        if reg.s <= m {
            // Vertical slot stacking: each group occupies one slot of a
            // shared crossbar; one pass per slot drives only its rows.
            let slots = reg.cost.slots_per_crossbar;
            let n_groups = reg.n.div_ceil(g);
            let mut crossbars: Vec<Crossbar> = (0..reg.cost.data)
                .map(|_| Crossbar::new(xb_cfg))
                .collect::<Result<_, _>>()?;
            for gi in 0..n_groups {
                let xb = &mut crossbars[gi / slots];
                let start_row = (gi % slots) * reg.s;
                for j in 0..g {
                    let obj = gi * g + j;
                    if obj >= reg.n {
                        break;
                    }
                    let col: Vec<u64> = reg.data[obj * reg.s..(obj + 1) * reg.s]
                        .iter()
                        .map(|&v| u64::from(v))
                        .collect();
                    xb.program_operand_column(start_row, j * w, &col, b)?;
                }
            }
            for obj in 0..reg.n {
                let gi = obj / g;
                let xb = &crossbars[gi / slots];
                let start_row = (gi % slots) * reg.s;
                let outs = xb.dot_products(start_row, &q64, input_bits, b)?;
                values.push(acc.wrap(outs[obj % g]));
            }
        } else {
            // Chunked layout: per group, one data crossbar per chunk plus
            // a materialized all-ones gather tree reducing m partials per
            // level.
            let chunks = reg.cost.chunks_per_object;
            let n_groups = reg.n.div_ceil(g);
            let mut gather = Crossbar::new(xb_cfg)?;
            gather.program_all_ones()?;
            for gi in 0..n_groups {
                // Program this group's data crossbars.
                let mut data_xbs: Vec<Crossbar> = (0..chunks)
                    .map(|_| Crossbar::new(xb_cfg))
                    .collect::<Result<_, _>>()?;
                for j in 0..g {
                    let obj = gi * g + j;
                    if obj >= reg.n {
                        break;
                    }
                    let row = &reg.data[obj * reg.s..(obj + 1) * reg.s];
                    for (c, chunk) in row.chunks(m).enumerate() {
                        let col: Vec<u64> = chunk.iter().map(|&v| u64::from(v)).collect();
                        data_xbs[c].program_operand_column(0, j * w, &col, b)?;
                    }
                }
                // One streamed pass per chunk, then tree reduction per
                // object through the all-ones gather crossbar.
                let per_chunk: Vec<Vec<u128>> = q64
                    .chunks(m)
                    .zip(&data_xbs)
                    .map(|(cq, xb)| xb.dot_products(0, cq, input_bits, b))
                    .collect::<Result<_, _>>()?;
                for j in 0..g {
                    let obj = gi * g + j;
                    if obj >= reg.n {
                        break;
                    }
                    // Operand column j·w carries operand index j.
                    let mut layer: Vec<u128> = per_chunk.iter().map(|outs| outs[j]).collect();
                    while layer.len() > 1 {
                        let mut next = Vec::with_capacity(layer.len().div_ceil(m));
                        for grp in layer.chunks(m) {
                            let partials: Vec<u64> = grp.iter().map(|&p| acc.wrap(p)).collect();
                            let pbits = partials.iter().map(|&p| bits_needed(p)).max().unwrap_or(1);
                            let out = gather.dot_products(0, &partials, pbits, 1)?;
                            next.push(out[0]);
                        }
                        layer = next;
                    }
                    values.push(acc.wrap(layer[0]));
                }
            }
        }
        Ok(values)
    }

    /// Clears all regions (re-programming an array is allowed but wears the
    /// device — the endurance counters persist across [`PimArray::clear`]).
    pub fn clear(&mut self) {
        self.regions.clear();
        self.used_crossbars = 0;
    }
}

/// The buffer array (eDRAM) caching PIM results so the CPU can drain them
/// without stalling the PIM array.
#[derive(Debug, Clone)]
pub struct BufferArray {
    capacity: u64,
    high_water: u64,
}

impl BufferArray {
    /// A buffer of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            high_water: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Records a result batch passing through; returns the number of waves
    /// the batch needed.
    pub fn stage(&mut self, bytes: u64) -> u64 {
        self.high_water = self.high_water.max(bytes.min(self.capacity));
        bytes.div_ceil(self.capacity.max(1)).max(1)
    }

    /// Highest single-wave occupancy seen.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.high_water
    }
}

/// The memory array: plain ReRAM storage for the original dataset and the
/// pre-computed Φ values. Occupancy-tracked; access timing is charged by
/// the host cost model in `simpim-simkit`.
#[derive(Debug, Clone)]
pub struct MemoryArray {
    capacity: u64,
    used: u64,
}

impl MemoryArray {
    /// A memory array of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0 }
    }

    /// Reserves `bytes` of storage.
    pub fn store(&mut self, bytes: u64) -> Result<(), ReRamError> {
        if self.used + bytes > self.capacity {
            return Err(ReRamError::InsufficientCapacity {
                required: (self.used + bytes) as usize,
                available: self.capacity as usize,
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Bytes currently stored.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining capacity in bytes.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Releases `bytes` (saturating).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrossbarConfig;
    use crate::crossbar::{exact_dot, Crossbar};

    fn small_cfg() -> PimConfig {
        PimConfig {
            crossbar: CrossbarConfig {
                size: 8,
                cell_bits: 2,
                dac_bits: 2,
                adc_bits: 12,
                ..Default::default()
            },
            num_crossbars: 64,
            ..Default::default()
        }
    }

    #[test]
    fn program_and_query_round_trip() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8]; // 2 vectors × 4 dims
        let rep = pim.program_region(&data, 2, 4, 4).unwrap();
        assert!(rep.cell_writes > 0);
        assert!(rep.program_ns > 0.0);
        let (vals, t) = pim
            .dot_batch(rep.region, &[1, 1, 1, 1], AccWidth::U64)
            .unwrap();
        assert_eq!(vals, vec![10, 26]);
        assert!(t.total_ns() > 0.0);
    }

    #[test]
    fn array_matches_unit_level_crossbar_small_s() {
        // Cross-validate the fast path against the fully materialized
        // bit-sliced pipeline on a config where one crossbar suffices.
        let cfg = small_cfg();
        let (n, s, b) = (2usize, 4usize, 6u32);
        let data: Vec<u32> = vec![25, 14, 63, 0, 9, 20, 1, 33];
        let query: Vec<u32> = vec![9, 20, 7, 63];

        let mut pim = PimArray::new(cfg).unwrap();
        let rep = pim.program_region(&data, n, s, b).unwrap();
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();

        let mut xb = Crossbar::new(cfg.crossbar).unwrap();
        let w = cfg.crossbar.cells_per_operand(b);
        for (obj, row) in data.chunks_exact(s).enumerate() {
            let col: Vec<u64> = row.iter().map(|&v| u64::from(v)).collect();
            xb.program_operand_column(0, obj * w, &col, b).unwrap();
        }
        let q64: Vec<u64> = query.iter().map(|&v| u64::from(v)).collect();
        let slow = xb.dot_products(0, &q64, 6, b).unwrap();
        for i in 0..n {
            assert_eq!(fast[i], AccWidth::U64.wrap(slow[i]));
            assert_eq!(
                u128::from(fast[i]),
                exact_dot(
                    &q64,
                    &data[i * s..(i + 1) * s]
                        .iter()
                        .map(|&v| u64::from(v))
                        .collect::<Vec<_>>()
                )
            );
        }
    }

    #[test]
    fn array_matches_unit_level_with_gather_tree() {
        // s = 16 > m = 8: two chunks per object, reduced through the tree.
        let cfg = small_cfg();
        let s = 16usize;
        let data: Vec<u32> = (0..s as u32).map(|i| (i * 7 + 3) % 16).collect();
        let query: Vec<u32> = (0..s as u32).map(|i| (i * 5 + 1) % 16).collect();

        let mut pim = PimArray::new(cfg).unwrap();
        let rep = pim.program_region(&data, 1, s, 4).unwrap();
        assert_eq!(rep.cost.chunks_per_object, 2);
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();

        // Unit-level: two data crossbars + tree reduction of the partials.
        let m = cfg.crossbar.size;
        let mut partials = Vec::new();
        for (cq, cv) in query.chunks(m).zip(data.chunks(m)) {
            let mut xb = Crossbar::new(cfg.crossbar).unwrap();
            let col: Vec<u64> = cv.iter().map(|&v| u64::from(v)).collect();
            xb.program_operand_column(0, 0, &col, 4).unwrap();
            let q64: Vec<u64> = cq.iter().map(|&v| u64::from(v)).collect();
            partials.push(xb.dot_products(0, &q64, 4, 4).unwrap()[0]);
        }
        let reduced = crate::gather::reduce_through_tree(&partials, m);
        assert_eq!(fast[0], AccWidth::U64.wrap(reduced));
    }

    #[test]
    fn capacity_exhaustion_is_detected() {
        let mut cfg = small_cfg();
        cfg.num_crossbars = 1;
        let mut pim = PimArray::new(cfg).unwrap();
        // 64 objects × 8 dims with 4-bit operands: group = 8·2/4 = 4
        // objects → 16 groups, 1 slot → 16 crossbars > 1.
        let data = vec![1u32; 64 * 8];
        assert!(matches!(
            pim.program_region(&data, 64, 8, 4),
            Err(ReRamError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn operand_overflow_rejected() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        assert!(matches!(
            pim.program_region(&[16, 1], 1, 2, 4),
            Err(ReRamError::OperandOverflow { .. })
        ));
        assert!(pim.program_region(&[1, 2], 1, 2, 0).is_err());
        assert!(pim.program_region(&[1, 2], 1, 3, 4).is_err()); // ragged
    }

    #[test]
    fn multiple_regions_share_budget() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let r1 = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        let r2 = pim.program_region(&[5, 6, 7, 8], 1, 4, 4).unwrap();
        assert_ne!(r1.region, r2.region);
        assert_eq!(pim.num_regions(), 2);
        assert_eq!(pim.region_shape(r1.region).unwrap(), (1, 4, 4));
        assert!(pim.region_shape(RegionId(9)).is_err());
        assert_eq!(pim.used_crossbars(), r1.cost.total() + r2.cost.total());
        let (v1, _) = pim
            .dot_batch(r1.region, &[1, 0, 0, 0], AccWidth::U64)
            .unwrap();
        let (v2, _) = pim
            .dot_batch(r2.region, &[1, 0, 0, 0], AccWidth::U64)
            .unwrap();
        assert_eq!(v1, vec![1]);
        assert_eq!(v2, vec![5]);
    }

    #[test]
    fn queries_do_not_wear_cells() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        let writes_after_program = pim.total_cell_writes();
        for _ in 0..100 {
            pim.dot_batch(rep.region, &[3, 3, 3, 3], AccWidth::U64)
                .unwrap();
        }
        assert_eq!(pim.total_cell_writes(), writes_after_program);
    }

    #[test]
    fn clear_frees_budget_but_keeps_wear() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        let wear = pim.total_cell_writes();
        pim.clear();
        assert_eq!(pim.used_crossbars(), 0);
        assert_eq!(pim.total_cell_writes(), wear);
        assert!(pim
            .dot_batch(RegionId(0), &[1, 1, 1, 1], AccWidth::U64)
            .is_err());
    }

    #[test]
    fn u32_accumulator_wraps() {
        let mut pim = PimArray::new(PimConfig::default()).unwrap();
        // 2^16 · 2^16 = 2^32 ≡ 0 (mod 2^32).
        let rep = pim.program_region(&[1 << 16], 1, 1, 17).unwrap();
        let (v32, _) = pim
            .dot_batch(rep.region, &[1 << 16], AccWidth::U32)
            .unwrap();
        assert_eq!(v32, vec![0]);
        let (v64, _) = pim
            .dot_batch(rep.region, &[1 << 16], AccWidth::U64)
            .unwrap();
        assert_eq!(v64, vec![1 << 32]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let rep = pim.program_region(&[1, 2, 3, 4], 1, 4, 4).unwrap();
        assert!(pim.dot_batch(rep.region, &[1, 2], AccWidth::U64).is_err());
    }

    #[test]
    fn strict_mode_matches_fast_path_with_slots() {
        // s = 4 on m = 8 → 2 slots stacked; 5 objects over 2 groups.
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = (0..20).map(|i| (i * 7 + 3) % 16).collect();
        let rep = pim.program_region(&data, 5, 4, 4).unwrap();
        assert_eq!(rep.cost.slots_per_crossbar, 2);
        let query = [3u32, 15, 1, 8];
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        let strict = pim
            .dot_batch_strict(rep.region, &query, AccWidth::U64)
            .unwrap();
        assert_eq!(fast, strict);
    }

    #[test]
    fn strict_mode_matches_fast_path_with_gather_tree() {
        // s = 24 on m = 8 → 3 chunks per object through the all-ones tree.
        let mut pim = PimArray::new(small_cfg()).unwrap();
        let data: Vec<u32> = (0..3 * 24).map(|i| (i * 5 + 1) % 16).collect();
        let rep = pim.program_region(&data, 3, 24, 4).unwrap();
        assert_eq!(rep.cost.chunks_per_object, 3);
        let query: Vec<u32> = (0..24).map(|i| (i * 11) % 16).collect();
        let (fast, _) = pim.dot_batch(rep.region, &query, AccWidth::U64).unwrap();
        let strict = pim
            .dot_batch_strict(rep.region, &query, AccWidth::U64)
            .unwrap();
        assert_eq!(fast, strict);
    }

    #[test]
    fn strict_mode_respects_accumulator_width() {
        let mut pim = PimArray::new(PimConfig::default()).unwrap();
        let rep = pim.program_region(&[1 << 16], 1, 1, 17).unwrap();
        let strict = pim
            .dot_batch_strict(rep.region, &[1 << 16], AccWidth::U32)
            .unwrap();
        assert_eq!(strict, vec![0]); // 2^32 wraps to 0 at 32 bits
    }

    #[test]
    fn strict_mode_rejects_huge_geometries() {
        // 1200 × 256 at 32-bit operands → 75 crossbars × 65 536 cells,
        // beyond the strict-mode materialization cap.
        let mut pim = PimArray::new(PimConfig::default()).unwrap();
        let data = vec![1u32; 1200 * 256];
        let rep = pim.program_region(&data, 1200, 256, 32).unwrap();
        assert!(matches!(
            pim.dot_batch_strict(rep.region, &[1u32; 256], AccWidth::U64),
            Err(ReRamError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn buffer_array_waves_and_high_water() {
        let mut buf = BufferArray::new(1024);
        assert_eq!(buf.stage(100), 1);
        assert_eq!(buf.stage(4096), 4);
        assert_eq!(buf.high_water(), 1024);
        assert_eq!(buf.capacity(), 1024);
    }

    #[test]
    fn memory_array_occupancy() {
        let mut mem = MemoryArray::new(1000);
        mem.store(600).unwrap();
        assert_eq!(mem.free(), 400);
        assert!(mem.store(500).is_err());
        mem.release(200);
        assert_eq!(mem.used(), 400);
        mem.store(500).unwrap();
        assert_eq!(mem.free(), 100);
    }
}

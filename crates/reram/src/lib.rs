#![warn(missing_docs)]
//! # simpim-reram
//!
//! A functional + timing simulator for ReRAM crossbar processing-in-memory,
//! standing in for the NVSim-modeled hardware of the paper (Section II-A,
//! III-A and VI-A).
//!
//! ## What is modeled
//!
//! * [`cell`] — a single ReRAM cell holding an `h`-bit conductance level,
//!   with per-cell write-endurance accounting (ReRAM endurance is limited:
//!   Table 1 lists 10⁸–10¹¹ writes).
//! * [`crossbar`] — an `m×m` crossbar executing the analog dot-product of
//!   Fig. 1: inject voltages on wordlines, read per-bitline currents.
//! * [`bitslice`] — operand slicing for `b > h` (Fig. 2): a `b`-bit operand
//!   occupies `⌈b/h⌉` adjacent cells; inputs stream through the DAC
//!   `dac_bits` at a time; shift-and-add (S&A) recombines partial sums.
//! * [`gather`] — decomposition of `d > m` vectors over multiple data
//!   crossbars plus the all-ones *gather crossbar* reduction tree
//!   (Fig. 3 and Fig. 11), including the crossbar-count formulas of
//!   Eq. 11–12 that Theorem 4 builds on.
//! * [`mod@array`] — the three arrays of a ReRAM bank (Fig. 4b): the PIM array
//!   (a budget of `C` crossbars), the buffer array (eDRAM cache for PIM
//!   results) and the memory array (plain storage).
//! * [`bank`] — the bank controller tying the arrays together and exposing
//!   the offline *program* / online *dot-product batch* operations used by
//!   `simpim-core`'s executor.
//! * [`timing`] / [`energy`] — latency and energy accounting with the
//!   paper's Table 5 constants (256×256 2-bit cells, 29.31 / 50.88 ns
//!   read/write, 2 GB PIM array, 16 MB eDRAM buffer, 50 GB/s internal bus).
//! * [`variation`] / [`faults`] — beyond-the-paper robustness models:
//!   bounded analog conductance variation, and deterministic hard-fault
//!   injection (stuck cells, dead lines, ADC glitches, wear-out) with a
//!   scrub / health-classification / remap-to-spares recovery API.
//!
//! ## Fidelity modes
//!
//! A default 2 GB PIM array holds 131 072 crossbars of 65 536 cells each —
//! far too many to materialize cell-by-cell. The simulator therefore has two
//! execution paths that are *proven equivalent by tests*:
//!
//! * the **unit-level model** ([`crossbar::Crossbar`]) materializes cells and
//!   runs the full bit-sliced analog pipeline; it is exercised directly by
//!   unit/property tests and by small examples;
//! * the **array-level model** ([`array::PimArray`]) keeps the programmed
//!   integer matrix plus layout metadata, computes dot products directly,
//!   and charges the *same* cycle-accurate timing the unit-level pipeline
//!   would incur. Property tests assert both paths produce bit-identical
//!   results on randomized inputs.

pub mod array;
pub mod bank;
pub mod bitslice;
pub mod cell;
pub mod config;
pub mod crossbar;
pub mod energy;
pub mod error;
pub mod faults;
pub mod gather;
pub mod timing;
pub mod variation;

pub use array::{BufferArray, MemoryArray, PimArray, ProgramReport, RemapReport, ScrubReport};
pub use bank::{DotBatchResult, ReRamBank};
pub use config::{AccWidth, CrossbarConfig, PimConfig};
pub use crossbar::Crossbar;
pub use error::ReRamError;
pub use faults::{BankLoss, CellFault, CrossbarHealth, FaultConfig};
pub use gather::{crossbar_cost_per_pair, dataset_crossbar_cost, CrossbarCost};
pub use timing::PimTiming;
pub use variation::VariationModel;
